#!/usr/bin/env python3
"""An encrypted persistent key-value store, and what it costs.

Runs the from-scratch persistent B+Tree engine (the PMEMKV stand-in) on
top of an encrypted DAX file under all four schemes the paper compares,
and prints the slowdown ladder:

    ext4-dax (no crypto)  <  baseline secure memory  <  FsEncr
                                            <<  software encryption

Then digs one level deeper: where does FsEncr's overhead go?  The
controller's own statistics answer — metadata fetches, OTT activity,
Merkle traffic.

Run:  python examples/encrypted_kv_store.py
"""

from repro.sim import MachineConfig, Scheme
from repro.workloads import make_pmemkv_workload, run_workload


def main() -> None:
    ops = 400
    config = MachineConfig()
    print(f"Persistent B+Tree, Fillrandom, 64 B values, {ops} operations\n")

    results = {}
    for scheme in (
        Scheme.EXT4DAX_PLAIN,
        Scheme.BASELINE_SECURE,
        Scheme.FSENCR,
        Scheme.SOFTWARE_ENCRYPTION,
    ):
        workload = make_pmemkv_workload("Fillrandom-S", ops=ops)
        results[scheme] = run_workload(config.with_scheme(scheme), workload)

    plain_ns = results[Scheme.EXT4DAX_PLAIN].elapsed_ns
    print(f"{'scheme':<24}{'elapsed':>14}{'vs plain':>10}{'NVM wr':>8}{'NVM rd':>8}")
    print("-" * 64)
    for scheme, result in results.items():
        print(
            f"{scheme.value:<24}{result.elapsed_ns / 1e6:>12.3f}ms"
            f"{result.elapsed_ns / plain_ns:>10.2f}x"
            f"{result.nvm_writes:>8}{result.nvm_reads:>8}"
        )

    fsencr = results[Scheme.FSENCR]
    baseline = results[Scheme.BASELINE_SECURE]
    overhead = (fsencr.elapsed_ns / baseline.elapsed_ns - 1) * 100
    print(f"\nFsEncr over the secure baseline: {overhead:.1f}% "
          "(the paper's figure-8 territory)")

    print("\nWhere FsEncr's cycles go (controller statistics):")
    interesting = [
        "controller.dax_requests",
        "controller.mecb_fetches",
        "controller.fecb_fetches",
        "controller.merkle_fetches",
        "controller.metadata_writebacks",
        "controller.osiris_counter_persists",
        "controller.osiris_fecb_persists",
        "controller.keys_installed",
        "controller.ott_region_writes",
        "mmio.install_key",
        "mmio.update_fecb",
    ]
    for key in interesting:
        value = fsencr.stats.get(key, 0)
        if value:
            print(f"  {key:<38}{value:>10}")

    software = results[Scheme.SOFTWARE_ENCRYPTION]
    print(f"\nand the road not taken — software encryption: "
          f"{software.elapsed_ns / plain_ns:.1f}x the plain runtime "
          f"({software.stats.get('sw_overlay.page_faults', 0):.0f} page "
          "faults, each a 4 KB copy + crypto)")


if __name__ == "__main__":
    main()
