#!/usr/bin/env python3
"""Moving an encrypted filesystem to a new machine (§VI).

The DIMM is pulled from machine A and plugged into machine B.  Without
an authorised transport, B sees cipher-soup — the memory key, OTT key
and Merkle root never left A's processor.  With one, the admin seals
those secrets under a transport passphrase, carries them out-of-band,
and B authenticates both the package and the module before adopting it.

Also shown: the two refusal paths (wrong passphrase; module tampered in
transit).

Run:  python examples/machine_migration.py
"""

from repro.core import (
    FsEncrController,
    TransportError,
    export_machine,
    import_machine,
    set_df,
)
from repro.secmem import MetadataLayout, SecureControllerConfig


LAYOUT = MetadataLayout(data_bytes=16 * 1024 * 1024, ott_region_bytes=32 * 1024)


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    banner("Machine A: an encrypted file lives on the DIMM")
    source = FsEncrController(layout=LAYOUT, config=SecureControllerConfig(functional=True))
    source.install_file_key(group_id=9, file_id=77, key=bytes(range(16)))
    source.update_fecb(page=5, group_id=9, file_id=77)
    addr = set_df(5 * 4096)
    payload = b"quarterly results: do not leak".ljust(64, b".")
    source.write_data(addr, payload)
    print(f"written on A: {payload[:30].decode()!r}")

    banner("Naive move: plug the DIMM into a fresh machine B")
    naive = FsEncrController(layout=LAYOUT, config=SecureControllerConfig(functional=True))
    naive_view = naive.store = source.store  # the physical module moved
    raw = source.store.read_line(5 * 4096)
    print(f"B's raw view of the line: {raw[:24].hex()}... (sealed)")
    print("B has neither the memory key nor the OTT key: unreadable.")

    banner("Authorised transport: export from A")
    package, dimm = export_machine(source, passphrase="migration-2026")
    print(f"sealed package: {package.sealed_keys.hex()[:32]}... "
          f"root={package.merkle_root.hex()[:16]}...")

    banner("Import on B with the right passphrase")
    dest = import_machine(LAYOUT, package, dimm, passphrase="migration-2026")
    recovered = dest.read_data(addr)
    print(f"B reads: {recovered[:30].decode()!r}")
    assert recovered == payload
    keys = dest.stats.get("transport_keys_recovered")
    print(f"file keys recovered from the encrypted OTT region: {keys}")

    banner("Refusal 1: wrong transport passphrase")
    try:
        import_machine(LAYOUT, package, dimm, passphrase="guessed")
    except TransportError as exc:
        print(f"refused: {exc}")

    banner("Refusal 2: module tampered in transit")
    package2, dimm2 = export_machine(source, passphrase="migration-2026")
    dimm2.fecb.block(5).counters.minors[0] ^= 1
    try:
        import_machine(LAYOUT, package2, dimm2, passphrase="migration-2026")
    except TransportError as exc:
        print(f"refused: {exc}")

    print("\nBoth refusal paths hold; the authorised path round-trips.")


if __name__ == "__main__":
    main()
