#!/usr/bin/env python3
"""Crash consistency: Osiris counter recovery and OTT reconstruction.

Simulates the §III-H story: the machine loses power with counter
updates still in the on-chip metadata cache, then recovers —

1. **Counters via Osiris** — the persisted counter is stale by at most
   ``stop_loss`` increments; trial decryption against the line's
   plaintext ECC finds the true value.
2. **File keys via the encrypted OTT region** — every OTT install was
   write-through-logged to the Merkle-protected region; after the crash
   the on-chip table is rebuilt from it.
3. **The Merkle root** — regenerated bottom-up from the recovered
   metadata and used to re-verify everything.

Run:  python examples/crash_recovery.py
"""

from repro import Machine, MachineConfig, Scheme
from repro.crypto import MEMORY_DOMAIN, CounterIV, OTPEngine, xor_bytes
from repro.secmem import OsirisRecovery, check_line, encode_line


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    machine = Machine(MachineConfig(scheme=Scheme.FSENCR, functional=True, stop_loss=4))
    machine.add_user(uid=1000, gid=100, passphrase="crash-test-dummy")

    banner("Write persistent data through the encrypted path")
    handle = machine.create_file("/pmem/wal.log", uid=1000, encrypted=False)
    base = machine.mmap(handle, pages=1)
    record = b"TXN 0001 COMMIT; balance=1000; checksum=ok; pad.".ljust(64, b".")
    for generation in range(8):  # several commits: the counter advances
        machine.store_bytes(base, record)
    ecc = encode_line(record)  # Osiris stores this with the line
    controller = machine.controller
    pfn = handle.inode.extents[0]
    print(f"record persisted at pfn {pfn}; ECC computed over plaintext")

    banner("CRASH: lose the in-cache counter increments")
    true_minor = controller.mecb.block(pfn).value_for(0)[1]
    stale_minor = max(0, true_minor - 3)  # within the stop-loss window
    print(f"true minor counter: {true_minor}; persisted (stale): {stale_minor}")
    ciphertext = controller.store.read_line(pfn * 4096)

    banner("Recovery 1: Osiris trial decryption against the ECC")
    engine = OTPEngine(controller.keys.memory_key)

    def decrypt_with(candidate: int) -> bytes:
        iv = CounterIV(
            domain=MEMORY_DOMAIN, page_id=pfn, page_offset=0, major=0, minor=candidate
        )
        return xor_bytes(ciphertext, engine.pad_for(iv))

    recovery = OsirisRecovery(stop_loss=4)
    result = recovery.recover_counter(
        stale_minor, decrypt_with, lambda line: check_line(line, ecc)
    )
    print(f"recovered counter = {result.recovered_value} "
          f"after {result.trials} trial decryptions")
    recovered_line = decrypt_with(result.recovered_value)
    assert recovered_line == record
    print(f"data intact: {recovered_line[:24].decode()!r}...")

    banner("Recovery 2: rebuild the OTT from the encrypted region")
    for i in range(4):
        machine.create_file(f"/pmem/enc{i}.dat", uid=1000, encrypted=True)
    keys_before = len(controller.ott)
    recovered_keys = controller.recover_ott_after_crash()
    print(f"keys installed before crash: {keys_before}; "
          f"recovered from the sealed region: {recovered_keys}")
    assert recovered_keys == keys_before

    banner("Recovery 3: regenerate and re-verify the Merkle root")
    root = controller.merkle.rebuild_root()
    controller.merkle.verify_leaf(controller.layout.mecb_addr(pfn))
    print(f"root regenerated: {root.hex()[:24]}...; leaf re-verified")

    banner("Negative check: a counter outside the stop-loss window fails")
    from repro.secmem import CounterRecoveryError

    try:
        recovery.recover_counter(
            max(0, true_minor - 9), decrypt_with, lambda line: check_line(line, ecc)
        )
        print("UNEXPECTED: recovered from beyond the window")
    except CounterRecoveryError as exc:
        print(f"correctly refused: {exc}")
        print("(this is why the stop-loss write-through bound exists)")


if __name__ == "__main__":
    main()
