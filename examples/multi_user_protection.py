#!/usr/bin/env python3
"""Multi-user protection: the paper's internal-attacker scenarios, live.

Three stories from §VI, played end to end on a functional machine:

1. **chmod 777** — Alice fat-fingers her encrypted file world-readable.
   Bob passes the permission check, but his passphrase cannot unwrap
   Alice's file key: the open is refused.
2. **The curious admin** — root bypasses mode bits entirely... and still
   cannot unwrap the FEK, because FEKEKs derive from user passphrases,
   not from uid 0.
3. **The OS-swap attack** — an intruder with physical access boots a
   different OS.  The wrong admin credential locks the file-decryption
   engine: memory encryption keeps the machine usable, but every DAX
   file reads as ciphertext.

Run:  python examples/multi_user_protection.py
"""

from repro import Machine, MachineConfig, Scheme
from repro.fs import AccessDenied
from repro.kernel import KeyringError


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    machine = Machine(MachineConfig(scheme=Scheme.FSENCR, functional=True))
    alice = machine.add_user(uid=1000, gid=100, passphrase="alice-s3cret")
    bob = machine.add_user(uid=2000, gid=200, passphrase="bob-pa55word")
    root = machine.add_user(uid=0, gid=0, passphrase="root-of-all-evil")
    admin_credential = machine.keyring.credential_digest("the-real-admin")
    machine.mmio.admin_login(admin_credential)

    banner("Alice creates an encrypted, private file")
    machine.create_file("/pmem/payroll.db", uid=1000, mode=0o600, encrypted=True)
    handle = machine.open_file("/pmem/payroll.db", uid=1000, write=True)
    base = machine.mmap(handle, pages=1)
    machine.store_bytes(base, b"payroll: alice=250000 bob=90000")
    print("written: payroll data, sealed under Alice's file key")

    banner("Story 1: chmod 777 by accident")
    try:
        machine.open_file("/pmem/payroll.db", uid=2000)
    except AccessDenied as exc:
        print(f"before the chmod, mode bits stop Bob: {exc}")
    machine.chmod("/pmem/payroll.db", uid=1000, mode=0o777)
    print("alice runs: chmod 777 /pmem/payroll.db   (oops)")
    try:
        machine.open_file("/pmem/payroll.db", uid=2000)
        raise AssertionError("Bob got in!")
    except KeyringError as exc:
        print(f"mode bits now allow Bob, but the key check refuses him:")
        print(f"  {exc}")

    banner("Story 2: the curious admin")
    try:
        machine.open_file("/pmem/payroll.db", uid=0)
        raise AssertionError("root read Alice's file!")
    except KeyringError as exc:
        print("root bypasses rwx bits, but cannot unwrap Alice's FEK:")
        print(f"  {exc}")

    banner("Story 3: boot with a different OS (wrong admin credential)")
    intruder_credential = machine.keyring.credential_digest("stolen-guess")
    accepted, _ = machine.mmio.admin_login(intruder_credential)
    print(f"intruder's admin login accepted: {accepted}")
    print(f"file-decryption engine locked: {machine.controller.locked}")
    garbled = machine.load_bytes(base, 31)
    print(f"reading Alice's file now yields: {garbled.hex()[:40]}...")
    assert garbled != b"payroll: alice=250000 bob=90000"

    banner("The rightful admin returns")
    machine.mmio.admin_login(admin_credential)
    recovered = machine.load_bytes(base, 31)
    print(f"after the correct login: {recovered.decode()!r}")
    assert recovered == b"payroll: alice=250000 bob=90000"
    print("\nAll three internal-attack stories end the way §VI says they do.")


if __name__ == "__main__":
    main()
