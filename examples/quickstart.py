#!/usr/bin/env python3
"""Quickstart: encrypted DAX files in five minutes.

Builds an FsEncr machine in functional mode (real AES-CTR pads, real
Merkle hashing), creates an encrypted file on the DAX filesystem, writes
and reads through direct load/store — and then plays the attacker:
pulls the DIMM and scans it, comparing against a machine with no
filesystem encryption.

Run:  python examples/quickstart.py
"""

from repro import Machine, MachineConfig, Scheme


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    banner("Boot an FsEncr machine (functional mode)")
    machine = Machine(MachineConfig(scheme=Scheme.FSENCR, functional=True))
    machine.add_user(uid=1000, gid=100, passphrase="correct horse battery staple")
    print("machine up: DAX filesystem mounted, FsEncr controller attached")

    banner("Create an encrypted file and map it (DAX)")
    handle = machine.create_file(
        "/pmem/diary.txt", uid=1000, mode=0o600, encrypted=True
    )
    base = machine.mmap(handle, pages=1)
    print(f"file ino={handle.inode.i_ino}, mapped at {base:#x}")

    banner("Write and read through plain load/store")
    secret = b"Dear diary: the DF-bit works and nobody can read you."
    machine.store_bytes(base, secret)
    read_back = machine.load_bytes(base, len(secret))
    assert read_back == secret
    print(f"read back: {read_back.decode()!r}")

    banner("Attacker pulls the DIMM and scans it")
    residue = b"".join(machine.controller.store.scan().values())
    assert secret not in residue
    print(f"scanned {len(residue)} bytes of NVM: plaintext NOT found")
    print(f"sample ciphertext line: {residue[:32].hex()}...")

    banner("Contrast: the same scan on an unencrypted ext4-dax machine")
    plain = Machine(MachineConfig(scheme=Scheme.EXT4DAX_PLAIN, functional=True))
    plain.add_user(uid=1000, gid=100, passphrase="irrelevant")
    plain_handle = plain.create_file("/pmem/diary.txt", uid=1000)
    plain_base = plain.mmap(plain_handle, pages=1)
    plain.store_bytes(plain_base, secret)
    plain_residue = b"".join(plain.controller.store.scan().values())
    assert secret in plain_residue
    print("plaintext FOUND on the unencrypted DIMM — this is what")
    print("direct-access NVM looks like today, and why FsEncr exists.")

    banner("The cost: one timing comparison")
    from repro.workloads import make_whisper_workload, compare_schemes

    comparison = compare_schemes(
        lambda: make_whisper_workload("Hashmap", ops=600),
        schemes=(Scheme.BASELINE_SECURE, Scheme.FSENCR),
    )
    row = comparison.against(Scheme.BASELINE_SECURE, Scheme.FSENCR)
    print(f"Hashmap workload: FsEncr slowdown over secure baseline = "
          f"{row.overhead_percent:.1f}% (paper: a few percent)")


if __name__ == "__main__":
    main()
