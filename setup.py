"""Legacy setup shim: the environment's setuptools predates PEP-660 editable
installs, so `pip install -e .` goes through `setup.py develop` here.  All
real metadata lives in pyproject.toml."""
from setuptools import setup

setup()
