"""Table I, executed: vulnerability of encrypted-NVM system designs.

The paper's Table I argues three system designs differ under key
compromise:

* **System A** — memory encryption only.
* **System B** — memory encryption + one filesystem-wide key.
* **System C** — memory encryption + a dedicated key per file (FsEncr).

Rather than restate the table, this module *runs* it: each system is a
functional controller with real pads; the attacker is a function that
holds the DIMM residue (ciphertext), the security metadata (counters are
not secret), and whichever keys the scenario reveals — and tries to
recover a known plaintext.  The matrix of successes reproduces Table I
row by row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..crypto.iv import FILE_DOMAIN, MEMORY_DOMAIN, CounterIV
from ..crypto.otp import OTPEngine, xor_bytes
from ..mem import dfbit
from ..mem.address import LINE_SIZE, page_number, page_offset_lines
from ..core.fsencr import FsEncrController
from ..secmem.layout import MetadataLayout
from ..secmem.secure_controller import SecureControllerConfig

__all__ = ["Scenario", "SystemDesign", "attacker_decrypt", "table1_matrix", "render_table1"]

_PLAINTEXT = b"TOP-SECRET PAYROLL RECORD #0042 -- do not disclose. padding.."
_LAYOUT = MetadataLayout(data_bytes=64 * 1024 * 1024, ott_region_bytes=64 * 1024)


@dataclass(frozen=True)
class Scenario:
    """Which keys the attacker has obtained (Table I's rows)."""

    memory_key: bool
    single_fs_key: bool
    all_file_keys: bool

    def label(self) -> str:
        parts = []
        if self.memory_key:
            parts.append("memory key")
        if self.single_fs_key:
            parts.append("filesystem key")
        if self.all_file_keys:
            parts.append("all file keys")
        return " + ".join(parts) if parts else "nothing"


#: Table I's three rows, top to bottom.
SCENARIOS: List[Scenario] = [
    Scenario(memory_key=True, single_fs_key=False, all_file_keys=False),
    Scenario(memory_key=True, single_fs_key=True, all_file_keys=False),
    Scenario(memory_key=True, single_fs_key=True, all_file_keys=True),
]


class SystemDesign:
    """One of the three designs, holding a functional machine image.

    ``file_keys`` maps file_id -> key.  System A has none; System B
    encrypts every file under one shared key; System C (FsEncr proper)
    gives each file its own key.
    """

    def __init__(self, name: str, per_file_keys: bool, any_file_keys: bool) -> None:
        self.name = name
        # Standalone functional image for the attack analysis; no
        # results registry exists and no machine is being wired.
        # repro-lint: disable=stats-registered,builder-owns-wiring
        self.controller = FsEncrController(
            layout=_LAYOUT, config=SecureControllerConfig(functional=True)
        )
        self.file_keys: Dict[int, bytes] = {}
        self.addr_of_file: Dict[int, int] = {}
        file_ids = (10, 11)
        shared_key = bytes.fromhex("00112233445566778899aabbccddeeff")
        for index, file_id in enumerate(file_ids):
            page = 4 + index
            if any_file_keys:
                key = (
                    bytes([file_id]) * 16 if per_file_keys else shared_key
                )
                self.controller.install_file_key(group_id=1, file_id=file_id, key=key)
                self.controller.update_fecb(page=page, group_id=1, file_id=file_id)
                self.file_keys[file_id] = key
                addr = dfbit.set_df(page * 4096)
            else:
                addr = page * 4096
            self.addr_of_file[file_id] = addr
            payload = _PLAINTEXT[:LINE_SIZE].ljust(LINE_SIZE, b".")
            self.controller.write_data(addr, payload)

    def dimm_residue(self, file_id: int) -> bytes:
        """What a pulled DIMM shows for the file's line."""
        # Deliberate raw ciphertext read: this *is* the attacker's view.
        return self.controller.store.read_line(dfbit.strip(self.addr_of_file[file_id]))  # repro-lint: disable=persist-through-wpq


def attacker_decrypt(system: SystemDesign, scenario: Scenario, file_id: int) -> bool:
    """Can the attacker recover the plaintext of ``file_id``'s line?

    The attacker reconstructs pads exactly the hardware would: counters
    and FECB identities are integrity-protected but not confidential, so
    they are taken straight from the controller's metadata; only *keys*
    gate the pads.
    """
    controller = system.controller
    addr = system.addr_of_file[file_id]
    raw = dfbit.strip(addr)
    ciphertext = system.dimm_residue(file_id)
    page = page_number(raw)
    line_index = page_offset_lines(raw)

    pads: List[bytes] = []
    if scenario.memory_key:
        major, minor = controller.mecb.block(page).value_for(line_index)
        iv = CounterIV(
            domain=MEMORY_DOMAIN, page_id=page, page_offset=line_index,
            major=major, minor=minor,
        )
        pads.append(OTPEngine(controller.keys.memory_key).pad_for(iv))

    fecb = controller.fecb.peek(page)
    file_encrypted = fecb is not None and fecb.stamped
    if file_encrypted:
        key = None
        if scenario.all_file_keys:
            key = system.file_keys.get(file_id)
        elif scenario.single_fs_key and len(set(system.file_keys.values())) == 1:
            # The shared filesystem key is exactly the one key in use.
            key = next(iter(system.file_keys.values()), None)
        if key is None:
            return False  # missing the file layer's key
        major, minor = fecb.counters.value_for(line_index)
        iv = CounterIV(
            domain=FILE_DOMAIN, page_id=page, page_offset=line_index,
            major=major, minor=minor,
        )
        pads.append(OTPEngine(key).pad_for(iv))

    if not scenario.memory_key:
        return False  # the memory layer always stands in the way

    pad = pads[0]
    for extra in pads[1:]:
        pad = xor_bytes(pad, extra)
    recovered = xor_bytes(ciphertext, pad)
    return recovered.startswith(b"TOP-SECRET")


def _build_systems() -> List[SystemDesign]:
    return [
        SystemDesign("System A (memory encryption only)", per_file_keys=False, any_file_keys=False),
        SystemDesign("System B (single filesystem key)", per_file_keys=False, any_file_keys=True),
        SystemDesign("System C (per-file keys, FsEncr)", per_file_keys=True, any_file_keys=True),
    ]


def table1_matrix() -> List[Tuple[str, List[bool]]]:
    """Execute Table I.  Returns [(scenario_label, [vuln_A, vuln_B, vuln_C])].

    "Vulnerable" means the attacker recovers at least one file's
    plaintext under the scenario.  Expected (paper's Table I):

    ==============================  ====  ====  ====
    revealed                         A     B     C
    ==============================  ====  ====  ====
    memory key                      Yes   No    No
    memory key + filesystem key     Yes   Yes   No
    memory key + all file keys      Yes   Yes   Yes
    ==============================  ====  ====  ====
    """
    systems = _build_systems()
    matrix: List[Tuple[str, List[bool]]] = []
    for scenario in SCENARIOS:
        row: List[bool] = []
        for system in systems:
            vulnerable = any(
                attacker_decrypt(system, scenario, file_id)
                for file_id in system.addr_of_file
            )
            row.append(vulnerable)
        matrix.append((scenario.label(), row))
    return matrix


def render_table1() -> str:
    matrix = table1_matrix()
    lines = [
        "Table I: vulnerability of encrypted-NVM designs under key compromise",
        f"{'keys revealed':<38}{'System A':>10}{'System B':>10}{'System C':>10}",
        "-" * 68,
    ]
    for label, row in matrix:
        cells = "".join(f"{'Yes' if v else 'No':>10}" for v in row)
        lines.append(f"{label:<38}{cells}")
    return "\n".join(lines)
