"""Report rendering: ASCII charts and the aggregate results digest.

The benchmark harness saves each figure's data to
``benchmarks/results/*.json``; :func:`aggregate_report` folds them into
one EXPERIMENTS-style text digest, and :func:`bar_chart` renders any
label->value series as the terminal-friendly bars used throughout.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional

__all__ = ["bar_chart", "aggregate_report"]


def bar_chart(
    series: Mapping[str, float],
    title: str = "",
    width: int = 48,
    unit: str = "x",
    baseline: Optional[float] = None,
) -> str:
    """Render a horizontal ASCII bar chart.

    ``baseline`` draws a reference tick (e.g. 1.0 for normalized
    figures) so "how far above baseline" reads at a glance.
    """
    if not series:
        return f"{title}\n(no data)"
    longest_label = max(len(label) for label in series)
    peak = max(max(series.values()), baseline or 0.0, 1e-12)
    lines: List[str] = [title] if title else []
    for label, value in series.items():
        filled = max(0, round(value / peak * width))
        bar = "#" * filled
        if baseline is not None and 0 < baseline <= peak:
            tick = min(width - 1, round(baseline / peak * width))
            bar = bar.ljust(width)
            marker = "|" if filled <= tick else "+"
            bar = bar[:tick] + marker + bar[tick + 1 :]
            bar = bar.rstrip()
        lines.append(f"{label:<{longest_label}}  {bar} {value:.3f}{unit}")
    return "\n".join(lines)


def _rows_chart(payload: Dict, attr: str, title: str, baseline: float) -> str:
    series = {row["workload"]: row[attr] for row in payload.get("rows", [])}
    return bar_chart(series, title=title, baseline=baseline)


def aggregate_report(results_dir: Path) -> str:
    """Fold every saved ``benchmarks/results/*.json`` into one digest."""
    results_dir = Path(results_dir)
    sections: List[str] = ["FsEncr reproduction — aggregate results", "=" * 44]

    fig3 = results_dir / "fig03.json"
    if fig3.exists():
        payload = json.loads(fig3.read_text())
        sections.append(
            _rows_chart(payload, "slowdown",
                        "Figure 3 — software encryption slowdown (vs ext4-dax)", 1.0)
        )
        sections.append(f"mean: {payload.get('mean_slowdown', 0):.2f}x  (paper ~2.7x)\n")

    fig8 = results_dir / "fig08_09_10.json"
    if fig8.exists():
        payload = json.loads(fig8.read_text())
        sections.append(
            _rows_chart(payload, "slowdown",
                        "Figures 8-10 — PMEMKV slowdown (FsEncr vs baseline)", 1.0)
        )
        sections.append(f"mean: {payload.get('mean_slowdown', 0):.3f}x\n")

    fig11 = results_dir / "fig11.json"
    if fig11.exists():
        payload = json.loads(fig11.read_text())
        sections.append(
            _rows_chart(payload, "slowdown",
                        "Figure 11 — Whisper slowdown (FsEncr vs baseline)", 1.0)
        )
        sections.append(f"mean: {payload.get('mean_slowdown', 0):.3f}x  (paper ~1.038x)\n")

    fig12 = results_dir / "fig12_13_14.json"
    if fig12.exists():
        payload = json.loads(fig12.read_text())
        sections.append(
            _rows_chart(payload, "slowdown",
                        "Figures 12-14 — synthetic micro slowdown", 1.0)
        )
        sections.append(f"mean: {payload.get('mean_slowdown', 0):.3f}x  (paper ~1.20x)\n")

    fig15 = results_dir / "fig15.json"
    if fig15.exists():
        curves = json.loads(fig15.read_text())
        sections.append("Figure 15 — slowdown (%) vs metadata cache size")
        for name, curve in curves.items():
            ordered = {f"{int(size) // 1024}KB": value for size, value in sorted(
                curve.items(), key=lambda kv: int(kv[0])
            )}
            sections.append(bar_chart(ordered, title=f"  {name}", unit="%"))
        sections.append("")

    table1 = results_dir / "table1.txt"
    if table1.exists():
        sections.append(table1.read_text())

    if len(sections) == 2:
        sections.append("(no results found — run `pytest benchmarks/ --benchmark-only` first)")
    return "\n".join(sections)
