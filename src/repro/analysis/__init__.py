"""Analysis: per-figure experiment harnesses and the Table I security demo."""

from .experiments import (
    DEFAULT_MICRO_ITERS,
    DEFAULT_PMEMKV_OPS,
    DEFAULT_WHISPER_OPS,
    FIG15_CACHE_SIZES,
    FIG15_WORKLOADS,
    figure3_software_encryption,
    figure8_to_10_pmemkv,
    figure11_whisper,
    figure12_to_14_micro,
    figure15_cache_sensitivity,
    render_sensitivity,
)
from .report import aggregate_report, bar_chart
from .tails import (
    load_curve,
    p99_monotone,
    percentile_summary,
    render_load_curve,
    render_tails,
    strict_percentile,
    tail_latency_comparison,
)
from .security import (
    SCENARIOS,
    Scenario,
    SystemDesign,
    attacker_decrypt,
    render_table1,
    table1_matrix,
)

__all__ = [
    "figure3_software_encryption",
    "figure8_to_10_pmemkv",
    "figure11_whisper",
    "figure12_to_14_micro",
    "figure15_cache_sensitivity",
    "render_sensitivity",
    "FIG15_CACHE_SIZES",
    "FIG15_WORKLOADS",
    "DEFAULT_PMEMKV_OPS",
    "DEFAULT_WHISPER_OPS",
    "DEFAULT_MICRO_ITERS",
    "Scenario",
    "SCENARIOS",
    "SystemDesign",
    "attacker_decrypt",
    "table1_matrix",
    "render_table1",
    "aggregate_report",
    "bar_chart",
    "tail_latency_comparison",
    "render_tails",
    "strict_percentile",
    "percentile_summary",
    "load_curve",
    "p99_monotone",
    "render_load_curve",
]
