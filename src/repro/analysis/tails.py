"""Tail-latency analysis: where FsEncr's cost actually lives.

Mean slowdown (the paper's headline metric) averages FsEncr's overhead
across millions of cheap cache hits.  The distribution view is sharper:
the median access is untouched (pads hide under the data fetch), while
the tail fattens — a metadata-cache miss serialises a counter fetch, a
Merkle walk, and possibly an OTT probe in front of the data.

:func:`tail_latency_comparison` runs one workload under multiple
schemes with per-access histograms attached and returns the percentile
summaries; the companion benchmark asserts the "fat tail, flat median"
signature.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from ..sim.config import MachineConfig
from ..sim.histograms import LatencyHistogram
from ..sim.machine import Machine
from ..sim.schemes import SchemeRef, canonical_scheme_name, get_scheme
from ..workloads.base import Workload

__all__ = ["tail_latency_comparison", "render_tails"]


def tail_latency_comparison(
    workload_factory: Callable[[], Workload],
    config: Optional[MachineConfig] = None,
    schemes: Iterable[SchemeRef] = ("baseline_secure", "fsencr"),
) -> Dict[str, Dict[str, float]]:
    """Per-scheme access-latency percentile summaries for one workload.

    ``schemes`` entries are registry names (enums accepted); each name's
    spec projects the shared base config onto its column.  Returns
    ``{scheme_name: {total, mean_ns, p50_ns, p90_ns, p99_ns, max_ns}}``.
    """
    base_config = config or MachineConfig()
    summaries: Dict[str, Dict[str, float]] = {}
    for scheme in schemes:
        scheme_name = canonical_scheme_name(scheme)
        machine = Machine(get_scheme(scheme_name).configure(base_config))
        histogram = machine.attach_histogram(name=scheme_name)
        workload = workload_factory()
        workload.setup(machine)
        workload.run(machine)
        summaries[scheme_name] = histogram.as_dict()
    return summaries


def render_tails(summaries: Dict[str, Dict[str, float]]) -> str:
    header = f"{'scheme':<22}{'n':>9}{'mean':>9}{'p50':>8}{'p90':>8}{'p99':>9}{'max':>9}"
    lines = ["Per-access latency distribution (ns)", header, "-" * len(header)]
    for scheme, summary in summaries.items():
        lines.append(
            f"{scheme:<22}{summary['total']:>9.0f}{summary['mean_ns']:>9.1f}"
            f"{summary['p50_ns']:>8.0f}{summary['p90_ns']:>8.0f}"
            f"{summary['p99_ns']:>9.0f}{summary['max_ns']:>9.0f}"
        )
    return "\n".join(lines)
