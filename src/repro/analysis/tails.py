"""Tail-latency analysis: where FsEncr's cost actually lives.

Mean slowdown (the paper's headline metric) averages FsEncr's overhead
across millions of cheap cache hits.  The distribution view is sharper:
the median access is untouched (pads hide under the data fetch), while
the tail fattens — a metadata-cache miss serialises a counter fetch, a
Merkle walk, and possibly an OTT probe in front of the data.

:func:`tail_latency_comparison` runs one workload under multiple
schemes with per-access histograms attached and returns the percentile
summaries; the companion benchmark asserts the "fat tail, flat median"
signature.

The load-curve half puts *offered load* on the x-axis: a stream mix is
run through the concurrent-traffic service model
(:mod:`repro.sim.service`), calibrated closed-loop to find the mix's
sustainable throughput, then swept open-loop at fractions of it.
:func:`load_curve` returns throughput and strict response-time
percentiles (p50/p99/p999) per load point, with the shared queues'
delay stats — the throughput-vs-tail trade-off figure the paper never
had.

Percentiles here are *strict*: :func:`strict_percentile` raises
``ValueError`` on empty or under-resolved sample sets (you cannot read
a p99 off 40 samples) instead of silently interpolating — the same
loud-not-wrong policy as ``LatencyHistogram.record``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..sim.config import MachineConfig
from ..sim.histograms import LatencyHistogram
from ..sim.machine import Machine
from ..sim.schemes import SchemeRef, canonical_scheme_name, get_scheme
from ..workloads.base import Workload

__all__ = [
    "tail_latency_comparison",
    "render_tails",
    "strict_percentile",
    "percentile_summary",
    "load_curve",
    "p99_monotone",
    "render_load_curve",
]


def tail_latency_comparison(
    workload_factory: Callable[[], Workload],
    config: Optional[MachineConfig] = None,
    schemes: Iterable[SchemeRef] = ("baseline_secure", "fsencr"),
) -> Dict[str, Dict[str, float]]:
    """Per-scheme access-latency percentile summaries for one workload.

    ``schemes`` entries are registry names (enums accepted); each name's
    spec projects the shared base config onto its column.  Returns
    ``{scheme_name: {total, mean_ns, p50_ns, p90_ns, p99_ns, max_ns}}``.
    """
    base_config = config or MachineConfig()
    summaries: Dict[str, Dict[str, float]] = {}
    for scheme in schemes:
        scheme_name = canonical_scheme_name(scheme)
        machine = Machine(get_scheme(scheme_name).configure(base_config))
        histogram = machine.attach_histogram(name=scheme_name)
        workload = workload_factory()
        workload.setup(machine)
        workload.run(machine)
        summaries[scheme_name] = histogram.as_dict()
    return summaries


# ----------------------------------------------------------------------
# Strict percentiles
# ----------------------------------------------------------------------


def _required_samples(p: float) -> int:
    """Minimum sample count that can resolve the p-th percentile.

    Reading pX needs at least one sample *above* the percentile rank —
    ``ceil(100 / (100 - p))`` of them (p99 → 100, p99.9 → 1000); p100
    (the max) is resolvable from a single sample.
    """
    if not 0.0 < p <= 100.0:
        raise ValueError(f"p must be in (0, 100], got {p!r}")
    if p == 100.0:
        return 1
    # Rounded before ceil so float noise cannot inflate the bound
    # (100/0.1 evaluates to 1000.0000000000001, not 1000).
    return math.ceil(round(100.0 / (100.0 - p), 9))


def strict_percentile(samples: Sequence[float], p: float) -> float:
    """Exact nearest-rank percentile; loud on under-resolved inputs.

    Raises ``ValueError`` for an empty sample set or one with fewer
    samples than the requested percentile can resolve, instead of
    returning a silently-interpolated value (the same strict-not-silent
    policy as ``LatencyHistogram.record``).
    """
    required = _required_samples(p)
    n = len(samples)
    if n == 0:
        raise ValueError(f"cannot take p{p:g} of an empty sample set")
    if n < required:
        raise ValueError(
            f"p{p:g} needs at least {required} samples to resolve, got {n}"
        )
    ordered = sorted(samples)
    rank = math.ceil(p / 100.0 * n)
    return ordered[rank - 1]


def percentile_summary(
    samples: Sequence[float], ps: Sequence[float] = (50.0, 99.0, 99.9)
) -> Dict[str, float]:
    """``{"p50_ns": ..., "p99_ns": ..., "p99.9_ns": ...}`` plus mean/max."""
    summary = {f"p{p:g}_ns": strict_percentile(samples, p) for p in ps}
    summary["mean_ns"] = sum(samples) / len(samples)
    summary["max_ns"] = max(samples)
    return summary


# ----------------------------------------------------------------------
# Load-vs-percentile curves
# ----------------------------------------------------------------------


def load_curve(
    config: MachineConfig,
    mix: str,
    loads: Sequence[float] = (0.25, 0.5, 1.0),
    *,
    window: int = 1,
    arrival_seed: int = 0xA221,
    ops: int = 0,
    percentiles: Sequence[float] = (50.0, 99.0, 99.9),
) -> Dict:
    """Sweep offered load for one stream mix under one config.

    The mix is first run closed-loop (MLP ``window``) to calibrate its
    sustainable aggregate throughput; each requested ``load`` is that
    fraction of it, realised as an open-loop seeded exponential arrival
    process (the same seed across loads, so the underlying uniform
    sequence — and hence the curve — is smooth and deterministic).
    Returns a JSON-safe dict with the calibration run and one point per
    load carrying throughput, strict percentiles of the pooled
    response-time samples, and both shared queues' delay stats.
    """
    from dataclasses import replace

    from ..sim.service import ClosedLoop, OpenLoop, run_service
    from ..workloads.base import parse_stream_mix, stream_factories

    if not loads:
        raise ValueError("load_curve needs at least one load point")
    if any(not load > 0.0 for load in loads):
        raise ValueError(f"loads must be positive, got {list(loads)!r}")

    specs = parse_stream_mix(mix)
    if ops:
        specs = tuple(replace(spec, ops=ops) for spec in specs)
    factories = stream_factories(specs)
    streams = len(factories)
    calibration = run_service(
        config, [factory() for factory in factories], ClosedLoop(window=window)
    )
    if not calibration.measured_ops or calibration.makespan_ns <= 0.0:
        raise ValueError(
            f"mix {mix!r} produced no measured window to calibrate against"
        )
    # Aggregate sustainable rate (ops/ns) with every stream backlogged.
    capacity = calibration.measured_ops / calibration.makespan_ns

    points: List[Dict] = []
    for load in loads:
        interarrival = streams / (capacity * load)
        result = run_service(
            config,
            [factory() for factory in factories],
            OpenLoop(interarrival_ns=interarrival, seed=arrival_seed),
        )
        point = {
            "load": load,
            "interarrival_ns": interarrival,
            "measured_ops": result.measured_ops,
            "throughput_ops_per_s": result.throughput_ops_per_s,
            "mc_queue": result.mc_queue,
            "ott_queue": result.ott_queue,
            "interleave_digest": result.interleave_digest,
        }
        point.update(percentile_summary(result.samples, percentiles))
        points.append(point)

    return {
        "mix": mix,
        "scheme": config.scheme.value,
        "streams": streams,
        "window": window,
        "arrival_seed": arrival_seed,
        "calibration": {
            "measured_ops": calibration.measured_ops,
            "makespan_ns": calibration.makespan_ns,
            "throughput_ops_per_s": calibration.throughput_ops_per_s,
            "interleave_digest": calibration.interleave_digest,
        },
        "points": points,
    }


def p99_monotone(points: Sequence[Dict]) -> bool:
    """Whether p99 is non-decreasing in offered load."""
    ordered = sorted(points, key=lambda point: point["load"])
    p99s = [point["p99_ns"] for point in ordered]
    return all(b >= a for a, b in zip(p99s, p99s[1:]))


def render_load_curve(curves: Dict[str, Dict]) -> str:
    """ASCII table of per-scheme load curves (``{scheme: load_curve()}``)."""
    header = (
        f"{'scheme':<22}{'load':>6}{'tput(op/s)':>13}{'p50':>9}"
        f"{'p99':>11}{'p99.9':>11}{'mc wait':>9}"
    )
    lines = ["Throughput vs tail latency (response times, ns)", header,
             "-" * len(header)]
    for scheme, curve in curves.items():
        for point in curve["points"]:
            lines.append(
                f"{scheme:<22}{point['load']:>6.2f}"
                f"{point['throughput_ops_per_s']:>13.3e}"
                f"{point['p50_ns']:>9.1f}{point['p99_ns']:>11.1f}"
                f"{point['p99.9_ns']:>11.1f}"
                f"{point['mc_queue']['mean_wait_ns']:>9.2f}"
            )
    return "\n".join(lines)


def render_tails(summaries: Dict[str, Dict[str, float]]) -> str:
    header = f"{'scheme':<22}{'n':>9}{'mean':>9}{'p50':>8}{'p90':>8}{'p99':>9}{'max':>9}"
    lines = ["Per-access latency distribution (ns)", header, "-" * len(header)]
    for scheme, summary in summaries.items():
        lines.append(
            f"{scheme:<22}{summary['total']:>9.0f}{summary['mean_ns']:>9.1f}"
            f"{summary['p50_ns']:>8.0f}{summary['p90_ns']:>8.0f}"
            f"{summary['p99_ns']:>9.0f}{summary['max_ns']:>9.0f}"
        )
    return "\n".join(lines)
