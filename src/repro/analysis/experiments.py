"""Experiment harnesses: one function per paper table/figure.

Each ``figure_*`` function runs the workloads that figure plots, under
the schemes it compares, and returns a :class:`~repro.sim.results
.ResultTable` whose rows are the figure's bars.  The benchmark suite
wraps these functions with pytest-benchmark; EXPERIMENTS.md records
their output against the paper's reported numbers.

Op counts are scaled for Python-speed runs (see ``SCALE_FACTOR`` in
``repro.sim.config``); pass larger ``ops``/``iterations`` to push
fidelity at the price of wall-clock time.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.config import MachineConfig, Scheme
from ..sim.results import Comparison, ResultTable, RunResult
from ..workloads.base import compare_schemes, run_workload
from ..workloads.dax_micro import DAX_MICRO_BENCHMARKS, make_dax_micro
from ..workloads.pmemkv import PMEMKV_BENCHMARKS, make_pmemkv_workload
from ..workloads.whisper import WHISPER_BENCHMARKS, make_whisper_workload

__all__ = [
    "figure3_software_encryption",
    "figure8_to_10_pmemkv",
    "figure11_whisper",
    "figure12_to_14_micro",
    "figure15_cache_sensitivity",
    "DEFAULT_PMEMKV_OPS",
    "DEFAULT_WHISPER_OPS",
    "DEFAULT_MICRO_ITERS",
]

DEFAULT_PMEMKV_OPS = 600
DEFAULT_WHISPER_OPS = 1500
DEFAULT_MICRO_ITERS = 8000


def figure3_software_encryption(
    config: Optional[MachineConfig] = None, ops: int = DEFAULT_WHISPER_OPS
) -> ResultTable:
    """Figure 3: eCryptfs-style software encryption vs plain ext4-dax.

    Paper result: ~2.7x average slowdown over the three Whisper
    benchmarks, YCSB worst at ~5x.
    """
    table = ResultTable("Figure 3: software filesystem encryption overhead")
    for name, _cls in WHISPER_BENCHMARKS:
        comparison = compare_schemes(
            lambda n=name: make_whisper_workload(n, ops=ops),
            config=config,
            schemes=(Scheme.EXT4DAX_PLAIN, Scheme.SOFTWARE_ENCRYPTION),
        )
        table.add(comparison.against(Scheme.EXT4DAX_PLAIN, Scheme.SOFTWARE_ENCRYPTION))
    return table


def figure8_to_10_pmemkv(
    config: Optional[MachineConfig] = None, ops: int = DEFAULT_PMEMKV_OPS
) -> ResultTable:
    """Figures 8 (slowdown), 9 (writes), 10 (reads): PMEMKV under FsEncr.

    One run per benchmark produces all three series; the table's columns
    are exactly the three figures.  Paper result: small slowdowns,
    write benchmarks > read benchmarks, -L > -S on metadata locality.
    """
    table = ResultTable("Figures 8-10: PMEMKV, FsEncr vs baseline security")
    for name, _cls, _size in PMEMKV_BENCHMARKS:
        comparison = compare_schemes(
            lambda n=name: make_pmemkv_workload(n, ops=ops),
            config=config,
            schemes=(Scheme.BASELINE_SECURE, Scheme.FSENCR),
        )
        table.add(comparison.against(Scheme.BASELINE_SECURE, Scheme.FSENCR))
    return table


def figure11_whisper(
    config: Optional[MachineConfig] = None, ops: int = DEFAULT_WHISPER_OPS
) -> ResultTable:
    """Figure 11 (a/b/c): Whisper slowdown/writes/reads under FsEncr.

    Paper result: ~3.8% average slowdown across persistent benchmarks;
    YCSB slightly higher overhead than Hashmap/CTree due to file-access
    intensity; a 98.33% reduction versus software encryption.
    """
    table = ResultTable("Figure 11: Whisper, FsEncr vs baseline security")
    for name, _cls in WHISPER_BENCHMARKS:
        comparison = compare_schemes(
            lambda n=name: make_whisper_workload(n, ops=ops),
            config=config,
            schemes=(Scheme.BASELINE_SECURE, Scheme.FSENCR),
        )
        table.add(comparison.against(Scheme.BASELINE_SECURE, Scheme.FSENCR))
    return table


def figure12_to_14_micro(
    config: Optional[MachineConfig] = None, iterations: int = DEFAULT_MICRO_ITERS
) -> ResultTable:
    """Figures 12-14: adversarial synthetic micro-benchmarks.

    Paper result: ~20% average slowdown; DAX-2 > DAX-1 (poorer counter
    amortisation at the larger stride); swap micros show elevated reads
    from random-placement metadata misses.
    """
    table = ResultTable("Figures 12-14: DAX micro-benchmarks, FsEncr vs baseline")
    for name, _cls in DAX_MICRO_BENCHMARKS:
        comparison = compare_schemes(
            lambda n=name: make_dax_micro(n, iterations=iterations),
            config=config,
            schemes=(Scheme.BASELINE_SECURE, Scheme.FSENCR),
        )
        table.add(comparison.against(Scheme.BASELINE_SECURE, Scheme.FSENCR))
    return table


#: Figure 15's x-axis.  The paper sweeps 128 KB - 2 MB against workloads
#: holding GBs of KV data; what matters for the shape is the sweep
#: spanning "cache much smaller than the hot metadata" to "cache holds
#: it all".  Our scaled workloads carry ~10-50 KB of hot metadata, so
#: the equivalent sweep is 2 KB - 32 KB.
FIG15_CACHE_SIZES = [2 * 1024, 4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024]

#: One representative per benchmark family, as in the paper.
FIG15_WORKLOADS = ["Fillrandom-L", "Hashmap", "DAX-2"]


def figure15_cache_sensitivity(
    config: Optional[MachineConfig] = None,
    cache_sizes: Optional[List[int]] = None,
    pmemkv_ops: int = DEFAULT_PMEMKV_OPS,
    whisper_ops: int = DEFAULT_WHISPER_OPS,
    micro_iters: int = DEFAULT_MICRO_ITERS,
) -> Dict[str, Dict[int, float]]:
    """Figure 15: FsEncr slowdown (%) vs metadata-cache size.

    Returns ``{workload: {cache_bytes: slowdown_percent}}``.  Paper
    result: real workloads improve markedly with cache size; the
    synthetic DAX-2 improves only slightly (it has little reuse for any
    cache to capture).
    """
    base_config = config or MachineConfig()
    sizes = cache_sizes or FIG15_CACHE_SIZES

    def factory(name: str):
        if name == "Fillrandom-L":
            return make_pmemkv_workload(name, ops=pmemkv_ops)
        if name == "Hashmap":
            return make_whisper_workload(name, ops=whisper_ops)
        if name == "DAX-2":
            return make_dax_micro(name, iterations=micro_iters)
        raise KeyError(name)

    curves: Dict[str, Dict[int, float]] = {}
    for name in FIG15_WORKLOADS:
        curve: Dict[int, float] = {}
        for size in sizes:
            swept = base_config.with_metadata_cache(size)
            comparison = compare_schemes(
                lambda n=name: factory(n),
                config=swept,
                schemes=(Scheme.BASELINE_SECURE, Scheme.FSENCR),
            )
            row = comparison.against(Scheme.BASELINE_SECURE, Scheme.FSENCR)
            curve[size] = row.overhead_percent
        curves[name] = curve
    return curves


def render_sensitivity(curves: Dict[str, Dict[int, float]]) -> str:
    """Text rendering of the Figure 15 curves."""
    sizes = sorted({size for curve in curves.values() for size in curve})
    header = "metadata cache   " + "".join(f"{s // 1024:>7}KB" for s in sizes)
    lines = ["Figure 15: slowdown (%) vs metadata cache size", header, "-" * len(header)]
    for name, curve in curves.items():
        lines.append(
            f"{name:<17}" + "".join(f"{curve.get(s, float('nan')):>9.2f}" for s in sizes)
        )
    return "\n".join(lines)
