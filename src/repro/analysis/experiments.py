"""Experiment harnesses: one function per paper table/figure.

Each ``figure_*`` function runs the workloads that figure plots, under
the schemes it compares, and returns a :class:`~repro.sim.results
.ResultTable` whose rows are the figure's bars.  The benchmark suite
wraps these functions with pytest-benchmark; EXPERIMENTS.md records
their output against the paper's reported numbers.

Every figure is a grid of independent cells, so each driver builds
:class:`~repro.exec.CellSpec` lists and executes them through an
:class:`~repro.exec.ExperimentRunner` — pass ``jobs=N`` (or a shared
``runner``) to fan the grid out over worker processes and to memoise
unchanged cells in ``.repro-cache/`` (docs/RUNNER.md).  The default is
the serial in-process path, bit-identical to any ``jobs`` setting.

Op counts are scaled for Python-speed runs (see ``SCALE_FACTOR`` in
``repro.sim.config``); pass larger ``ops``/``iterations`` to push
fidelity at the price of wall-clock time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..exec import CellSpec, ExperimentRunner, payload_to_runs
from ..sim.config import MachineConfig
from ..sim.results import Comparison, ResultTable
from ..sim.schemes import (
    SchemeRef,
    canonical_scheme_name,
    comparison_pair,
    motivation_pair,
)
from ..workloads.base import WorkloadComparison
from ..workloads.dax_micro import DAX_MICRO_BENCHMARKS
from ..workloads.pmemkv import PMEMKV_BENCHMARKS
from ..workloads.whisper import WHISPER_BENCHMARKS

__all__ = [
    "figure3_software_encryption",
    "figure8_to_10_pmemkv",
    "figure11_whisper",
    "figure12_to_14_micro",
    "figure15_cache_sensitivity",
    "DEFAULT_PMEMKV_OPS",
    "DEFAULT_WHISPER_OPS",
    "DEFAULT_MICRO_ITERS",
]

DEFAULT_PMEMKV_OPS = 600
DEFAULT_WHISPER_OPS = 1500
DEFAULT_MICRO_ITERS = 8000


def _resolve_runner(
    runner: Optional[ExperimentRunner], jobs: Optional[int]
) -> ExperimentRunner:
    """The runner a figure driver executes on.

    Library calls default to the serial path (``jobs=1``) so importing a
    figure function never silently forks workers; the CLI passes the
    ``--jobs`` value through, and benchmark fixtures share one runner.
    """
    if runner is not None:
        return runner
    return ExperimentRunner(jobs=jobs if jobs is not None else 1)


def _comparison_cells(
    benchmarks: Sequence[str],
    config: Optional[MachineConfig],
    schemes: Tuple[str, ...],
    ops: int = 0,
    iterations: int = 0,
    batch: bool = False,
) -> List[CellSpec]:
    """One compare cell per benchmark; schemes are registry names
    (``CellSpec`` canonicalises and validates them).  ``batch=True``
    marks the cells for compiled-trace execution — same payloads,
    produced by the array sweep instead of per-access dispatch."""
    base = config or MachineConfig()
    return [
        CellSpec(
            kind="compare",
            workload=name,
            config=base,
            ops=ops,
            iterations=iterations,
            schemes=tuple(schemes),
            batch=batch,
        )
        for name in benchmarks
    ]


def _comparison_table(
    title: str,
    cells: Sequence[CellSpec],
    baseline: str,
    scheme: str,
    runner: ExperimentRunner,
) -> ResultTable:
    table = ResultTable(title)
    for result in runner.run(cells):
        if result is None:  # quarantined under failure_policy="continue"
            continue
        comparison = WorkloadComparison(
            workload=result.payload["workload"], runs=payload_to_runs(result.payload)
        )
        table.add(comparison.against(baseline, scheme))
    return table


def figure3_software_encryption(
    config: Optional[MachineConfig] = None,
    ops: int = DEFAULT_WHISPER_OPS,
    *,
    batch: bool = False,
    runner: Optional[ExperimentRunner] = None,
    jobs: Optional[int] = None,
) -> ResultTable:
    """Figure 3: eCryptfs-style software encryption vs plain ext4-dax.

    Paper result: ~2.7x average slowdown over the three Whisper
    benchmarks, YCSB worst at ~5x.
    """
    plain_ref, software_ref = motivation_pair()
    cells = _comparison_cells(
        [name for name, _cls in WHISPER_BENCHMARKS],
        config,
        (plain_ref, software_ref),
        ops=ops,
        batch=batch,
    )
    return _comparison_table(
        "Figure 3: software filesystem encryption overhead",
        cells,
        plain_ref,
        software_ref,
        _resolve_runner(runner, jobs),
    )


def figure8_to_10_pmemkv(
    config: Optional[MachineConfig] = None,
    ops: int = DEFAULT_PMEMKV_OPS,
    *,
    batch: bool = False,
    runner: Optional[ExperimentRunner] = None,
    jobs: Optional[int] = None,
) -> ResultTable:
    """Figures 8 (slowdown), 9 (writes), 10 (reads): PMEMKV under FsEncr.

    One run per benchmark produces all three series; the table's columns
    are exactly the three figures.  Paper result: small slowdowns,
    write benchmarks > read benchmarks, -L > -S on metadata locality.
    """
    baseline, contribution = comparison_pair()
    cells = _comparison_cells(
        [name for name, _cls, _size in PMEMKV_BENCHMARKS],
        config,
        (baseline, contribution),
        ops=ops,
        batch=batch,
    )
    return _comparison_table(
        "Figures 8-10: PMEMKV, FsEncr vs baseline security",
        cells,
        baseline,
        contribution,
        _resolve_runner(runner, jobs),
    )


def figure11_whisper(
    config: Optional[MachineConfig] = None,
    ops: int = DEFAULT_WHISPER_OPS,
    *,
    batch: bool = False,
    runner: Optional[ExperimentRunner] = None,
    jobs: Optional[int] = None,
) -> ResultTable:
    """Figure 11 (a/b/c): Whisper slowdown/writes/reads under FsEncr.

    Paper result: ~3.8% average slowdown across persistent benchmarks;
    YCSB slightly higher overhead than Hashmap/CTree due to file-access
    intensity; a 98.33% reduction versus software encryption.
    """
    baseline, contribution = comparison_pair()
    cells = _comparison_cells(
        [name for name, _cls in WHISPER_BENCHMARKS],
        config,
        (baseline, contribution),
        ops=ops,
        batch=batch,
    )
    return _comparison_table(
        "Figure 11: Whisper, FsEncr vs baseline security",
        cells,
        baseline,
        contribution,
        _resolve_runner(runner, jobs),
    )


def figure12_to_14_micro(
    config: Optional[MachineConfig] = None,
    iterations: int = DEFAULT_MICRO_ITERS,
    *,
    batch: bool = False,
    runner: Optional[ExperimentRunner] = None,
    jobs: Optional[int] = None,
) -> ResultTable:
    """Figures 12-14: adversarial synthetic micro-benchmarks.

    Paper result: ~20% average slowdown; DAX-2 > DAX-1 (poorer counter
    amortisation at the larger stride); swap micros show elevated reads
    from random-placement metadata misses.
    """
    baseline, contribution = comparison_pair()
    cells = _comparison_cells(
        [name for name, _cls in DAX_MICRO_BENCHMARKS],
        config,
        (baseline, contribution),
        iterations=iterations,
        batch=batch,
    )
    return _comparison_table(
        "Figures 12-14: DAX micro-benchmarks, FsEncr vs baseline",
        cells,
        baseline,
        contribution,
        _resolve_runner(runner, jobs),
    )


#: Figure 15's x-axis.  The paper sweeps 128 KB - 2 MB against workloads
#: holding GBs of KV data; what matters for the shape is the sweep
#: spanning "cache much smaller than the hot metadata" to "cache holds
#: it all".  Our scaled workloads carry ~10-50 KB of hot metadata, so
#: the equivalent sweep is 2 KB - 32 KB.
FIG15_CACHE_SIZES = [2 * 1024, 4 * 1024, 8 * 1024, 16 * 1024, 32 * 1024]

#: One representative per benchmark family, as in the paper.
FIG15_WORKLOADS = ["Fillrandom-L", "Hashmap", "DAX-2"]


def figure15_cache_sensitivity(
    config: Optional[MachineConfig] = None,
    cache_sizes: Optional[List[int]] = None,
    pmemkv_ops: int = DEFAULT_PMEMKV_OPS,
    whisper_ops: int = DEFAULT_WHISPER_OPS,
    micro_iters: int = DEFAULT_MICRO_ITERS,
    *,
    scheme: Optional[SchemeRef] = None,
    workloads: Optional[Sequence[str]] = None,
    batch: bool = False,
    runner: Optional[ExperimentRunner] = None,
    jobs: Optional[int] = None,
) -> Dict[str, Dict[int, float]]:
    """Figure 15: slowdown (%) vs metadata-cache size.

    Returns ``{workload: {cache_bytes: slowdown_percent}}``.  Paper
    result: real workloads improve markedly with cache size; the
    synthetic DAX-2 improves only slightly (it has little reuse for any
    cache to capture).  The (workload x cache size) grid runs as one
    cell batch, so ``--jobs`` parallelises across both axes at once.

    ``scheme`` selects the measured column (default: the registry's
    contribution role, i.e. ``"fsencr"``); any registered FsEncr variant
    works — ``"fsencr+partitioned"`` plots the same sweep with the
    metadata cache statically partitioned per kind.  The baseline column
    stays the registry's baseline role, so variant curves remain
    comparable with the default ones.
    """
    base_config = config or MachineConfig()
    sizes = cache_sizes or FIG15_CACHE_SIZES
    names = list(workloads) if workloads is not None else list(FIG15_WORKLOADS)
    baseline, contribution = comparison_pair()
    measured = canonical_scheme_name(scheme) if scheme is not None else contribution
    schemes = (baseline, measured)

    def cell_for(name: str, size: int) -> CellSpec:
        ops = 0
        iterations = 0
        if name == "Fillrandom-L":
            ops = pmemkv_ops
        elif name == "Hashmap":
            ops = whisper_ops
        elif name == "DAX-2":
            iterations = micro_iters
        else:
            raise KeyError(name)
        return CellSpec(
            kind="compare",
            workload=name,
            config=base_config.with_metadata_cache(size),
            ops=ops,
            iterations=iterations,
            schemes=schemes,
            batch=batch,
        )

    grid = [(name, size) for name in names for size in sizes]
    results = _resolve_runner(runner, jobs).run(
        [cell_for(name, size) for name, size in grid]
    )

    curves: Dict[str, Dict[int, float]] = {name: {} for name in names}
    for (name, size), result in zip(grid, results):
        if result is None:  # quarantined under failure_policy="continue"
            continue
        runs = payload_to_runs(result.payload)
        row = Comparison.of(runs[measured], runs[baseline])
        curves[name][size] = row.overhead_percent
    return curves


def render_sensitivity(curves: Dict[str, Dict[int, float]]) -> str:
    """Text rendering of the Figure 15 curves."""
    sizes = sorted({size for curve in curves.values() for size in curve})
    header = "metadata cache   " + "".join(f"{s // 1024:>7}KB" for s in sizes)
    lines = ["Figure 15: slowdown (%) vs metadata cache size", header, "-" * len(header)]
    for name, curve in curves.items():
        lines.append(
            f"{name:<17}" + "".join(f"{curve.get(s, float('nan')):>9.2f}" for s in sizes)
        )
    return "\n".join(lines)
