"""Whisper-style persistent benchmarks: YCSB, Hashmap, CTree (Table II).

* **YCSB** — the Yahoo Cloud Serving Benchmark shape the paper uses:
  R/W ratio 0.5 over a pre-loaded key-value store (hashmap backend,
  like Whisper's echo/YCSB pairing), skewed key popularity.
* **Hashmap** — direct exercise of the persistent chained hashmap,
  data-size 128 B: insert/get mix.
* **CTree** — the persistent crit-bit tree, data-size 128 B.

The paper runs these with 2 threads/workers; the model interleaves two
logical workers' operation streams onto the shared hierarchy, which is
where multi-threading's cache pressure shows up in a trace-driven model.
"""

from __future__ import annotations

from typing import Callable, List

from ..mem.address import PAGE_SIZE
from ..sim.machine import Machine
from .base import Workload
from .ctree import PersistentCritbitTree
from .hashmap import PersistentHashmap
from .palloc import PersistentAllocator

__all__ = ["YcsbWorkload", "HashmapWorkload", "CtreeWorkload", "WHISPER_BENCHMARKS", "make_whisper_workload"]

_DATA_SIZE = 128


def _interleave(streams: List[List[Callable[[], None]]]) -> List[Callable[[], None]]:
    """Round-robin two (or more) workers' operation lists."""
    merged: List[Callable[[], None]] = []
    cursors = [0] * len(streams)
    remaining = sum(len(s) for s in streams)
    worker = 0
    while remaining:
        stream = streams[worker % len(streams)]
        cursor = cursors[worker % len(streams)]
        if cursor < len(stream):
            merged.append(stream[cursor])
            cursors[worker % len(streams)] += 1
            remaining -= 1
        worker += 1
    return merged


class _WhisperBase(Workload):
    """Shared pool/file scaffolding for the three Whisper workloads."""

    def __init__(self, ops: int = 2000, workers: int = 2, seed: int = 99) -> None:
        super().__init__(seed=seed)
        self.ops = ops
        self.workers = max(1, workers)

    def _make_pool(self, machine: Machine, pages: int) -> PersistentAllocator:
        encrypted = machine.config.scheme.has_file_encryption
        handle = machine.create_file(
            f"/pmem/{self.name}.pool", uid=self.uid, encrypted=encrypted
        )
        base = machine.mmap(handle, pages=pages)
        return PersistentAllocator(machine, base, pages * PAGE_SIZE)

    def _pool_pages(self) -> int:
        per_op = _DATA_SIZE + 128
        return min(-(-self.ops * per_op * 3 // PAGE_SIZE) + 64, 16 * 1024)


#: Canonical YCSB core-workload read ratios.  The paper runs the A-like
#: 50/50 mix; the rest are extensions for the read-ratio ablation.
YCSB_MIXES = {
    "A": 0.5,   # update heavy
    "B": 0.95,  # read mostly
    "C": 1.0,   # read only
    "D": 0.95,  # read latest (approximated: same ratio, hot = newest)
}


class YcsbWorkload(_WhisperBase):
    """YCSB over a persistent KV store; workers=2.

    The paper's configuration is the A-like 50/50 read/write mix; the
    ``mix`` parameter selects the other core workloads for the
    read-ratio ablation.  Keys follow an 80/20 hot-set skew (a
    light-weight stand-in for YCSB's zipfian): 80 % of operations touch
    the hottest 20 % of keys (for D, the most recently inserted 20 %).
    """

    name = "YCSB"

    def __init__(self, ops: int = 2000, workers: int = 2, seed: int = 99, mix: str = "A") -> None:
        super().__init__(ops=ops, workers=workers, seed=seed)
        if mix not in YCSB_MIXES:
            raise KeyError(f"unknown YCSB mix {mix!r} (have {sorted(YCSB_MIXES)})")
        self.mix = mix
        self.read_ratio = YCSB_MIXES[mix]
        if mix != "A":
            self.name = f"YCSB-{mix}"

    def run(self, machine: Machine) -> None:
        allocator = self._make_pool(machine, self._pool_pages())
        store = PersistentHashmap(machine, allocator, buckets=1024, data_size=_DATA_SIZE)
        records = max(256, self.ops)
        for key in range(records):
            store.put(key)
        machine.mark_measurement_start()

        rng = self.rng()
        hot_span = max(1, records // 5)
        hot_base = records - hot_span if self.mix == "D" else 0  # D: latest keys

        def pick_key() -> int:
            if rng.random() < 0.8:
                return hot_base + rng.randrange(hot_span)
            return rng.randrange(records)

        streams: List[List[Callable[[], None]]] = []
        per_worker = self.ops // self.workers
        for _ in range(self.workers):
            ops: List[Callable[[], None]] = []
            for _ in range(per_worker):
                key = pick_key()
                if rng.random() < self.read_ratio:
                    ops.append(lambda k=key: store.get(k))
                else:
                    ops.append(lambda k=key: store.put(k))
            streams.append(ops)
        for op in _interleave(streams):
            op()


class HashmapWorkload(_WhisperBase):
    """hashmap: data-size=128B, threads=2 — insert-heavy with lookups."""

    name = "Hashmap"

    def run(self, machine: Machine) -> None:
        allocator = self._make_pool(machine, self._pool_pages())
        store = PersistentHashmap(machine, allocator, buckets=1024, data_size=_DATA_SIZE)
        machine.mark_measurement_start()

        rng = self.rng()
        streams: List[List[Callable[[], None]]] = []
        per_worker = self.ops // self.workers
        for worker in range(self.workers):
            ops: List[Callable[[], None]] = []
            for i in range(per_worker):
                key = worker * per_worker + i
                if i % 4 == 3:
                    probe = rng.randrange(max(1, key))
                    ops.append(lambda k=probe: store.get(k))
                else:
                    ops.append(lambda k=key: store.put(k))
            streams.append(ops)
        for op in _interleave(streams):
            op()


class CtreeWorkload(_WhisperBase):
    """ctree: data-size=128B, threads=2 — pointer-chasing inserts."""

    name = "CTree"

    def run(self, machine: Machine) -> None:
        allocator = self._make_pool(machine, self._pool_pages())
        tree = PersistentCritbitTree(machine, allocator, data_size=_DATA_SIZE)
        machine.mark_measurement_start()

        rng = self.rng()
        keys = list(range(self.ops))
        rng.shuffle(keys)
        streams: List[List[Callable[[], None]]] = []
        per_worker = self.ops // self.workers
        for worker in range(self.workers):
            chunk = keys[worker * per_worker : (worker + 1) * per_worker]
            ops: List[Callable[[], None]] = []
            for i, key in enumerate(chunk):
                if i % 4 == 3:
                    ops.append(lambda k=key: tree.get(k))
                else:
                    ops.append(lambda k=key: tree.put(k))
            streams.append(ops)
        for op in _interleave(streams):
            op()


#: Figure 3 and Figure 11's x-axis, in paper order.
WHISPER_BENCHMARKS = [
    ("YCSB", YcsbWorkload),
    ("Hashmap", HashmapWorkload),
    ("CTree", CtreeWorkload),
]


def make_whisper_workload(name: str, ops: int = 2000, seed: int = 99) -> _WhisperBase:
    for bench_name, cls in WHISPER_BENCHMARKS:
        if bench_name == name:
            return cls(ops=ops, seed=seed)
    raise KeyError(f"unknown Whisper benchmark {name!r}")
