"""PMEMKV-style benchmarks (Table II, middle block).

Five access patterns x two value sizes, all over the persistent B+Tree
engine on a DAX-mapped file:

================  ==========================================================
Fillrandom-S/L    load values in random key order
Fillseq-S/L       load values in sequential key order
Overwrite-S/L     replace values of a pre-filled store, random key order
Readrandom-S/L    read values in random key order (store pre-filled)
Readseq-S/L       read values in sequential key order (store pre-filled)
================  ==========================================================

``S`` = 64 B values, ``L`` = 4096 B values — the paper's locality knob:
a metadata-cache counter line covers 4 KB of data, so S packs 64 values
per counter line while every single L value spans a full line's
coverage, driving the -L variants' higher metadata miss rates.

Pre-fill happens before ``mark_measurement_start`` so results cover only
the benchmark's named phase, matching the paper's fast-forward.
"""

from __future__ import annotations

from typing import List

from ..mem.address import PAGE_SIZE
from ..sim.machine import Machine
from .base import Workload
from .btree import PersistentBTree
from .palloc import PersistentAllocator

__all__ = [
    "SMALL_VALUE",
    "LARGE_VALUE",
    "PmemkvWorkload",
    "Fillseq",
    "Fillrandom",
    "Overwrite",
    "Readrandom",
    "Readseq",
    "PMEMKV_BENCHMARKS",
    "make_pmemkv_workload",
]

SMALL_VALUE = 64
LARGE_VALUE = 4096

_DEFAULT_OPS_S = 2000
_DEFAULT_OPS_L = 500


class PmemkvWorkload(Workload):
    """Common scaffolding: file, pool, tree, key sequences."""

    pattern: str = "pmemkv"
    prefill: bool = False

    def __init__(self, value_size: int = SMALL_VALUE, ops: int = 0, seed: int = 1234) -> None:
        super().__init__(seed=seed)
        if value_size <= 0:
            raise ValueError("value_size must be positive")
        self.value_size = value_size
        suffix = "S" if value_size <= 256 else "L"
        self.ops = ops or (_DEFAULT_OPS_S if suffix == "S" else _DEFAULT_OPS_L)
        self.name = f"{self.pattern}-{suffix}"

    # -- scaffolding ---------------------------------------------------------

    def _pool_pages(self) -> int:
        # Values + nodes + headroom, twice over for overwrite churn.
        per_op = self.value_size + 3 * 64 + 384 // 8
        total = self.ops * per_op * 3 + 64 * PAGE_SIZE
        return min(-(-total // PAGE_SIZE), 24 * 1024)

    def _build_store(self, machine: Machine) -> PersistentBTree:
        encrypted = machine.config.scheme.has_file_encryption
        handle = machine.create_file(
            f"/pmem/{self.name}.db", uid=self.uid, encrypted=encrypted
        )
        base = machine.mmap(handle, pages=self._pool_pages())
        allocator = PersistentAllocator(
            machine, base, self._pool_pages() * PAGE_SIZE
        )
        return PersistentBTree(machine, allocator)

    def _keys(self, shuffled: bool) -> List[int]:
        keys = list(range(self.ops))
        if shuffled:
            self.rng().shuffle(keys)
        return keys

    def _fill(self, tree: PersistentBTree) -> None:
        for key in self._keys(shuffled=False):
            tree.put(key, self.value_size)

    # -- template ---------------------------------------------------------------

    def run(self, machine: Machine) -> None:
        tree = self._build_store(machine)
        if self.prefill:
            self._fill(tree)
        machine.mark_measurement_start()
        self.measured_phase(machine, tree)

    def measured_phase(self, machine: Machine, tree: PersistentBTree) -> None:
        raise NotImplementedError


class Fillseq(PmemkvWorkload):
    """fillseq: loads values in sequential key order."""

    pattern = "Fillseq"

    def measured_phase(self, machine: Machine, tree: PersistentBTree) -> None:
        for key in self._keys(shuffled=False):
            tree.put(key, self.value_size)


class Fillrandom(PmemkvWorkload):
    """fillrandom: loads values in random key order."""

    pattern = "Fillrandom"

    def measured_phase(self, machine: Machine, tree: PersistentBTree) -> None:
        for key in self._keys(shuffled=True):
            tree.put(key, self.value_size)


class Overwrite(PmemkvWorkload):
    """overwrite: replaces values of a pre-filled store in random order."""

    pattern = "Overwrite"
    prefill = True

    def measured_phase(self, machine: Machine, tree: PersistentBTree) -> None:
        for key in self._keys(shuffled=True):
            tree.put(key, self.value_size)


class Readrandom(PmemkvWorkload):
    """readrandom: reads values in random key order."""

    pattern = "Readrandom"
    prefill = True

    def measured_phase(self, machine: Machine, tree: PersistentBTree) -> None:
        for key in self._keys(shuffled=True):
            found = tree.get(key)
            assert found is not None, f"pre-filled key {key} missing"


class Readseq(PmemkvWorkload):
    """readseq: reads values in sequential key order."""

    pattern = "Readseq"
    prefill = True

    def measured_phase(self, machine: Machine, tree: PersistentBTree) -> None:
        for key in tree.keys_inorder():
            found = tree.get(key)
            assert found is not None


class Readmissing(PmemkvWorkload):
    """readmissing: probes keys that were never inserted.

    Not in the paper's figures — a PMEMKV-suite member included as an
    extension.  Misses walk the full tree but read no blob, so the
    FsEncr overhead profile is pure index traversal.
    """

    pattern = "Readmissing"
    prefill = True

    def measured_phase(self, machine: Machine, tree: PersistentBTree) -> None:
        for key in self._keys(shuffled=True):
            found = tree.get(key + self.ops * 10)  # disjoint key space
            assert found is None


class Deleterandom(PmemkvWorkload):
    """deleterandom: removes every key of a pre-filled store, random order.

    Extension benchmark: exercises the delete path (blob free + leaf
    shift) and, under FsEncr, the interplay of frees with per-file
    counters (freed space stays sealed until reallocated).
    """

    pattern = "Deleterandom"
    prefill = True

    def measured_phase(self, machine: Machine, tree: PersistentBTree) -> None:
        for key in self._keys(shuffled=True):
            removed = tree.delete(key)
            assert removed, f"pre-filled key {key} missing at delete"


#: Figure 8-10's x-axis, in paper order.
PMEMKV_BENCHMARKS = [
    ("Fillrandom-S", Fillrandom, SMALL_VALUE),
    ("Fillrandom-L", Fillrandom, LARGE_VALUE),
    ("Fillseq-S", Fillseq, SMALL_VALUE),
    ("Fillseq-L", Fillseq, LARGE_VALUE),
    ("Overwrite-S", Overwrite, SMALL_VALUE),
    ("Overwrite-L", Overwrite, LARGE_VALUE),
    ("Readrandom-S", Readrandom, SMALL_VALUE),
    ("Readrandom-L", Readrandom, LARGE_VALUE),
    ("Readseq-S", Readseq, SMALL_VALUE),
    ("Readseq-L", Readseq, LARGE_VALUE),
]

#: PMEMKV-suite extensions beyond the paper's figures.
PMEMKV_EXTENSIONS = [
    ("Readmissing-S", Readmissing, SMALL_VALUE),
    ("Deleterandom-S", Deleterandom, SMALL_VALUE),
]


def make_pmemkv_workload(name: str, ops: int = 0, seed: int = 1234) -> PmemkvWorkload:
    """Factory by paper name ("Fillrandom-L", ...) or extension name."""
    for bench_name, cls, value_size in PMEMKV_BENCHMARKS + PMEMKV_EXTENSIONS:
        if bench_name == name:
            return cls(value_size=value_size, ops=ops, seed=seed)
    raise KeyError(f"unknown PMEMKV benchmark {name!r}")
