"""PMDK-style redo-logged transactions over the persistent pool.

The Whisper/PMEMKV applications the paper evaluates are built on PMDK's
``libpmemobj``, whose core abstraction is the redo-logged transaction:

    1. append (address, new-value) records to a persistent redo log,
    2. persist the log, persist a commit marker,
    3. apply the records to their home locations, persist them,
    4. persist an invalidate marker (log consumed).

Crash before the commit marker: the transaction never happened (records
are ignored).  Crash after: replaying the log finishes it.  Either way
the application state is atomic — the property the paper's "internal
persistent registers ... similar to REDO logging" remark leans on.

:class:`RedoLog` implements the mechanism against the machine (real
persist ordering, real functional data when available);
:class:`BankWorkload` drives it with the classic concurrent-transfers
workload whose invariant (total balance) makes atomicity observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..mem.address import LINE_SIZE
from ..sim.machine import Machine
from .base import Workload
from .palloc import PersistentAllocator

__all__ = ["TxError", "RedoLog", "BankAccounts", "BankWorkload"]

_RECORD_BYTES = 24  # addr(8) + value(8) + checksum(8)
_HEADER_BYTES = 16  # state word + record count


class TxError(Exception):
    """Transaction misuse (nested begin, commit without begin...)."""


class RedoLog:
    """A persistent redo log with the canonical persist ordering."""

    #: log states (the persistent state word's values)
    IDLE, FILLING, COMMITTED = 0, 1, 2

    def __init__(self, machine: Machine, allocator: PersistentAllocator, capacity: int = 64) -> None:
        self.machine = machine
        self.capacity = capacity
        self.log_base = allocator.alloc(_HEADER_BYTES + capacity * _RECORD_BYTES)
        self._state = self.IDLE
        self._records: List[Tuple[int, bytes]] = []

    # -- transaction protocol ---------------------------------------------------

    def begin(self) -> None:
        if self._state != self.IDLE:
            raise TxError("transaction already open")
        self._state = self.FILLING
        self._records = []

    def log_write(self, vaddr: int, data: bytes) -> None:
        """Stage one mutation: appended and persisted to the log."""
        if self._state != self.FILLING:
            raise TxError("log_write outside a transaction")
        if len(self._records) >= self.capacity:
            raise TxError("redo log full")
        record_addr = self.log_base + _HEADER_BYTES + len(self._records) * _RECORD_BYTES
        self.machine.persist(record_addr, _RECORD_BYTES)
        self._records.append((vaddr, bytes(data)))

    def commit(self) -> None:
        """Persist the commit marker, apply, persist, invalidate."""
        if self._state != self.FILLING:
            raise TxError("commit without begin")
        # Commit marker: the atomic switch point.
        self.machine.persist(self.log_base, _HEADER_BYTES)
        self._state = self.COMMITTED
        self._apply()
        # Invalidate marker: log consumed.
        self.machine.persist(self.log_base, _HEADER_BYTES)
        self._state = self.IDLE
        self._records = []

    def abort(self) -> None:
        """Drop staged records; home locations were never touched."""
        if self._state != self.FILLING:
            raise TxError("abort without begin")
        self._state = self.IDLE
        self._records = []

    def _apply(self) -> None:
        functional = self.machine.config.functional
        for vaddr, data in self._records:
            if functional:
                self.machine.store_bytes(vaddr, data)
            else:
                self.machine.persist(vaddr, len(data))

    # -- crash simulation ----------------------------------------------------

    def crash(self) -> "RedoLogCrashImage":
        """Freeze the log's durable state at this instant."""
        return RedoLogCrashImage(
            state=self._state, records=list(self._records)
        )

    def recover(self, image: "RedoLogCrashImage") -> bool:
        """Post-crash replay.  Returns True if the tx was completed.

        Before the commit marker: discard (atomicity via do-nothing).
        After: re-apply every record (idempotent redo).
        """
        self._state = self.IDLE
        self._records = []
        if image.state != self.COMMITTED:
            return False
        for vaddr, data in image.records:
            if self.machine.config.functional:
                self.machine.store_bytes(vaddr, data)
            else:
                self.machine.persist(vaddr, len(data))
        return True


@dataclass
class RedoLogCrashImage:
    """The log's durable contents at crash time."""

    state: int
    records: List[Tuple[int, bytes]]


class BankAccounts:
    """N persistent 8-byte balances — the atomicity guinea pig."""

    def __init__(self, machine: Machine, allocator: PersistentAllocator, accounts: int, opening: int = 100) -> None:
        self.machine = machine
        self.accounts = accounts
        self.opening = opening
        self.base = allocator.alloc(accounts * 8)
        functional = machine.config.functional
        for index in range(accounts):
            if functional:
                machine.store_bytes(self.addr(index), opening.to_bytes(8, "big"))
            else:
                machine.persist(self.addr(index), 8)

    def addr(self, index: int) -> int:
        return self.base + index * 8

    def balance(self, index: int) -> int:
        return int.from_bytes(self.machine.load_bytes(self.addr(index), 8), "big")

    def total(self) -> int:
        return sum(self.balance(i) for i in range(self.accounts))

    def transfer(self, log: RedoLog, src: int, dst: int, amount: int) -> None:
        """One atomic transfer via the redo log."""
        machine = self.machine
        if machine.config.functional:
            src_balance = self.balance(src)
            dst_balance = self.balance(dst)
            log.begin()
            log.log_write(self.addr(src), (src_balance - amount).to_bytes(8, "big"))
            log.log_write(self.addr(dst), (dst_balance + amount).to_bytes(8, "big"))
            log.commit()
        else:
            machine.load(self.addr(src), 8)
            machine.load(self.addr(dst), 8)
            log.begin()
            log.log_write(self.addr(src), bytes(8))
            log.log_write(self.addr(dst), bytes(8))
            log.commit()


class BankWorkload(Workload):
    """Random transfers between persistent accounts (timing workload).

    A transactional write pattern distinct from the KV stores: small
    scattered updates, each wrapped in log-append/commit/apply persist
    ordering — the densest persist-per-byte pattern in the suite.
    """

    name = "BankTx"

    def __init__(self, accounts: int = 128, transfers: int = 1000, seed: int = 21) -> None:
        super().__init__(seed=seed)
        if accounts < 2 or transfers < 1:
            raise ValueError("need >= 2 accounts and >= 1 transfer")
        self.accounts = accounts
        self.transfers = transfers

    def run(self, machine: Machine) -> None:
        from ..mem.address import PAGE_SIZE

        encrypted = machine.config.scheme.has_file_encryption
        handle = machine.create_file("/pmem/bank.pool", uid=self.uid, encrypted=encrypted)
        pages = max(8, (self.accounts * 8 + 64 * _RECORD_BYTES) * 3 // PAGE_SIZE + 2)
        base = machine.mmap(handle, pages=pages)
        allocator = PersistentAllocator(machine, base, pages * PAGE_SIZE)
        bank = BankAccounts(machine, allocator, self.accounts)
        log = RedoLog(machine, allocator)
        machine.mark_measurement_start()

        rng = self.rng()
        for _ in range(self.transfers):
            src = rng.randrange(self.accounts)
            dst = (src + rng.randrange(1, self.accounts)) % self.accounts
            bank.transfer(log, src, dst, amount=1)
            machine.compute(200.0)
