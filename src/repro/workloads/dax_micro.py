"""In-house synthetic DAX micro-benchmarks (Table II, top block).

Four adversarial access patterns over a memory-mapped persistent file,
designed to stress the security-metadata path rather than resemble any
application:

* **DAX-1** — read 1 byte after every 16 bytes: 4 touches per cache
  line, high spatial locality, so each counter line amortises over many
  accesses.
* **DAX-2** — read 1 byte after every 128 bytes: every touch is a new
  line and a counter line covers only 32 touches — the high-metadata-
  miss pattern that tops Figures 12-14.
* **DAX-3** — two 16 B arrays at random distant locations, contents
  swapped: random placement misses the metadata cache on arrival, then
  the sequential swap within each array reuses one MECB/FECB line.
* **DAX-4** — the same with 128 B arrays: more sequential reuse per
  random placement, so better metadata utilisation than DAX-3.
"""

from __future__ import annotations

from ..mem.address import PAGE_SIZE
from ..sim.machine import Machine
from .base import Workload

__all__ = ["DaxMicro1", "DaxMicro2", "DaxMicro3", "DaxMicro4", "DAX_MICRO_BENCHMARKS", "make_dax_micro"]

_FILE_PAGES = 2048  # 8 MB mapped region — larger than the metadata cache covers


class _DaxMicroBase(Workload):
    def __init__(self, iterations: int = 20000, seed: int = 7) -> None:
        super().__init__(seed=seed)
        self.iterations = iterations

    def _map_file(self, machine: Machine) -> int:
        encrypted = machine.config.scheme.has_file_encryption
        handle = machine.create_file(
            f"/pmem/{self.name}.dat", uid=self.uid, encrypted=encrypted
        )
        base = machine.mmap(handle, pages=_FILE_PAGES)
        return base


class _StrideMicro(_DaxMicroBase):
    """Shared driver for DAX-1/DAX-2: byte reads at a fixed stride."""

    stride = 16

    def run(self, machine: Machine) -> None:
        base = self._map_file(machine)
        span = _FILE_PAGES * PAGE_SIZE
        machine.mark_measurement_start()
        offset = 0
        for _ in range(self.iterations):
            machine.load(base + offset, 1)
            offset = (offset + self.stride) % span


class DaxMicro1(_StrideMicro):
    """1 byte after each 16 bytes."""

    name = "DAX-1"
    stride = 16


class DaxMicro2(_StrideMicro):
    """1 byte after each 128 bytes."""

    name = "DAX-2"
    stride = 128


class _SwapMicro(_DaxMicroBase):
    """Shared driver for DAX-3/DAX-4: init two arrays, swap contents."""

    array_bytes = 16

    def run(self, machine: Machine) -> None:
        base = self._map_file(machine)
        span_pages = _FILE_PAGES - 1
        rng = self.rng()
        machine.mark_measurement_start()
        for _ in range(self.iterations // max(1, self.array_bytes // 8)):
            # Two arrays at random, distinct locations.
            loc_a = base + rng.randrange(span_pages) * PAGE_SIZE + rng.randrange(0, PAGE_SIZE - self.array_bytes, 8)
            loc_b = base + rng.randrange(span_pages) * PAGE_SIZE + rng.randrange(0, PAGE_SIZE - self.array_bytes, 8)
            # Initialise both arrays.
            machine.persist(loc_a, self.array_bytes)
            machine.persist(loc_b, self.array_bytes)
            # Swap word by word: load both sides, store both sides.
            for word in range(0, self.array_bytes, 8):
                machine.load(loc_a + word, 8)
                machine.load(loc_b + word, 8)
                machine.store(loc_a + word, 8)
                machine.store(loc_b + word, 8)
            machine.persist(loc_a, self.array_bytes)
            machine.persist(loc_b, self.array_bytes)


class DaxMicro3(_SwapMicro):
    """Two 16 B arrays, random locations, contents swapped."""

    name = "DAX-3"
    array_bytes = 16


class DaxMicro4(_SwapMicro):
    """Two 128 B arrays, random locations, contents swapped."""

    name = "DAX-4"
    array_bytes = 128


#: Figures 12-14's x-axis, in paper order.
DAX_MICRO_BENCHMARKS = [
    ("DAX-1", DaxMicro1),
    ("DAX-2", DaxMicro2),
    ("DAX-3", DaxMicro3),
    ("DAX-4", DaxMicro4),
]


def make_dax_micro(name: str, iterations: int = 20000, seed: int = 7) -> _DaxMicroBase:
    for bench_name, cls in DAX_MICRO_BENCHMARKS:
        if bench_name == name:
            return cls(iterations=iterations, seed=seed)
    raise KeyError(f"unknown DAX micro-benchmark {name!r}")
