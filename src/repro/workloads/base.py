"""Workload framework: the contract between benchmarks and the machine.

A workload is a deterministic trace generator *with application
structure*: it opens/creates files on the machine's DAX filesystem, maps
them, and drives loads/stores/persists the way the real application's
data structures would.  Determinism (seeded RNGs, no wall clock) makes
scheme comparisons exact: the same workload object replayed on two
machines issues the identical logical operation sequence, so every
difference in the result is the scheme's.
"""

from __future__ import annotations

import random
import re
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..sim.config import MachineConfig, Scheme
from ..sim.machine import Machine
from ..sim.results import Comparison, ResultTable, RunResult
from ..sim.schemes import SchemeRef, canonical_scheme_name, get_scheme

__all__ = [
    "Workload",
    "run_workload",
    "compare_schemes",
    "WorkloadComparison",
    "StreamSpec",
    "parse_stream_mix",
    "stream_factories",
]

_DEFAULT_UID = 1000
_DEFAULT_GID = 100


class Workload(ABC):
    """Base class: subclasses implement :meth:`run` against a machine."""

    #: Human-readable benchmark identifier (Table II names).
    name: str = "workload"

    def __init__(self, seed: int = 1234) -> None:
        self.seed = seed

    def rng(self) -> random.Random:
        """A fresh deterministic RNG (one per run, so replays agree)."""
        return random.Random(self.seed)

    def setup(self, machine: Machine) -> None:
        """Default setup: one logged-in user.  Subclasses extend."""
        machine.add_user(uid=_DEFAULT_UID, gid=_DEFAULT_GID, passphrase="workload-pass")

    @property
    def uid(self) -> int:
        return _DEFAULT_UID

    @abstractmethod
    def run(self, machine: Machine) -> None:
        """Execute the workload's operations against the machine."""

    def wants_encryption(self, scheme: Scheme) -> bool:
        """Whether files are created encrypted under this scheme.

        Encrypted under FsEncr and the software scheme; plain ext4-dax
        and the memory-encryption-only baseline have no file keys.
        """
        return scheme.has_file_encryption


def run_workload(
    config: MachineConfig, workload: Workload, batch: bool = False
) -> RunResult:
    """Build a machine, run the workload, return the result record.

    ``batch=True`` routes through the compiled-trace executor
    (:mod:`repro.sim.batch`): the workload is captured once, lowered to
    flat micro-op arrays, and swept through the inline interpreter.
    Results are bit-identical to the per-access path either way — the
    batch module falls back to direct execution for workloads or
    machine configurations outside its envelope.
    """
    if batch:
        from ..sim.batch import run_workload_batch

        return run_workload_batch(config, workload)
    machine = Machine(config)
    workload.setup(machine)
    workload.run(machine)
    return machine.result(workload.name)


# ----------------------------------------------------------------------
# Stream mixes: workloads as concurrent-traffic stream factories
# ----------------------------------------------------------------------

#: Seed stride between streams of one spec: stream 0 keeps the factory
#: seed exactly (a 1-stream mix reproduces the classic run), later
#: streams get distinct-but-deterministic offsets.
_STREAM_SEED_STRIDE = 101

_MIX_PART = re.compile(r"(?:(\d+)[x×])?(.+)")


@dataclass(frozen=True)
class StreamSpec:
    """``count`` concurrent streams of one named workload.

    ``workload`` is a benchmark name the experiment layer resolves
    (``"Fillseq-S"``, ``"Hashmap"``, ``"DAX-2"``, ``"ManyFiles@10"``,
    ...); ``ops``/``iterations``/``seed`` override factory defaults the
    same way :class:`~repro.exec.spec.CellSpec` fields do (0 / ``None``
    = default).
    """

    workload: str
    count: int = 1
    ops: int = 0
    iterations: int = 0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.workload:
            raise ValueError("stream spec needs a workload name")
        if self.count < 1:
            raise ValueError(f"stream count must be >= 1, got {self.count}")


def parse_stream_mix(mix: str) -> Tuple[StreamSpec, ...]:
    """Parse ``"3xFillseq-S+2xHashmap"`` into stream specs.

    Each ``+``-separated part is ``[Nx]<workload>``; a missing
    multiplier means one stream.  The workload names themselves are not
    validated here — resolution happens when factories are built, so a
    typo fails loudly there with the resolver's error.
    """
    specs = []
    for part in mix.split("+"):
        part = part.strip()
        if not part:
            raise ValueError(f"empty stream spec in mix {mix!r}")
        match = _MIX_PART.fullmatch(part)
        assert match is not None  # (.+) matches any non-empty part
        count = int(match.group(1)) if match.group(1) else 1
        specs.append(StreamSpec(workload=match.group(2), count=count))
    if not specs:
        raise ValueError("a stream mix needs at least one stream")
    return tuple(specs)


def stream_factories(
    mix: "str | Iterable[StreamSpec]",
) -> List[Callable[[], Workload]]:
    """One fresh-workload factory per concurrent stream of a mix.

    Streams of the same spec get deterministically distinct seeds
    (factory default + ``_STREAM_SEED_STRIDE`` × stream index within
    the spec) so "3× pmemkv" means three clients with decorrelated
    access patterns, not three lockstep clones.  Stream 0 of every spec
    keeps the factory seed exactly, so a 1-stream mix reproduces the
    classic single-stream workload bit-for-bit.
    """
    # Resolution lives in the experiment layer; imported lazily because
    # exec.spec imports this module's run_workload at execution time.
    from ..exec.spec import resolve_workload

    if isinstance(mix, str):
        mix = parse_stream_mix(mix)
    factories: List[Callable[[], Workload]] = []
    for spec in mix:
        base_factory = resolve_workload(
            spec.workload, ops=spec.ops, iterations=spec.iterations, seed=spec.seed
        )
        base_seed = base_factory().seed
        for index in range(spec.count):
            factories.append(
                resolve_workload(
                    spec.workload,
                    ops=spec.ops,
                    iterations=spec.iterations,
                    seed=base_seed + _STREAM_SEED_STRIDE * index,
                )
            )
    if not factories:
        raise ValueError("a stream mix needs at least one stream")
    return factories


@dataclass
class WorkloadComparison:
    """All schemes' results for one workload, plus baseline-normalised rows."""

    workload: str
    runs: Dict[str, RunResult]

    def against(self, baseline_scheme: SchemeRef, scheme: SchemeRef) -> Comparison:
        """Baseline-normalised row; schemes by registry name or enum."""
        return Comparison.of(
            self.runs[canonical_scheme_name(scheme)],
            self.runs[canonical_scheme_name(baseline_scheme)],
        )


def compare_schemes(
    workload_factory,
    config: Optional[MachineConfig] = None,
    schemes: Iterable[SchemeRef] = ("baseline_secure", "fsencr"),
) -> WorkloadComparison:
    """Run one workload under several schemes on otherwise-equal machines.

    ``schemes`` entries are registry names (``"fsencr"``,
    ``"fsencr+wpq"``, ...); :class:`~repro.sim.config.Scheme` members
    are accepted for compatibility.  Each name's
    :class:`~repro.sim.schemes.SchemeSpec` projects the shared base
    config onto its column, so variant schemes carry their pins (WPQ,
    Anubis, partitioned cache) without the caller hand-building configs.

    ``workload_factory()`` must return a *fresh* workload each call —
    workloads may hold per-run state (allocator cursors, in-memory
    indices), so sharing an instance across schemes would skew replays.
    """
    base_config = config or MachineConfig()
    runs: Dict[str, RunResult] = {}
    name = None
    for scheme in schemes:
        scheme_name = canonical_scheme_name(scheme)
        workload = workload_factory()
        name = workload.name
        run_config = get_scheme(scheme_name).configure(base_config)
        runs[scheme_name] = run_workload(run_config, workload)
    assert name is not None, "schemes iterable was empty"
    return WorkloadComparison(workload=name, runs=runs)
