"""Workloads: Table II's benchmark suite, built from scratch.

Persistent data structures (B+Tree, chained hashmap, crit-bit tree) over
a PMDK-style pool allocator, driven by the PMEMKV, Whisper, and in-house
micro-benchmark patterns the paper evaluates.
"""

from .base import (
    StreamSpec,
    Workload,
    WorkloadComparison,
    compare_schemes,
    parse_stream_mix,
    run_workload,
    stream_factories,
)
from .btree import PersistentBTree
from .ctree import PersistentCritbitTree
from .dax_micro import (
    DAX_MICRO_BENCHMARKS,
    DaxMicro1,
    DaxMicro2,
    DaxMicro3,
    DaxMicro4,
    make_dax_micro,
)
from .hashmap import PersistentHashmap
from .many_files import ManyFilesWorkload
from .palloc import PersistentAllocator, PoolExhausted
from .pmemkv import (
    LARGE_VALUE,
    PMEMKV_BENCHMARKS,
    PMEMKV_EXTENSIONS,
    SMALL_VALUE,
    Deleterandom,
    Readmissing,
    Fillrandom,
    Fillseq,
    Overwrite,
    PmemkvWorkload,
    Readrandom,
    Readseq,
    make_pmemkv_workload,
)
from .transactions import BankAccounts, BankWorkload, RedoLog, TxError
from .whisper import (
    WHISPER_BENCHMARKS,
    CtreeWorkload,
    HashmapWorkload,
    YcsbWorkload,
    make_whisper_workload,
)

__all__ = [
    "Workload",
    "WorkloadComparison",
    "run_workload",
    "compare_schemes",
    "StreamSpec",
    "parse_stream_mix",
    "stream_factories",
    "PersistentAllocator",
    "PoolExhausted",
    "PersistentBTree",
    "PersistentHashmap",
    "ManyFilesWorkload",
    "BankAccounts",
    "BankWorkload",
    "RedoLog",
    "TxError",
    "PersistentCritbitTree",
    "PmemkvWorkload",
    "Fillseq",
    "Fillrandom",
    "Overwrite",
    "Readrandom",
    "Readseq",
    "PMEMKV_BENCHMARKS",
    "PMEMKV_EXTENSIONS",
    "Readmissing",
    "Deleterandom",
    "SMALL_VALUE",
    "LARGE_VALUE",
    "make_pmemkv_workload",
    "YcsbWorkload",
    "HashmapWorkload",
    "CtreeWorkload",
    "WHISPER_BENCHMARKS",
    "make_whisper_workload",
    "DaxMicro1",
    "DaxMicro2",
    "DaxMicro3",
    "DaxMicro4",
    "DAX_MICRO_BENCHMARKS",
    "make_dax_micro",
]
