"""A persistent-heap allocator over a mapped DAX file.

The PMDK-style workloads (PMEMKV's B+Tree, Whisper's hashmap and ctree)
allocate their nodes from a persistent pool inside a memory-mapped file.
This allocator models libpmemobj's role: carve the mapped range into
objects, keep the allocation metadata *itself* in persistent memory
(every alloc/free persists a small header, as real pool allocators must),
and hand out virtual addresses the workload then loads/stores through
the machine.

It is a bump allocator with size-class free lists — enough realism to
give allocation the write/persist cost it has in PMDK without modelling
full heap compaction.
"""

from __future__ import annotations

from typing import Dict, List

from ..mem.address import LINE_SIZE
from ..sim.machine import Machine

__all__ = ["PersistentAllocator", "PoolExhausted"]

_HEADER_BYTES = 16  # per-object persistent header (size + state word)


class PoolExhausted(Exception):
    """The mapped pool ran out of space."""


class PersistentAllocator:
    """Object allocator inside a [base, base+size) mapped range."""

    def __init__(self, machine: Machine, base_vaddr: int, size_bytes: int) -> None:
        if size_bytes <= 0:
            raise ValueError("pool must be non-empty")
        self.machine = machine
        self.base = base_vaddr
        self.size = size_bytes
        # The pool header occupies the first line (root pointer etc.).
        self._cursor = base_vaddr + LINE_SIZE
        self._free: Dict[int, List[int]] = {}
        self._allocated = 0

    @staticmethod
    def _round(n: int) -> int:
        """Size classes are line multiples: persistent objects are padded
        to cache lines so flushes never straddle unrelated objects."""
        payload = n + _HEADER_BYTES
        return ((payload + LINE_SIZE - 1) // LINE_SIZE) * LINE_SIZE

    def alloc(self, nbytes: int) -> int:
        """Allocate; returns the payload virtual address.

        Charges the persistent-metadata update: the object header is
        written and persisted (PMDK's redo-logged alloc).
        """
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        size_class = self._round(nbytes)
        bucket = self._free.get(size_class)
        if bucket:
            addr = bucket.pop()
        else:
            if self._cursor + size_class > self.base + self.size:
                raise PoolExhausted(
                    f"pool of {self.size} bytes exhausted ({self._allocated} live)"
                )
            addr = self._cursor
            self._cursor += size_class
        # Persist the object header (state = allocated).
        self.machine.persist(addr, _HEADER_BYTES)
        self._allocated += 1
        return addr + _HEADER_BYTES

    def free(self, payload_addr: int, nbytes: int) -> None:
        """Return an object to its size-class free list."""
        size_class = self._round(nbytes)
        addr = payload_addr - _HEADER_BYTES
        self.machine.persist(addr, _HEADER_BYTES)  # state = free
        self._free.setdefault(size_class, []).append(addr)
        self._allocated -= 1

    @property
    def live_objects(self) -> int:
        return self._allocated

    @property
    def bytes_used(self) -> int:
        return self._cursor - self.base
