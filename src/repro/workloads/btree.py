"""A persistent B+Tree key-value engine over a DAX-mapped file.

This is the reproduction's stand-in for PMEMKV's ``btree`` engine
(Table II): nodes and value blobs live in a persistent pool inside a
memory-mapped file, updates follow the PMDK discipline (store + clwb +
sfence on every persistent mutation), and every logical step issues the
machine loads/stores a pointer-walking B+Tree really performs.

The Python objects are *shadow* copies of the persistent nodes — they
carry the addresses and the logical content so the traversal logic stays
readable, while all performance-relevant memory traffic goes through the
:class:`~repro.sim.machine.Machine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..sim.machine import Machine
from .palloc import PersistentAllocator

__all__ = ["PersistentBTree"]

_FANOUT = 16  # max keys per node
_KEY_BYTES = 8
_PTR_BYTES = 8
_HEADER_BYTES = 16
_NODE_BYTES = _HEADER_BYTES + _FANOUT * (_KEY_BYTES + _PTR_BYTES)
_COMPARE_NS = 12.0  # one key compare + branch
_OP_OVERHEAD_NS = 150.0  # API entry, hashing, bookkeeping per op


@dataclass
class _Node:
    """Shadow of one persistent node."""

    addr: int
    is_leaf: bool
    keys: List[int] = field(default_factory=list)
    # Leaves: value blob addresses (+ sizes); internal: child nodes.
    children: List["_Node"] = field(default_factory=list)
    values: List[Tuple[int, int]] = field(default_factory=list)  # (addr, size)

    def key_slot_addr(self, index: int) -> int:
        return self.addr + _HEADER_BYTES + index * _KEY_BYTES

    def ptr_slot_addr(self, index: int) -> int:
        return self.addr + _HEADER_BYTES + _FANOUT * _KEY_BYTES + index * _PTR_BYTES


class PersistentBTree:
    """B+Tree with persistent nodes and out-of-line value blobs."""

    def __init__(self, machine: Machine, allocator: PersistentAllocator) -> None:
        self.machine = machine
        self.allocator = allocator
        self.root = self._new_node(is_leaf=True)
        self.size = 0

    # ------------------------------------------------------------------
    # Node plumbing
    # ------------------------------------------------------------------

    def _new_node(self, is_leaf: bool) -> _Node:
        addr = self.allocator.alloc(_NODE_BYTES)
        node = _Node(addr=addr, is_leaf=is_leaf)
        # Initialise the node header persistently.
        self.machine.persist(addr, _HEADER_BYTES)
        return node

    def _search_node(self, node: _Node, key: int) -> int:
        """Binary search with the machine traffic a real probe costs."""
        machine = self.machine
        machine.load(node.addr, _HEADER_BYTES)  # header: count, leaf flag
        lo, hi = 0, len(node.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            machine.load(node.key_slot_addr(mid), _KEY_BYTES)
            machine.compute(_COMPARE_NS)
            if node.keys[mid] <= key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------

    def put(self, key: int, value_size: int) -> None:
        """Insert or update ``key`` with a blob of ``value_size`` bytes."""
        self.machine.compute(_OP_OVERHEAD_NS)
        leaf, path = self._descend(key)
        slot = self._leaf_slot(leaf, key)
        if slot is not None:
            # Update in place: rewrite the blob, persist it.
            addr, old_size = leaf.values[slot]
            if old_size != value_size:
                self.allocator.free(addr, old_size)
                addr = self.allocator.alloc(value_size)
                leaf.values[slot] = (addr, value_size)
                self.machine.persist(leaf.ptr_slot_addr(slot), _PTR_BYTES)
            self.machine.persist(addr, value_size)
            return

        blob = self.allocator.alloc(value_size)
        self.machine.persist(blob, value_size)
        insert_at = self._search_node(leaf, key)
        leaf.keys.insert(insert_at, key)
        leaf.values.insert(insert_at, (blob, value_size))
        # Shifting entries right of the insertion point is persistent
        # traffic: key+pointer per shifted slot, then the new entry and
        # the header.
        for index in range(insert_at, len(leaf.keys)):
            self.machine.persist(leaf.key_slot_addr(index), _KEY_BYTES)
            self.machine.persist(leaf.ptr_slot_addr(index), _PTR_BYTES)
        self.machine.persist(leaf.addr, _HEADER_BYTES)
        self.size += 1
        if len(leaf.keys) > _FANOUT:
            self._split(leaf, path)

    def get(self, key: int) -> Optional[int]:
        """Look up ``key``; returns the value size read, or None.

        Reads the whole blob (PMEMKV returns the value bytes)."""
        self.machine.compute(_OP_OVERHEAD_NS)
        leaf, _ = self._descend(key)
        slot = self._leaf_slot(leaf, key)
        if slot is None:
            return None
        addr, size = leaf.values[slot]
        self.machine.load(addr, size)
        return size

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns True if it existed.

        Deletion is *lazy* (no leaf merging), the common KV-engine
        choice: the entry and its blob are freed and the remaining leaf
        entries shift left — persistent traffic mirrors the insert
        shift.  Underfull leaves are tolerated; they refill on later
        inserts or die with the tree.
        """
        self.machine.compute(_OP_OVERHEAD_NS)
        leaf, _ = self._descend(key)
        slot = self._leaf_slot(leaf, key)
        if slot is None:
            return False
        addr, size = leaf.values[slot]
        self.allocator.free(addr, size)
        leaf.keys.pop(slot)
        leaf.values.pop(slot)
        # Shift the tail left: key+pointer persists per moved slot.
        for index in range(slot, len(leaf.keys)):
            self.machine.persist(leaf.key_slot_addr(index), _KEY_BYTES)
            self.machine.persist(leaf.ptr_slot_addr(index), _PTR_BYTES)
        self.machine.persist(leaf.addr, _HEADER_BYTES)
        self.size -= 1
        return True

    def keys_inorder(self) -> List[int]:
        """All keys, ascending (drives readseq without machine traffic)."""
        out: List[int] = []

        def walk(node: _Node) -> None:
            if node.is_leaf:
                out.extend(node.keys)
                return
            for child in node.children:
                walk(child)

        walk(self.root)
        return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _descend(self, key: int) -> Tuple[_Node, List[_Node]]:
        node = self.root
        path: List[_Node] = []
        while not node.is_leaf:
            slot = self._search_node(node, key)
            self.machine.load(node.ptr_slot_addr(min(slot, len(node.children) - 1)), _PTR_BYTES)
            path.append(node)
            node = node.children[min(slot, len(node.children) - 1)]
        return node, path

    def _leaf_slot(self, leaf: _Node, key: int) -> Optional[int]:
        slot = self._search_node(leaf, key) - 1
        if 0 <= slot < len(leaf.keys) and leaf.keys[slot] == key:
            return slot
        return None

    def _split(self, node: _Node, path: List[_Node]) -> None:
        """Split an overfull node, copying the upper half to a new node."""
        sibling = self._new_node(is_leaf=node.is_leaf)
        mid = len(node.keys) // 2
        if node.is_leaf:
            sibling.keys = node.keys[mid:]
            separator = sibling.keys[0]
            node.keys = node.keys[:mid]
            sibling.values = node.values[mid:]
            node.values = node.values[:mid]
        else:
            # The separator moves up; children split around it so each
            # side keeps the keys+1 == children invariant.
            separator = node.keys[mid]
            sibling.keys = node.keys[mid + 1 :]
            sibling.children = node.children[mid + 1 :]
            node.keys = node.keys[:mid]
            node.children = node.children[: mid + 1]

        # Copy traffic: read the moved half, persist it at the sibling.
        moved = len(sibling.keys) + 1
        for index in range(moved):
            self.machine.load(node.key_slot_addr(mid + index), _KEY_BYTES + _PTR_BYTES)
            self.machine.persist(sibling.key_slot_addr(index), _KEY_BYTES + _PTR_BYTES)
        self.machine.persist(sibling.addr, _HEADER_BYTES)
        self.machine.persist(node.addr, _HEADER_BYTES)

        if not path:
            new_root = self._new_node(is_leaf=False)
            new_root.keys = [separator]
            new_root.children = [node, sibling]
            self.machine.persist(new_root.addr, _HEADER_BYTES + _KEY_BYTES + 2 * _PTR_BYTES)
            self.root = new_root
            return

        parent = path[-1]
        slot = self._search_node(parent, separator)
        parent.keys.insert(slot, separator)
        parent.children.insert(slot + 1, sibling)
        self.machine.persist(parent.key_slot_addr(slot), _KEY_BYTES)
        self.machine.persist(parent.ptr_slot_addr(slot + 1), _PTR_BYTES)
        self.machine.persist(parent.addr, _HEADER_BYTES)
        if len(parent.keys) > _FANOUT:
            self._split(parent, path[:-1])
