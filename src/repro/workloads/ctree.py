"""A persistent crit-bit tree — Whisper's ``ctree`` data structure.

A crit-bit (PATRICIA) tree over 64-bit keys: internal nodes store the
index of the highest bit where their subtrees' keys differ; leaves hold
the key and a fixed-size payload.  Lookups walk one node per decided
bit; inserts add exactly one internal node and one leaf — persistent
pointer-chasing with small nodes, the access pattern that distinguishes
ctree from the hashmap in Figure 11.

Internal node layout: 8 B crit-bit | 8 B left | 8 B right.
Leaf layout:          8 B key      | ``data_size`` B payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..sim.machine import Machine
from .palloc import PersistentAllocator

__all__ = ["PersistentCritbitTree"]

_PTR_BYTES = 8
_KEY_BYTES = 8
_INTERNAL_BYTES = 8 + 2 * _PTR_BYTES
_BIT_TEST_NS = 10.0
_OP_OVERHEAD_NS = 120.0


@dataclass
class _Leaf:
    addr: int
    key: int


@dataclass
class _Internal:
    addr: int
    crit_bit: int
    left: "Union[_Leaf, _Internal, None]" = None
    right: "Union[_Leaf, _Internal, None]" = None

    def child_for(self, key: int) -> "Union[_Leaf, _Internal, None]":
        return self.right if (key >> self.crit_bit) & 1 else self.left

    def set_child(self, key: int, node: "Union[_Leaf, _Internal]") -> None:
        if (key >> self.crit_bit) & 1:
            self.right = node
        else:
            self.left = node

    def child_slot_addr(self, key: int) -> int:
        side = (key >> self.crit_bit) & 1
        return self.addr + 8 + side * _PTR_BYTES


class PersistentCritbitTree:
    """Crit-bit tree with persistent nodes; 64-bit keys."""

    def __init__(
        self, machine: Machine, allocator: PersistentAllocator, data_size: int = 128
    ) -> None:
        self.machine = machine
        self.allocator = allocator
        self.data_size = data_size
        self.leaf_size = _KEY_BYTES + data_size
        self.root: Union[_Leaf, _Internal, None] = None
        # The persistent root pointer lives at a fixed pool slot.
        self.root_ptr_addr = allocator.alloc(_PTR_BYTES)
        self.size = 0

    # ------------------------------------------------------------------

    def _descend_to_leaf(self, key: int) -> Optional[_Leaf]:
        """Walk to the closest leaf, charging one node load per step."""
        machine = self.machine
        machine.load(self.root_ptr_addr, _PTR_BYTES)
        node = self.root
        while isinstance(node, _Internal):
            machine.load(node.addr, _INTERNAL_BYTES)
            machine.compute(_BIT_TEST_NS)
            node = node.child_for(key)
        return node

    def _new_leaf(self, key: int) -> _Leaf:
        addr = self.allocator.alloc(self.leaf_size)
        self.machine.persist(addr, self.leaf_size)
        return _Leaf(addr=addr, key=key)

    # ------------------------------------------------------------------

    def put(self, key: int) -> None:
        self.machine.compute(_OP_OVERHEAD_NS)
        if self.root is None:
            leaf = self._new_leaf(key)
            self.machine.persist(self.root_ptr_addr, _PTR_BYTES)
            self.root = leaf
            self.size = 1
            return

        nearest = self._descend_to_leaf(key)
        assert nearest is not None
        if nearest.key == key:
            # Update payload in place.
            self.machine.persist(nearest.addr + _KEY_BYTES, self.data_size)
            return

        crit_bit = (key ^ nearest.key).bit_length() - 1
        leaf = self._new_leaf(key)
        internal_addr = self.allocator.alloc(_INTERNAL_BYTES)
        internal = _Internal(addr=internal_addr, crit_bit=crit_bit)

        # Find the insertion point: the first node on the path whose
        # crit bit is below ours (standard crit-bit insert).
        parent: Optional[_Internal] = None
        node = self.root
        while isinstance(node, _Internal) and node.crit_bit > crit_bit:
            self.machine.load(node.addr, _INTERNAL_BYTES)
            self.machine.compute(_BIT_TEST_NS)
            parent = node
            node = node.child_for(key)

        internal.set_child(key, leaf)
        other_side = node
        if (key >> crit_bit) & 1:
            internal.left = other_side
        else:
            internal.right = other_side

        # Persist the new internal node fully, then publish the link.
        self.machine.persist(internal_addr, _INTERNAL_BYTES)
        if parent is None:
            self.machine.persist(self.root_ptr_addr, _PTR_BYTES)
            self.root = internal
        else:
            self.machine.persist(parent.child_slot_addr(key), _PTR_BYTES)
            parent.set_child(key, internal)
        self.size += 1

    def get(self, key: int) -> bool:
        self.machine.compute(_OP_OVERHEAD_NS)
        leaf = self._descend_to_leaf(key)
        if leaf is None or leaf.key != key:
            return False
        self.machine.load(leaf.addr + _KEY_BYTES, self.data_size)
        return True
