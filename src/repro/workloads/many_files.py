"""Many-files workload: pressure on the Open Tunnel Table.

The paper argues OTT management is negligible because installs happen
only at file creation/open and the table holds 1024 keys.  This
workload is the adversarial probe of that claim: it creates *more
encrypted files than the OTT holds* and then touches them round-robin,
so every access cycle works through keys that may have spilled to the
encrypted region.

Used by the OTT ablation benchmark (sweeping the table size) rather
than by any paper figure.
"""

from __future__ import annotations

import random

from ..mem.address import PAGE_SIZE
from ..sim.machine import Machine
from .base import Workload

__all__ = ["ManyFilesWorkload"]


class ManyFilesWorkload(Workload):
    """Create ``num_files`` encrypted files; touch them round-robin.

    ``churn`` turns on open/close pressure: each round, that fraction
    of the files (deterministically chosen from a dedicated seeded
    schedule) is re-opened and re-mapped before being touched, so the
    measured window pays syscall, fault, and key-lookup costs the way a
    multi-tenant server with short-lived file sessions would.  The
    schedule RNG is separate from the touch RNG and is never drawn when
    ``churn`` is 0, so the default op stream is unchanged.
    """

    name = "ManyFiles"

    def __init__(
        self,
        num_files: int = 64,
        rounds: int = 4,
        pages_per_file: int = 2,
        touches_per_round: int = 2,
        seed: int = 11,
        churn: float = 0.0,
    ) -> None:
        super().__init__(seed=seed)
        if min(num_files, rounds, pages_per_file, touches_per_round) < 1:
            raise ValueError("all workload dimensions must be positive")
        if not 0.0 <= churn <= 1.0:
            raise ValueError(f"churn must be in [0, 1], got {churn!r}")
        self.num_files = num_files
        self.rounds = rounds
        self.pages_per_file = pages_per_file
        self.touches_per_round = touches_per_round
        self.churn = churn

    def _churn_rng(self) -> random.Random:
        # Distinct from the touch RNG so enabling churn perturbs the
        # reopen schedule without re-rolling the access offsets.
        return random.Random((self.seed << 8) ^ 0xC4)

    def churn_schedule(self):
        """Per-round file indices to re-open; deterministic in the seed."""
        per_round = int(self.churn * self.num_files)
        rng = self._churn_rng()
        return [
            sorted(rng.sample(range(self.num_files), per_round))
            for _ in range(self.rounds)
        ]

    def run(self, machine: Machine) -> None:
        encrypted = machine.config.scheme.has_file_encryption
        paths = [f"/pmem/shard-{index:04d}.dat" for index in range(self.num_files)]
        bases = []
        for index, path in enumerate(paths):
            handle = machine.create_file(path, uid=self.uid, encrypted=encrypted)
            base = machine.mmap(handle, pages=self.pages_per_file)
            bases.append(base)
        machine.mark_measurement_start()

        rng = self.rng()
        schedule = self.churn_schedule() if self.churn else None
        span = self.pages_per_file * PAGE_SIZE
        for round_index in range(self.rounds):
            if schedule is not None:
                for index in schedule[round_index]:
                    handle = machine.open_file(paths[index], uid=self.uid, write=True)
                    bases[index] = machine.mmap(handle, pages=self.pages_per_file)
            for base in bases:
                for _ in range(self.touches_per_round):
                    offset = rng.randrange(0, span - 64, 64)
                    machine.store(base + offset, 64)
                    machine.load(base + offset, 64)
                machine.compute(100.0)
