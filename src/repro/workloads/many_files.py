"""Many-files workload: pressure on the Open Tunnel Table.

The paper argues OTT management is negligible because installs happen
only at file creation/open and the table holds 1024 keys.  This
workload is the adversarial probe of that claim: it creates *more
encrypted files than the OTT holds* and then touches them round-robin,
so every access cycle works through keys that may have spilled to the
encrypted region.

Used by the OTT ablation benchmark (sweeping the table size) rather
than by any paper figure.
"""

from __future__ import annotations

from ..mem.address import PAGE_SIZE
from ..sim.machine import Machine
from .base import Workload

__all__ = ["ManyFilesWorkload"]


class ManyFilesWorkload(Workload):
    """Create ``num_files`` encrypted files; touch them round-robin."""

    name = "ManyFiles"

    def __init__(
        self,
        num_files: int = 64,
        rounds: int = 4,
        pages_per_file: int = 2,
        touches_per_round: int = 2,
        seed: int = 11,
    ) -> None:
        super().__init__(seed=seed)
        if min(num_files, rounds, pages_per_file, touches_per_round) < 1:
            raise ValueError("all workload dimensions must be positive")
        self.num_files = num_files
        self.rounds = rounds
        self.pages_per_file = pages_per_file
        self.touches_per_round = touches_per_round

    def run(self, machine: Machine) -> None:
        encrypted = machine.config.scheme.has_file_encryption
        bases = []
        for index in range(self.num_files):
            handle = machine.create_file(
                f"/pmem/shard-{index:04d}.dat", uid=self.uid, encrypted=encrypted
            )
            base = machine.mmap(handle, pages=self.pages_per_file)
            bases.append(base)
        machine.mark_measurement_start()

        rng = self.rng()
        span = self.pages_per_file * PAGE_SIZE
        for _ in range(self.rounds):
            for base in bases:
                for _ in range(self.touches_per_round):
                    offset = rng.randrange(0, span - 64, 64)
                    machine.store(base + offset, 64)
                    machine.load(base + offset, 64)
                machine.compute(100.0)
