"""A persistent chained hashmap — Whisper's ``hashmap`` data structure.

Fixed bucket array + chained entry nodes, all in the persistent pool.
Every mutation follows the persist discipline: write the new node, clwb
it, fence, then atomically link it by persisting the bucket-head (or
predecessor) pointer — the standard PM-safe publication order.

Entry layout: 8 B key | ``data_size`` B payload | 8 B next pointer.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.machine import Machine
from .palloc import PersistentAllocator

__all__ = ["PersistentHashmap"]

_PTR_BYTES = 8
_KEY_BYTES = 8
_HASH_NS = 25.0
_OP_OVERHEAD_NS = 120.0


class PersistentHashmap:
    """Chained hashmap with persistent buckets and nodes."""

    def __init__(
        self,
        machine: Machine,
        allocator: PersistentAllocator,
        buckets: int = 1024,
        data_size: int = 128,
    ) -> None:
        if buckets <= 0 or buckets & (buckets - 1):
            raise ValueError("buckets must be a power of two")
        self.machine = machine
        self.allocator = allocator
        self.num_buckets = buckets
        self.data_size = data_size
        self.entry_size = _KEY_BYTES + data_size + _PTR_BYTES
        # The bucket array itself is a persistent object.
        self.bucket_base = allocator.alloc(buckets * _PTR_BYTES)
        # Shadow: bucket index -> list of (key, node_addr), head first.
        self._chains: Dict[int, List["tuple[int, int]"]] = {}
        self.size = 0

    def _bucket(self, key: int) -> int:
        self.machine.compute(_HASH_NS)
        # Deterministic mix; quality matters less than determinism.
        h = (key * 0x9E3779B97F4A7C15) & ((1 << 64) - 1)
        return (h >> 17) % self.num_buckets

    def _bucket_addr(self, bucket: int) -> int:
        return self.bucket_base + bucket * _PTR_BYTES

    def _walk_chain(self, bucket: int, key: int) -> Optional[int]:
        """Load-walk the chain; returns the node address on match."""
        machine = self.machine
        machine.load(self._bucket_addr(bucket), _PTR_BYTES)
        for chain_key, node_addr in self._chains.get(bucket, []):
            machine.load(node_addr, _KEY_BYTES)  # key compare
            machine.compute(12.0)
            if chain_key == key:
                return node_addr
            machine.load(node_addr + _KEY_BYTES + self.data_size, _PTR_BYTES)
        return None

    def put(self, key: int) -> None:
        """Insert or update; payload content is synthetic (size matters)."""
        self.machine.compute(_OP_OVERHEAD_NS)
        bucket = self._bucket(key)
        node_addr = self._walk_chain(bucket, key)
        if node_addr is not None:
            self.machine.persist(node_addr + _KEY_BYTES, self.data_size)
            return
        addr = self.allocator.alloc(self.entry_size)
        # Write key + payload + next, persist, then publish at the head.
        self.machine.persist(addr, self.entry_size)
        self.machine.persist(self._bucket_addr(bucket), _PTR_BYTES)
        self._chains.setdefault(bucket, []).insert(0, (key, addr))
        self.size += 1

    def get(self, key: int) -> bool:
        """Lookup; reads the payload on a hit."""
        self.machine.compute(_OP_OVERHEAD_NS)
        bucket = self._bucket(key)
        node_addr = self._walk_chain(bucket, key)
        if node_addr is None:
            return False
        self.machine.load(node_addr + _KEY_BYTES, self.data_size)
        return True

    def remove(self, key: int) -> bool:
        """Unlink and free an entry."""
        self.machine.compute(_OP_OVERHEAD_NS)
        bucket = self._bucket(key)
        chain = self._chains.get(bucket, [])
        node_addr = self._walk_chain(bucket, key)
        if node_addr is None:
            return False
        index = next(i for i, (k, _) in enumerate(chain) if k == key)
        # Persist the predecessor's next pointer (or the bucket head).
        if index == 0:
            self.machine.persist(self._bucket_addr(bucket), _PTR_BYTES)
        else:
            prev_addr = chain[index - 1][1]
            self.machine.persist(prev_addr + _KEY_BYTES + self.data_size, _PTR_BYTES)
        chain.pop(index)
        self.allocator.free(node_addr, self.entry_size)
        self.size -= 1
        return True
