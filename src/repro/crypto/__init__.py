"""Cryptographic primitives for the FsEncr reproduction.

Everything here is implemented from scratch (no third-party crypto): an
AES-128 block cipher, the counter-mode IV layout from the paper's
Figure 2, pad generation / XOR composition, and the eCryptfs-style key
hierarchy (FEK wrapped under a passphrase-derived FEKEK).
"""

from .aes import AES128, aes128_decrypt_block, aes128_encrypt_block
from .iv import FILE_DOMAIN, MEMORY_DOMAIN, OTT_DOMAIN, CounterIV, IVLayout
from .keys import (
    KEY_SIZE,
    KeyHierarchy,
    KeyWrapError,
    WrappedKey,
    derive_fekek,
    generate_fek,
    unwrap_key,
    wrap_key,
)
from .otp import OTPEngine, apply_pad, compose_pads, generate_otp, xor_bytes

__all__ = [
    "AES128",
    "aes128_encrypt_block",
    "aes128_decrypt_block",
    "CounterIV",
    "IVLayout",
    "MEMORY_DOMAIN",
    "FILE_DOMAIN",
    "OTT_DOMAIN",
    "OTPEngine",
    "generate_otp",
    "compose_pads",
    "apply_pad",
    "xor_bytes",
    "KEY_SIZE",
    "KeyHierarchy",
    "KeyWrapError",
    "WrappedKey",
    "derive_fekek",
    "generate_fek",
    "wrap_key",
    "unwrap_key",
]
