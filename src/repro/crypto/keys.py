"""Key hierarchy: file keys, wrapping keys, and passphrase derivation.

FsEncr keeps the software half of key management identical to eCryptfs /
fscrypt (§III-E): every encrypted file gets a randomly generated 128-bit
File Encryption Key (FEK); the FEK is wrapped (encrypted) under a File
Encryption Key Encryption Key (FEKEK) derived from the owner's passphrase;
the wrapped FEK lives with the file metadata while the plaintext FEK is
pushed to the memory controller's Open Tunnel Table over MMIO.

What changes versus eCryptfs is *where the FEK is used*: never in
software on the access path — only inside the controller's file
encryption engine.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from .aes import AES128
from .otp import xor_bytes

__all__ = [
    "KEY_SIZE",
    "derive_fekek",
    "generate_fek",
    "wrap_key",
    "unwrap_key",
    "KeyWrapError",
    "WrappedKey",
    "KeyHierarchy",
]

KEY_SIZE = 16  # AES-128
_PBKDF2_ITERATIONS = 1000  # modest: this is a model, not a password vault
_WRAP_TWEAK = bytes.fromhex("a5" * KEY_SIZE)


class KeyWrapError(Exception):
    """Raised when unwrapping fails its integrity check (wrong passphrase)."""


def derive_fekek(passphrase: str, salt: bytes) -> bytes:
    """Derive the wrapping key from a user passphrase (PBKDF2-HMAC-SHA256).

    eCryptfs derives its FEKEK the same way; the salt is stored in the
    filesystem superblock so the derivation is repeatable across boots.
    """
    if not passphrase:
        raise ValueError("passphrase must be non-empty")
    return hashlib.pbkdf2_hmac(
        "sha256", passphrase.encode("utf-8"), salt, _PBKDF2_ITERATIONS, dklen=KEY_SIZE
    )


def generate_fek(entropy: bytes) -> bytes:
    """Deterministically expand caller-supplied entropy into a fresh FEK.

    The simulator supplies entropy from its seeded RNG so whole runs are
    reproducible; a real kernel would read ``get_random_bytes``.
    """
    return hashlib.sha256(b"fsencr-fek" + entropy).digest()[:KEY_SIZE]


@dataclass(frozen=True)
class WrappedKey:
    """A FEK encrypted under a FEKEK, plus an integrity tag.

    The tag lets the open() path detect a wrong passphrase instead of
    silently handing the controller a garbage key (which would decrypt the
    file to noise — the classic eCryptfs failure mode the paper describes).
    """

    ciphertext: bytes
    tag: bytes


def wrap_key(fek: bytes, fekek: bytes) -> WrappedKey:
    """Encrypt ``fek`` under ``fekek`` with an authenticated tag."""
    if len(fek) != KEY_SIZE:
        raise ValueError(f"FEK must be {KEY_SIZE} bytes, got {len(fek)}")
    cipher = AES128(fekek)
    ciphertext = cipher.encrypt_block(fek)
    tag = hmac.new(fekek, b"fsencr-wrap" + ciphertext, hashlib.sha256).digest()[:16]
    return WrappedKey(ciphertext=ciphertext, tag=tag)


def unwrap_key(wrapped: WrappedKey, fekek: bytes) -> bytes:
    """Recover the FEK; raises :class:`KeyWrapError` on a bad passphrase."""
    expected = hmac.new(
        fekek, b"fsencr-wrap" + wrapped.ciphertext, hashlib.sha256
    ).digest()[:16]
    if not hmac.compare_digest(expected, wrapped.tag):
        raise KeyWrapError("key unwrap failed integrity check (wrong passphrase?)")
    return AES128(fekek).decrypt_block(wrapped.ciphertext)


class KeyHierarchy:
    """The full per-system key tree used by an FsEncr machine.

    * ``memory_key`` — the processor's memory encryption key (never leaves
      the chip; encrypts every line via MECB counters).
    * ``ott_key`` — encrypts OTT entries spilled to the dedicated memory
      region (never leaves the chip either).
    * per-file FEKs — generated on file creation, wrapped under the
      owner's FEKEK for at-rest storage, plaintext copy pushed to the OTT.

    The hierarchy object itself lives on the "processor" side of the
    simulation; the filesystem only ever sees wrapped keys.
    """

    def __init__(self, memory_key: bytes, ott_key: bytes) -> None:
        # Validate via lengths only: the key bytes themselves must stay
        # out of the raise path (key-material-taint).
        sizes = {"memory_key": len(memory_key), "ott_key": len(ott_key)}
        for name, size in sizes.items():
            if size != KEY_SIZE:
                raise ValueError(f"{name} must be {KEY_SIZE} bytes")
        self._memory_key = bytes(memory_key)
        self._ott_key = bytes(ott_key)

    @classmethod
    def from_seed(cls, seed: bytes) -> "KeyHierarchy":
        """Derive both chip keys deterministically from a seed (for tests)."""
        memory_key = hashlib.sha256(b"fsencr-memkey" + seed).digest()[:KEY_SIZE]
        ott_key = hashlib.sha256(b"fsencr-ottkey" + seed).digest()[:KEY_SIZE]
        return cls(memory_key, ott_key)

    @property
    def memory_key(self) -> bytes:
        return self._memory_key

    @property
    def ott_key(self) -> bytes:
        return self._ott_key

    def derive_file_key(self, file_id: int, group_id: int, entropy: bytes) -> bytes:
        """Generate a fresh FEK bound to nothing but fresh entropy.

        File ID and group ID are mixed in only to diversify the
        deterministic test path; uniqueness comes from the entropy.
        """
        material = entropy + file_id.to_bytes(8, "big") + group_id.to_bytes(8, "big")
        return generate_fek(material)

    def rotated_file_key(self, old_key: bytes) -> bytes:
        """Derive a replacement FEK for the counter-overflow re-key path."""
        return hashlib.sha256(b"fsencr-rekey" + old_key).digest()[:KEY_SIZE]
