"""One-time-pad generation and the XOR algebra FsEncr relies on.

Counter-mode encryption never feeds data through AES.  Instead AES
encrypts an IV to produce a pad, and ciphertext = plaintext XOR pad.  The
decryption latency therefore hides behind the memory access: the pad is
computed while the line is in flight, and only the XOR remains on the
critical path.

FsEncr's central trick is pad *composition*: for a DAX-file line the final
pad is ``OTP_mem XOR OTP_file``, where the two pads come from two engines
keyed independently (memory key vs per-file key) and counted independently
(MECB vs FECB).  XOR composition keeps both layers on the parallel path —
neither engine ever sees the other's key — and yields defence-in-depth:
recovering the plaintext requires breaking *both* pads.
"""

from __future__ import annotations

from typing import Iterable

from .aes import AES128
from .iv import CounterIV

__all__ = ["generate_otp", "xor_bytes", "compose_pads", "apply_pad", "OTPEngine"]


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b))


def generate_otp(cipher: AES128, iv: CounterIV, length: int = 64) -> bytes:
    """Generate a pad of ``length`` bytes by encrypting IV-derived blocks.

    A 64-byte cache line needs four AES blocks; each is the packed IV with
    a distinct block index folded into the last byte (the IV layout leaves
    at least 3 spare low bits, so the fold never collides with IV fields).
    """
    if length % 16 != 0:
        raise ValueError(f"pad length must be a multiple of 16, got {length}")
    base = iv.pack()
    blocks = []
    for i in range(length // 16):
        block_input = base[:-1] + bytes([base[-1] ^ i])
        blocks.append(cipher.encrypt_block(block_input))
    return b"".join(blocks)


def compose_pads(pads: Iterable[bytes]) -> bytes:
    """XOR-fold any number of pads into the final OTP."""
    result: bytes | None = None
    for pad in pads:
        result = pad if result is None else xor_bytes(result, pad)
    if result is None:
        raise ValueError("compose_pads needs at least one pad")
    return result


def apply_pad(data: bytes, pad: bytes) -> bytes:
    """Encrypt or decrypt (they are the same operation) with a pad."""
    return xor_bytes(data, pad)


class OTPEngine:
    """A keyed counter-mode pad generator (one AES engine in Figure 2/7).

    The engine caches its AES key schedule; callers supply the IV per
    request.  ``pad_for`` is the functional path; the timing path models
    the same engine with the configured AES latency and never calls here.
    """

    def __init__(self, key: bytes, line_size: int = 64) -> None:
        self._cipher = AES128(key)
        self._line_size = line_size

    @property
    def line_size(self) -> int:
        return self._line_size

    def pad_for(self, iv: CounterIV) -> bytes:
        return generate_otp(self._cipher, iv, self._line_size)

    def encrypt(self, plaintext: bytes, iv: CounterIV) -> bytes:
        return apply_pad(plaintext, self.pad_for(iv))

    def decrypt(self, ciphertext: bytes, iv: CounterIV) -> bytes:
        return apply_pad(ciphertext, self.pad_for(iv))

    def rekey(self, key: bytes) -> None:
        """Install a new key (used by the re-key-on-overflow path)."""
        self._cipher = AES128(key)
