"""Initialization-vector layout for counter-mode memory/file encryption.

The paper's Figure 2 defines the IV used by the state-of-the-art
counter-mode encryption that FsEncr builds on.  The IV carries

- a *page ID* (the physical page number) for spatial uniqueness,
- the *page offset* of the cache line inside the page,
- a *per-page major counter* bumped when any minor counter overflows, and
- a *per-line minor counter* bumped on every write to that line,

so that every (location, version) pair maps to a unique pad and OTPs are
never reused under a fixed key.  FsEncr reuses the same layout for the
file-encryption pads, only sourcing the counters from FECBs instead of
MECBs (and tagging the IV with a domain byte so the memory pad and the
file pad for the same line can never collide even if keys were ever
shared).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["IVLayout", "CounterIV", "MEMORY_DOMAIN", "FILE_DOMAIN", "OTT_DOMAIN"]

# Domain separators mixed into the IV so the three AES engines (memory,
# file, OTT-region) can never produce colliding pads even under equal keys.
MEMORY_DOMAIN = 0x01
FILE_DOMAIN = 0x02
OTT_DOMAIN = 0x03


@dataclass(frozen=True)
class IVLayout:
    """Bit widths of each IV field.  Defaults follow the paper.

    The packed IV must fit in one AES block (128 bits).  With the default
    widths the total is 8 + 40 + 6 + 64 + 7 = 125 bits, leaving slack.
    """

    domain_bits: int = 8
    page_id_bits: int = 40
    page_offset_bits: int = 6  # 64 cache lines per 4 KB page
    major_bits: int = 64
    minor_bits: int = 7

    def __post_init__(self) -> None:
        total = (
            self.domain_bits
            + self.page_id_bits
            + self.page_offset_bits
            + self.major_bits
            + self.minor_bits
        )
        if total > 128:
            raise ValueError(f"IV layout needs {total} bits; only 128 available")

    @property
    def total_bits(self) -> int:
        return (
            self.domain_bits
            + self.page_id_bits
            + self.page_offset_bits
            + self.major_bits
            + self.minor_bits
        )


DEFAULT_LAYOUT = IVLayout()


@dataclass(frozen=True)
class CounterIV:
    """A concrete IV instance: one (location, version) point.

    ``pack()`` serialises the IV into a 16-byte AES input block.  Packing
    is injective for in-range field values, which is what guarantees OTP
    uniqueness; out-of-range values are rejected rather than truncated,
    because silent truncation is exactly the counter-reuse bug
    counter-mode must avoid.
    """

    domain: int
    page_id: int
    page_offset: int
    major: int
    minor: int
    layout: IVLayout = DEFAULT_LAYOUT

    def __post_init__(self) -> None:
        checks = (
            ("domain", self.domain, self.layout.domain_bits),
            ("page_id", self.page_id, self.layout.page_id_bits),
            ("page_offset", self.page_offset, self.layout.page_offset_bits),
            ("major", self.major, self.layout.major_bits),
            ("minor", self.minor, self.layout.minor_bits),
        )
        for name, value, bits in checks:
            if value < 0 or value >= (1 << bits):
                raise ValueError(
                    f"IV field {name}={value} out of range for {bits} bits"
                )

    def pack(self) -> bytes:
        """Pack the IV fields into a 16-byte block, MSB-first."""
        layout = self.layout
        packed = self.domain
        packed = (packed << layout.page_id_bits) | self.page_id
        packed = (packed << layout.page_offset_bits) | self.page_offset
        packed = (packed << layout.major_bits) | self.major
        packed = (packed << layout.minor_bits) | self.minor
        # Left-align within the 128-bit block.
        packed <<= 128 - layout.total_bits
        return packed.to_bytes(16, "big")

    def bumped(self, *, major: int | None = None, minor: int | None = None) -> "CounterIV":
        """Return a copy with updated counter values (location unchanged)."""
        return CounterIV(
            domain=self.domain,
            page_id=self.page_id,
            page_offset=self.page_offset,
            major=self.major if major is None else major,
            minor=self.minor if minor is None else minor,
            layout=self.layout,
        )
