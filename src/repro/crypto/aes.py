"""AES-128 block cipher implemented from scratch.

FsEncr's encryption engines (the memory encryption engine and the file
encryption engine) are both AES engines operating in counter mode.  This
module provides a functional, dependency-free AES-128 implementation used
whenever the simulator runs in *functional* mode — i.e. when cache lines
are really encrypted so that tests can verify end-to-end confidentiality
properties (wrong key => garbage plaintext, counter reuse detection, etc.).

The implementation follows FIPS-197 directly: SubBytes / ShiftRows /
MixColumns / AddRoundKey over a 4x4 column-major state, with a key
schedule expanded once per key.  It is deliberately straightforward rather
than table-optimised; the timing model never calls into it (timing uses
the paper's 40 ns AES latency constant), so raw speed only matters for the
functional test suite.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["AES128", "aes128_encrypt_block", "aes128_decrypt_block"]

_SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B,
    0xFE, 0xD7, 0xAB, 0x76, 0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0,
    0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0, 0xB7, 0xFD, 0x93, 0x26,
    0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2,
    0xEB, 0x27, 0xB2, 0x75, 0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0,
    0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84, 0x53, 0xD1, 0x00, 0xED,
    0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F,
    0x50, 0x3C, 0x9F, 0xA8, 0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5,
    0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2, 0xCD, 0x0C, 0x13, 0xEC,
    0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14,
    0xDE, 0x5E, 0x0B, 0xDB, 0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C,
    0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79, 0xE7, 0xC8, 0x37, 0x6D,
    0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F,
    0x4B, 0xBD, 0x8B, 0x8A, 0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E,
    0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E, 0xE1, 0xF8, 0x98, 0x11,
    0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F,
    0xB0, 0x54, 0xBB, 0x16,
]

_INV_SBOX = [0] * 256
for _i, _v in enumerate(_SBOX):
    _INV_SBOX[_v] = _i

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(a: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8) with the AES polynomial."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gmul(a: int, b: int) -> int:
    """General GF(2^8) multiply used by InvMixColumns."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _expand_key(key: bytes) -> List[List[int]]:
    """Expand a 16-byte key into 11 round keys of 16 bytes each."""
    if len(key) != 16:
        raise ValueError(f"AES-128 key must be 16 bytes, got {len(key)}")
    words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [_SBOX[b] for b in temp]
            temp[0] ^= _RCON[i // 4 - 1]
        words.append([t ^ w for t, w in zip(temp, words[i - 4])])
    return [sum(words[4 * r : 4 * r + 4], []) for r in range(11)]


def _add_round_key(state: List[int], round_key: Sequence[int]) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


def _sub_bytes(state: List[int]) -> None:
    for i in range(16):
        state[i] = _SBOX[state[i]]


def _inv_sub_bytes(state: List[int]) -> None:
    for i in range(16):
        state[i] = _INV_SBOX[state[i]]


# The state is kept in flat row-major byte order of the input block; AES's
# column-major indexing is folded into these row shuffles.
_SHIFT_ROWS = [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11]
_INV_SHIFT_ROWS = [0] * 16
for _i, _v in enumerate(_SHIFT_ROWS):
    _INV_SHIFT_ROWS[_v] = _i


def _shift_rows(state: List[int]) -> List[int]:
    return [state[i] for i in _SHIFT_ROWS]


def _inv_shift_rows(state: List[int]) -> List[int]:
    return [state[i] for i in _INV_SHIFT_ROWS]


def _mix_columns(state: List[int]) -> None:
    for c in range(4):
        i = 4 * c
        a0, a1, a2, a3 = state[i : i + 4]
        state[i + 0] = _xtime(a0) ^ _xtime(a1) ^ a1 ^ a2 ^ a3
        state[i + 1] = a0 ^ _xtime(a1) ^ _xtime(a2) ^ a2 ^ a3
        state[i + 2] = a0 ^ a1 ^ _xtime(a2) ^ _xtime(a3) ^ a3
        state[i + 3] = _xtime(a0) ^ a0 ^ a1 ^ a2 ^ _xtime(a3)


def _inv_mix_columns(state: List[int]) -> None:
    for c in range(4):
        i = 4 * c
        a0, a1, a2, a3 = state[i : i + 4]
        state[i + 0] = _gmul(a0, 14) ^ _gmul(a1, 11) ^ _gmul(a2, 13) ^ _gmul(a3, 9)
        state[i + 1] = _gmul(a0, 9) ^ _gmul(a1, 14) ^ _gmul(a2, 11) ^ _gmul(a3, 13)
        state[i + 2] = _gmul(a0, 13) ^ _gmul(a1, 9) ^ _gmul(a2, 14) ^ _gmul(a3, 11)
        state[i + 3] = _gmul(a0, 11) ^ _gmul(a1, 13) ^ _gmul(a2, 9) ^ _gmul(a3, 14)


class AES128:
    """A keyed AES-128 cipher with a cached key schedule.

    >>> cipher = AES128(bytes(16))
    >>> cipher.decrypt_block(cipher.encrypt_block(b"0123456789abcdef"))
    b'0123456789abcdef'
    """

    BLOCK_SIZE = 16

    def __init__(self, key: bytes) -> None:
        self._key = bytes(key)
        self._round_keys = _expand_key(self._key)

    @property
    def key(self) -> bytes:
        return self._key

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError(f"AES block must be 16 bytes, got {len(block)}")
        state = list(block)
        rk = self._round_keys
        _add_round_key(state, rk[0])
        for rnd in range(1, 10):
            _sub_bytes(state)
            state = _shift_rows(state)
            _mix_columns(state)
            _add_round_key(state, rk[rnd])
        _sub_bytes(state)
        state = _shift_rows(state)
        _add_round_key(state, rk[10])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError(f"AES block must be 16 bytes, got {len(block)}")
        state = list(block)
        rk = self._round_keys
        _add_round_key(state, rk[10])
        state = _inv_shift_rows(state)
        _inv_sub_bytes(state)
        for rnd in range(9, 0, -1):
            _add_round_key(state, rk[rnd])
            _inv_mix_columns(state)
            state = _inv_shift_rows(state)
            _inv_sub_bytes(state)
        _add_round_key(state, rk[0])
        return bytes(state)


def aes128_encrypt_block(key: bytes, block: bytes) -> bytes:
    """One-shot block encryption (expands the key schedule every call)."""
    return AES128(key).encrypt_block(block)


def aes128_decrypt_block(key: bytes, block: bytes) -> bytes:
    """One-shot block decryption (expands the key schedule every call)."""
    return AES128(key).decrypt_block(block)
