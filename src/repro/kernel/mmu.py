"""The MMU: TLB + page-table walk + fault dispatch.

Translation is the seam where the DF-bit design pays off: the bit lives
in the PTE, so once a DAX page is mapped, *every* subsequent access
carries the tag to the memory controller with zero added instructions,
zero kernel entries, and zero extra translation state.

The MMU is deliberately thin.  It does not know what a file is; it calls
a registered fault handler (the simulated kernel's VM subsystem) when a
translation is missing and retries once.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..mem.address import PAGE_MASK, PAGE_SHIFT
from ..mem.stats import StatCounters
from .page_table import PageFault, PageTable, PageTableEntry
from .tlb import TLB

__all__ = ["TranslationResult", "MMU"]


class TranslationResult:
    """Physical address (DF-tagged when applicable) plus latency."""

    __slots__ = ("paddr", "latency_ns", "faulted")

    def __init__(self, paddr: int, latency_ns: float, faulted: bool) -> None:
        self.paddr = paddr
        self.latency_ns = latency_ns
        self.faulted = faulted


class MMU:
    """Per-process translation front end.

    ``fault_handler(vpn, is_write) -> (latency_ns)`` must install a
    mapping into the page table (or raise); it is provided by the kernel
    object that owns file/anonymous memory policy.
    """

    def __init__(
        self,
        page_table: Optional[PageTable] = None,
        tlb: Optional[TLB] = None,
        stats: Optional[StatCounters] = None,
    ) -> None:
        self.page_table = page_table or PageTable()
        # Standalone fallback; Machine injects a TLB with a registered bundle.
        # repro-lint: disable=stats-registered
        self.tlb = tlb or TLB()
        self.stats = stats or StatCounters("mmu")
        self._fault_handler: Optional[Callable[[int, bool], float]] = None

    def set_fault_handler(self, handler: Callable[[int, bool], float]) -> None:
        self._fault_handler = handler

    def translate(self, vaddr: int, is_write: bool) -> TranslationResult:
        """Translate one virtual address, faulting if needed."""
        if vaddr < 0:
            raise ValueError(f"negative virtual address {vaddr:#x}")
        vpn = vaddr >> PAGE_SHIFT
        offset = vaddr & PAGE_MASK
        latency = 0.0
        faulted = False

        pte = self.tlb.lookup(vpn)
        if pte is None:
            latency += self.tlb.walk_latency_ns
            pte = self.page_table.lookup(vpn)
            if pte is None:
                faulted = True
                self.stats.add("faults")
                latency += self._handle_fault(vpn, is_write)
                pte = self.page_table.lookup(vpn)
                if pte is None:
                    raise PageFault(vpn, is_write)
            self.tlb.fill(vpn, pte)

        if is_write and not pte.writable:
            self.stats.add("protection_faults")
            raise PageFault(vpn, is_write)

        pte.accessed = True
        if is_write:
            pte.dirty = True
        self.stats.add("translations")
        return TranslationResult(
            paddr=pte.physical_address(offset), latency_ns=latency, faulted=faulted
        )

    def _handle_fault(self, vpn: int, is_write: bool) -> float:
        if self._fault_handler is None:
            raise PageFault(vpn, is_write)
        return self._fault_handler(vpn, is_write)

    def invalidate(self, vpn: int) -> None:
        """Shootdown after munmap / PTE change."""
        self.tlb.invalidate(vpn)
