"""Kernel keyring: user sessions, FEKEKs, and wrapped-FEK handling.

Mirrors the Linux keyring usage of eCryptfs/fscrypt (§III-E): each user
"logs in" with a passphrase, the kernel derives their FEKEK and parks it
in the session keyring; opening an encrypted file unwraps the FEK with
the caller's FEKEK.  A wrong passphrase produces a FEKEK whose unwrap
fails the integrity tag — the file never opens, which is the paper's
defence against the accidental ``chmod 777`` scenario (§VI).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..crypto.keys import (
    KeyWrapError,
    WrappedKey,
    derive_fekek,
    unwrap_key,
    wrap_key,
)

__all__ = ["KeyringError", "SessionKeyring", "Keyring"]


class KeyringError(Exception):
    """Keyring misuse: no session, wrong passphrase, unknown user."""


@dataclass
class SessionKeyring:
    """One user's logged-in session: their derived FEKEK."""

    uid: int
    # repr=False: the derived FEKEK is key material; session objects show
    # up in debug output and must not render it (key-hygiene lint rule).
    fekek: bytes = field(repr=False)

    def wrap(self, fek: bytes) -> WrappedKey:
        return wrap_key(fek, self.fekek)

    def unwrap(self, wrapped: WrappedKey) -> bytes:
        try:
            return unwrap_key(wrapped, self.fekek)
        except KeyWrapError as exc:
            raise KeyringError(f"uid {self.uid}: {exc}") from exc


@dataclass
class Keyring:
    """System-wide keyring: per-uid sessions plus the admin credential.

    The admin credential digest is what boot sends to the controller via
    MMIO ``ADMIN_LOGIN``; its SHA-256 stands in for whatever attestation
    a real design would use.
    """

    salt: bytes = b"fsencr-system-salt"
    _sessions: Dict[int, SessionKeyring] = field(default_factory=dict)
    _admin_digest: Optional[bytes] = None

    def login(self, uid: int, passphrase: str) -> SessionKeyring:
        """Derive and install the user's FEKEK for this session."""
        session = SessionKeyring(uid=uid, fekek=derive_fekek(passphrase, self.salt))
        self._sessions[uid] = session
        return session

    def logout(self, uid: int) -> None:
        self._sessions.pop(uid, None)

    def session(self, uid: int) -> SessionKeyring:
        session = self._sessions.get(uid)
        if session is None:
            raise KeyringError(f"uid {uid} has no logged-in session")
        return session

    def has_session(self, uid: int) -> bool:
        return uid in self._sessions

    # -- admin credential -----------------------------------------------------

    def set_admin_passphrase(self, passphrase: str) -> None:
        self._admin_digest = self.credential_digest(passphrase)

    def credential_digest(self, passphrase: str) -> bytes:
        return hashlib.sha256(b"fsencr-admin" + passphrase.encode("utf-8")).digest()

    @property
    def admin_digest(self) -> bytes:
        if self._admin_digest is None:
            raise KeyringError("no admin passphrase configured")
        return self._admin_digest
