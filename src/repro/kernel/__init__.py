"""Simulated kernel: translation, faults, MMIO channel, keyring, page cache.

The software half of the paper's co-design lives here — everything the
modified Linux 4.14 does in the real system: set the DF-bit during DAX
faults, push file keys/IDs over MMIO, manage user keyrings, and (for the
non-DAX comparison paths) run the page cache.
"""

from .costs import SoftwareCosts
from .keyring import Keyring, KeyringError, SessionKeyring
from .mmio import MMIO_WRITE_LATENCY_NS, MMIORegisters, MMIOTarget
from .mmu import MMU, TranslationResult
from .page_cache import CachedPage, PageCache, PageCacheConfig
from .page_table import PageFault, PageTable, PageTableEntry
from .tlb import TLB

__all__ = [
    "SoftwareCosts",
    "Keyring",
    "KeyringError",
    "SessionKeyring",
    "MMIORegisters",
    "MMIOTarget",
    "MMIO_WRITE_LATENCY_NS",
    "MMU",
    "TranslationResult",
    "PageCache",
    "PageCacheConfig",
    "CachedPage",
    "PageFault",
    "PageTable",
    "PageTableEntry",
    "TLB",
]
