"""Software-path cost model: syscalls, faults, copies, software crypto.

The conventional access path of Figure 1(a) and the eCryptfs overlay of
Figure 3 are dominated by *software* costs that the trace-driven memory
model does not produce on its own, so they are modelled with measured-
magnitude constants here.  The constants matter only in ratio: the
paper's observation is that a few microseconds of kernel work per 4 KB
page dwarfs a sub-100 ns NVM line access, and any constants in these
ranges reproduce that conclusion.

Values are loosely calibrated to Linux-on-x86 measurements circa the
paper's setup (syscall ~1 us round trip, minor fault ~2 us, AES-NI
~1 GB/s effective in-kernel for eCryptfs's page path including its
stacked-VFS bookkeeping).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mem.address import PAGE_SIZE

__all__ = ["SoftwareCosts"]


@dataclass(frozen=True)
class SoftwareCosts:
    """Per-event software latencies, in nanoseconds."""

    syscall_ns: float = 1000.0  # user->kernel->user round trip
    minor_fault_ns: float = 2000.0  # fault entry, VMA walk, PTE install
    dax_fault_extra_ns: float = 300.0  # dax_insert_mapping bookkeeping
    fs_layer_ns: float = 1500.0  # filesystem + stacked-VFS traversal
    driver_ns: float = 800.0  # block/driver layer per request
    copy_ns_per_byte: float = 0.05  # 20 GB/s memcpy
    sw_crypto_ns_per_byte: float = 1.0  # ~1 GB/s in-kernel AES page path
    key_setup_ns: float = 500.0  # per-page key schedule / context setup

    @property
    def page_copy_ns(self) -> float:
        """Copy one 4 KB page between device buffer and page cache."""
        return PAGE_SIZE * self.copy_ns_per_byte

    @property
    def page_crypto_ns(self) -> float:
        """Software-encrypt or decrypt one 4 KB page (eCryptfs unit)."""
        return PAGE_SIZE * self.sw_crypto_ns_per_byte + self.key_setup_ns

    def conventional_fault_ns(self) -> float:
        """Full Figure 1(a) miss: fault + FS + driver + copy-in."""
        return self.minor_fault_ns + self.fs_layer_ns + self.driver_ns + self.page_copy_ns

    def encrypted_fault_ns(self) -> float:
        """Same, plus the software decryption of the page."""
        return self.conventional_fault_ns() + self.page_crypto_ns

    def dax_fault_ns(self) -> float:
        """Figure 1(b) first touch: fault + mapping insert, no copy."""
        return self.minor_fault_ns + self.dax_fault_extra_ns
