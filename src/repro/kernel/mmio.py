"""Memory-mapped I/O registers: the kernel -> memory-controller channel.

§III-F-1 enumerates the only messages the OS ever sends the hardware:

* ``INSTALL_KEY``   — file creation/open: (group_id, file_id, 128-bit key)
                      goes into the Open Tunnel Table.
* ``REVOKE_KEY``    — file deletion: drop the OTT entry and its spill copy.
* ``UPDATE_FECB``   — DAX page fault: stamp (group_id, file_id) into the
                      page's File Encryption Counter Block.
* ``ADMIN_LOGIN``   — boot-time admin credential check; a wrong credential
                      locks the file-decryption engine (§VI "Protecting
                      Files from Internal Attacks").

Nothing is sent on read()/write()/load/store — that is the whole point
of the design.  The register file charges a fixed uncached-MMIO-write
latency per doorbell, and the simulated controller implements
:class:`MMIOTarget` to receive the payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

from ..mem.stats import StatCounters

__all__ = ["MMIOTarget", "MMIORegisters", "MMIO_WRITE_LATENCY_NS"]

MMIO_WRITE_LATENCY_NS = 150.0  # uncached store + fence to a device register


class MMIOTarget(Protocol):
    """What the memory controller exposes to the kernel."""

    def install_file_key(self, group_id: int, file_id: int, key: bytes) -> None:
        """OTT insert (file created or opened)."""

    def revoke_file_key(self, group_id: int, file_id: int) -> None:
        """OTT + spill-region removal (file deleted)."""

    def update_fecb(self, page: int, group_id: int, file_id: int) -> None:
        """Stamp the page's FECB with its owning file (DAX fault)."""

    def admin_login(self, credential_digest: bytes) -> bool:
        """Boot-time credential check; False locks file decryption."""


@dataclass
class MMIORegisters:
    """The kernel-visible register file, with doorbell semantics.

    Each high-level operation is a handful of register writes plus one
    doorbell; the model charges ``writes_per_op`` MMIO store latencies
    and forwards the decoded payload to the target.  Latency is returned
    to the caller so fault/creat paths can account it.
    """

    target: MMIOTarget
    stats: Optional[StatCounters] = None
    write_latency_ns: float = MMIO_WRITE_LATENCY_NS

    def __post_init__(self) -> None:
        if self.stats is None:
            self.stats = StatCounters("mmio")

    def _charge(self, op: str, register_writes: int) -> float:
        self.stats.add(op)
        self.stats.add("register_writes", register_writes)
        return register_writes * self.write_latency_ns

    def install_file_key(self, group_id: int, file_id: int, key: bytes) -> float:
        # 2 key halves + file id + group id + doorbell = 5 register writes.
        self.target.install_file_key(group_id, file_id, key)
        return self._charge("install_key", 5)

    def revoke_file_key(self, group_id: int, file_id: int) -> float:
        self.target.revoke_file_key(group_id, file_id)
        return self._charge("revoke_key", 3)

    def update_fecb(self, page: int, group_id: int, file_id: int) -> float:
        self.target.update_fecb(page, group_id, file_id)
        return self._charge("update_fecb", 4)

    def admin_login(self, credential_digest: bytes) -> "tuple[bool, float]":
        accepted = self.target.admin_login(credential_digest)
        return accepted, self._charge("admin_login", 3)
