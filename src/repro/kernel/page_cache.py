"""The software page cache used by the *conventional* (non-DAX) path.

Figure 1(a): without DAX, every first touch of a file page faults into
the kernel, walks the filesystem and driver layers, copies the 4 KB page
from the device into this cache (decrypting it there if the filesystem
is encrypted), and only then lets the application touch the copy.
Evictions of dirty pages re-encrypt and write back.

The page cache is what DAX deletes — and what software filesystem
encryption cannot live without, which is the paper's entire tension.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..mem.address import PAGE_SIZE
from ..mem.stats import StatCounters

__all__ = ["PageCacheConfig", "CachedPage", "PageCache"]


@dataclass(frozen=True)
class PageCacheConfig:
    """Capacity in pages; small by design in the eCryptfs study so that
    working sets larger than the cache show the re-fault behaviour the
    paper describes ("a small buffer for decrypted pages would still
    cause many page faults")."""

    capacity_pages: int = 1024  # 4 MB


@dataclass
class CachedPage:
    """One resident page: which file page it holds and its dirty state."""

    file_id: int
    page_index: int
    dirty: bool = False


class PageCache:
    """LRU page cache keyed by (file_id, page_index)."""

    def __init__(
        self,
        config: Optional[PageCacheConfig] = None,
        stats: Optional[StatCounters] = None,
    ) -> None:
        self.config = config or PageCacheConfig()
        self.stats = stats or StatCounters("page_cache")
        self._pages: "OrderedDict[Tuple[int, int], CachedPage]" = OrderedDict()

    def lookup(self, file_id: int, page_index: int) -> Optional[CachedPage]:
        key = (file_id, page_index)
        page = self._pages.get(key)
        if page is not None:
            self._pages.move_to_end(key)
            self.stats.add("hits")
        else:
            self.stats.add("misses")
        return page

    def insert(self, file_id: int, page_index: int, dirty: bool = False) -> Optional[CachedPage]:
        """Make a page resident; returns the evicted page, if any."""
        key = (file_id, page_index)
        evicted: Optional[CachedPage] = None
        if key in self._pages:
            self._pages.move_to_end(key)
            if dirty:
                self._pages[key].dirty = True
            return None
        if len(self._pages) >= self.config.capacity_pages:
            _, evicted = self._pages.popitem(last=False)
            self.stats.add("evictions")
            if evicted.dirty:
                self.stats.add("dirty_evictions")
        self._pages[key] = CachedPage(file_id=file_id, page_index=page_index, dirty=dirty)
        return evicted

    def mark_dirty(self, file_id: int, page_index: int) -> None:
        page = self._pages.get((file_id, page_index))
        if page is not None:
            page.dirty = True

    def invalidate_file(self, file_id: int) -> List[CachedPage]:
        """Drop every page of a file (close/delete); returns dirty ones."""
        dirty: List[CachedPage] = []
        for key in [k for k in self._pages if k[0] == file_id]:
            page = self._pages.pop(key)
            if page.dirty:
                dirty.append(page)
        return dirty

    def sync(self) -> List[CachedPage]:
        """Write back every dirty page (fsync); pages stay resident."""
        dirty = [p for p in self._pages.values() if p.dirty]
        for page in dirty:
            page.dirty = False
        self.stats.add("syncs")
        return dirty

    def drop_all(self) -> int:
        """Crash: DRAM-resident pages vanish, dirty or not.

        Returns how many pages were lost — callers deciding whether the
        crash cost un-synced data want the count.
        """
        lost = len(self._pages)
        self._pages.clear()
        return lost

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    @staticmethod
    def bytes_per_page() -> int:
        return PAGE_SIZE
