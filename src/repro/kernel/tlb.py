"""A small fully-associative TLB with LRU replacement.

The TLB caches whole PTEs, so the DF-bit rides along with the
translation at zero extra cost — one of the reasons the paper's
recognition mechanism adds no latency on the access path.  A miss
charges a fixed page-table-walk latency (four-level walk, mostly
cache-resident in practice).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..mem.stats import StatCounters
from .page_table import PageTableEntry

__all__ = ["TLB"]


class TLB:
    """vpn -> PTE cache.  ``entries`` default mirrors a typical L2 DTLB."""

    def __init__(
        self,
        entries: int = 512,
        walk_latency_ns: float = 30.0,
        stats: Optional[StatCounters] = None,
    ) -> None:
        if entries < 1:
            raise ValueError("TLB needs at least one entry")
        self.capacity = entries
        self.walk_latency_ns = walk_latency_ns
        self.stats = stats or StatCounters("tlb")
        self._entries: "OrderedDict[int, PageTableEntry]" = OrderedDict()

    def lookup(self, vpn: int) -> Optional[PageTableEntry]:
        pte = self._entries.get(vpn)
        if pte is not None:
            self._entries.move_to_end(vpn)
            self.stats.add("hits")
        else:
            self.stats.add("misses")
        return pte

    def fill(self, vpn: int, pte: PageTableEntry) -> None:
        if vpn in self._entries:
            self._entries.move_to_end(vpn)
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.add("evictions")
        self._entries[vpn] = pte

    def invalidate(self, vpn: int) -> bool:
        """Shootdown of one translation (munmap / permission change)."""
        if self._entries.pop(vpn, None) is not None:
            self.stats.add("shootdowns")
            return True
        return False

    def flush(self) -> None:
        """Full flush (context switch with no ASID support)."""
        self._entries.clear()
        self.stats.add("flushes")

    @property
    def occupancy(self) -> int:
        return len(self._entries)
