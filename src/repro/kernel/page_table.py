"""Page tables and PTEs, including the DF-bit the DAX fault path sets.

The paper's kernel change is tiny and lives exactly here: when
``dax_insert_mapping`` creates the PTE for a DAX-file page, it ORs
``1 << 51`` into the physical frame address (§III-C).  Everything else —
present/writable/dirty bookkeeping — is the ordinary x86-ish machinery
the rest of the simulated kernel expects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..mem import dfbit
from ..mem.address import PAGE_SHIFT, PAGE_SIZE

__all__ = ["PageTableEntry", "PageTable", "PageFault"]


class PageFault(Exception):
    """Raised by translation when no mapping exists (minor fault).

    The MMU catches this and invokes the registered fault handler — the
    simulated kernel — exactly like a hardware fault vectoring into the
    OS.
    """

    def __init__(self, vpn: int, is_write: bool) -> None:
        super().__init__(f"page fault at vpn {vpn:#x} ({'write' if is_write else 'read'})")
        self.vpn = vpn
        self.is_write = is_write


@dataclass(slots=True)
class PageTableEntry:
    """One PTE.  ``pfn`` is the physical frame number; ``df`` mirrors the
    paper's DAX-File bit and is folded into the physical address the MMU
    emits.  ``slots=True``: the MMU touches a PTE on every translation,
    and big mappings hold one of these per page."""

    pfn: int
    present: bool = True
    writable: bool = True
    df: bool = False
    dirty: bool = False
    accessed: bool = False

    def physical_address(self, offset: int) -> int:
        """Physical address for a byte offset, with the DF tag applied."""
        if offset < 0 or offset >= PAGE_SIZE:
            raise ValueError(f"offset {offset} outside page")
        addr = (self.pfn << PAGE_SHIFT) | offset
        return dfbit.set_df(addr) if self.df else addr


@dataclass
class PageTable:
    """A per-process map from virtual page number to PTE."""

    entries: Dict[int, PageTableEntry] = field(default_factory=dict)

    def lookup(self, vpn: int) -> Optional[PageTableEntry]:
        pte = self.entries.get(vpn)
        if pte is None or not pte.present:
            return None
        return pte

    def map(self, vpn: int, pfn: int, *, writable: bool = True, df: bool = False) -> PageTableEntry:
        """Install a mapping (the tail end of a fault handler)."""
        pte = PageTableEntry(pfn=pfn, writable=writable, df=df)
        self.entries[vpn] = pte
        return pte

    def unmap(self, vpn: int) -> Optional[PageTableEntry]:
        return self.entries.pop(vpn, None)

    def unmap_range(self, vpn_start: int, pages: int) -> int:
        """munmap: drop ``pages`` mappings; returns how many existed."""
        removed = 0
        for vpn in range(vpn_start, vpn_start + pages):
            if self.entries.pop(vpn, None) is not None:
                removed += 1
        return removed

    def mapped_count(self) -> int:
        return len(self.entries)
