"""repro.exec — parallel, cache-aware, supervised execution of grids.

Every figure/sweep in this reproduction is a grid of fully independent
simulation cells.  This package makes "run this grid" a first-class
operation: :class:`CellSpec` describes one cell by value,
:class:`ExperimentRunner` fans cells out over a process pool (``jobs=1``
is the exact serial path) and memoises results content-addressed on disk
(``.repro-cache/``, keyed by spec + source fingerprint), the
supervision layer (:class:`SupervisionPolicy`, :class:`GridReport`)
guarantees every submitted cell one recorded outcome — timeouts kill
hung workers, retries re-run transient failures with deterministic
seeded backoff, pool deaths rebuild and re-queue — and
:class:`RunnerStats` records the observability every consumer persists
alongside its results.  :class:`ChaosPolicy` injects hangs, deaths,
transient errors, and corrupt cache writes so the tests can prove all
of it.  See docs/RUNNER.md.
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache, payload_checksum
from .chaos import ChaosAction, ChaosPolicy, ChaosTransientError
from .fingerprint import reset_fingerprint_cache, source_fingerprint
from .runner import CellExecutionError, CellResult, ExperimentRunner, RunnerStats
from .spec import (
    CellSpec,
    canonical_json,
    cell_key,
    execute_cell,
    payload_to_runs,
    payload_to_sweep,
    resolve_workload,
)
from .supervise import (
    FAILURE_POLICIES,
    FINAL_OUTCOMES,
    CellAttempt,
    CellRecord,
    GridReport,
    SupervisionPolicy,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "payload_checksum",
    "source_fingerprint",
    "reset_fingerprint_cache",
    "CellExecutionError",
    "CellResult",
    "ExperimentRunner",
    "RunnerStats",
    "CellSpec",
    "canonical_json",
    "cell_key",
    "execute_cell",
    "payload_to_runs",
    "payload_to_sweep",
    "resolve_workload",
    "FAILURE_POLICIES",
    "FINAL_OUTCOMES",
    "CellAttempt",
    "CellRecord",
    "GridReport",
    "SupervisionPolicy",
    "ChaosAction",
    "ChaosPolicy",
    "ChaosTransientError",
]
