"""repro.exec — parallel, cache-aware execution of experiment grids.

Every figure/sweep in this reproduction is a grid of fully independent
simulation cells.  This package makes "run this grid" a first-class
operation: :class:`CellSpec` describes one cell by value,
:class:`ExperimentRunner` fans cells out over a process pool (``jobs=1``
is the exact serial path) and memoises results content-addressed on disk
(``.repro-cache/``, keyed by spec + source fingerprint), and
:class:`RunnerStats` records the observability every consumer persists
alongside its results.  See docs/RUNNER.md.
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache
from .fingerprint import reset_fingerprint_cache, source_fingerprint
from .runner import CellExecutionError, CellResult, ExperimentRunner, RunnerStats
from .spec import (
    CellSpec,
    canonical_json,
    cell_key,
    execute_cell,
    payload_to_runs,
    payload_to_sweep,
    resolve_workload,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "source_fingerprint",
    "reset_fingerprint_cache",
    "CellExecutionError",
    "CellResult",
    "ExperimentRunner",
    "RunnerStats",
    "CellSpec",
    "canonical_json",
    "cell_key",
    "execute_cell",
    "payload_to_runs",
    "payload_to_sweep",
    "resolve_workload",
]
