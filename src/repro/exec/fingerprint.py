"""Source-tree fingerprint: the cache key's "which simulator" half.

A cached cell result is only valid for the exact simulator that produced
it — any edit to the model (a latency constant, a counter, a recovery
path) must invalidate every cached cell.  Rather than tracking which
modules a cell touches (fragile), the fingerprint hashes the whole
``src/repro`` tree: sha256 over the sorted (relative path, content hash)
pairs of every ``*.py`` file.  ~160 small files hash in a few
milliseconds, and the result is memoised per process.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional

__all__ = ["file_fingerprint", "source_fingerprint", "reset_fingerprint_cache"]

#: Directory names never part of the simulator's behaviour.
_SKIP = {"__pycache__"}

_cached: Optional[str] = None


def _package_root() -> Path:
    """The ``repro`` package directory this module was imported from."""
    return Path(__file__).resolve().parent.parent


def source_fingerprint(root: Optional[Path] = None) -> str:
    """Hex digest of the simulator source tree.

    ``root`` defaults to the installed ``repro`` package; passing an
    explicit root bypasses the per-process memo (tests use this to
    simulate a source change).
    """
    global _cached
    if root is None:
        if _cached is not None:
            return _cached
        digest = _fingerprint(_package_root())
        _cached = digest
        return digest
    return _fingerprint(Path(root))


def file_fingerprint(path: Path) -> str:
    """Hex digest of one file's bytes.

    This is the per-file half of the tree fingerprint; the lint flow
    index (``repro.lint.flow``) keys its incremental cache on it so both
    caches agree on what "this file changed" means.
    """
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def _fingerprint(root: Path) -> str:
    outer = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        if any(part in _SKIP for part in path.parts):
            continue
        rel = path.relative_to(root).as_posix()
        outer.update(rel.encode())
        outer.update(b"\0")
        outer.update(bytes.fromhex(file_fingerprint(path)))
        outer.update(b"\0")
    return outer.hexdigest()


def reset_fingerprint_cache() -> None:
    """Drop the per-process memo (tests that edit sources need this)."""
    global _cached
    _cached = None
