"""Cell specifications: the picklable unit of experiment execution.

Every grid this reproduction runs — the figure drivers' (workload x
scheme) comparisons, Figure 15's (workload x cache-size) sweep, the
crash matrix's (scheme x fault-profile) cells — decomposes into fully
independent *cells*.  A :class:`CellSpec` is the complete, serialisable
description of one cell: which workload (by factory *name*, so the spec
crosses process boundaries), under which :class:`MachineConfig`, with
which seeds.  ``execute_cell`` turns a spec into a JSON-safe payload; it
is a pure function, which is what makes both process-pool fan-out and
content-addressed caching sound.

Two cell kinds cover every consumer:

* ``compare`` — run the workload once per scheme on otherwise-equal
  machines (the ``compare_schemes`` idiom every figure uses); payload
  carries one :class:`~repro.sim.results.RunResult` per scheme.
* ``sweep``   — one crash-sweep cell (``sweep_workload``): crash at
  sampled persist boundaries under a :class:`FaultPlan`, audit every
  line; payload carries the :class:`~repro.faults.sweep.SweepResult`.
* ``loadcurve`` — one concurrent-traffic load sweep
  (:func:`~repro.analysis.tails.load_curve`): ``workload`` holds a
  stream *mix* ("3xFillseq-S+2xHashmap"), swept open-loop at the
  ``loads`` fractions of the mix's calibrated throughput per scheme;
  payload carries throughput and strict p50/p99/p99.9 per load point
  with the shared queues' delay stats.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, is_dataclass
from enum import Enum
from typing import Callable, Dict, Optional, Tuple

from ..faults.plan import FaultPlan
from ..sim.config import MachineConfig
from ..sim.results import RunResult

__all__ = [
    "CellSpec",
    "canonical_json",
    "cell_key",
    "execute_cell",
    "resolve_workload",
    "payload_to_runs",
    "payload_to_curves",
    "payload_to_sweep",
]


#: Fields added to a dataclass *after* cache keys referencing it existed
#: in the wild.  While such a field still holds its original default it
#: is omitted from the canonical form, so every pre-existing spec keeps
#: its pre-existing cache key; specs that exercise the new knob get a
#: (correctly) new key.
_LATE_DEFAULTS = {
    "MachineConfig": {"anubis_recovery": False},
    # batch changes how a cell executes, never what it produces (the
    # interpreter is pinned bit-identical), so it stays out of the cell
    # key at its default exactly like a late-added config flag.
    # loads/mlp_window/arrival_seed exist only for loadcurve cells,
    # which post-date every cached key.
    "CellSpec": {
        "batch": False,
        "loads": (),
        "mlp_window": 1,
        "arrival_seed": 0xA221,
    },
}


def _plain(value):
    """Recursively reduce configs/plans to canonical JSON-safe values."""
    if is_dataclass(value) and not isinstance(value, type):
        late = _LATE_DEFAULTS.get(type(value).__name__, {})
        return {
            f.name: _plain(getattr(value, f.name))
            for f in fields(value)
            if f.name not in late or getattr(value, f.name) != late[f.name]
        }
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _plain(item) for key, item in sorted(value.items())}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(f"cannot canonicalise {type(value).__name__} for a cell key")


def canonical_json(value) -> str:
    """Deterministic JSON: sorted keys, no whitespace, enums by value."""
    return json.dumps(_plain(value), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class CellSpec:
    """One independent simulation cell, fully described by value.

    Everything here is part of the cell's identity: two specs with equal
    canonical JSON produce bit-identical payloads (the simulator is a
    pure function of its inputs), which is the contract the result cache
    and the ``--jobs N`` == ``--jobs 1`` equivalence both rest on.
    """

    kind: str                       # "compare" | "sweep" | "loadcurve"
    workload: str                   # factory name ("Fillseq-S", "Hashmap", "DAX-2",
                                    # ...) or, for loadcurve cells, a stream mix
                                    # ("3xFillseq-S+2xHashmap")
    config: MachineConfig
    ops: int = 0                    # PMEMKV / Whisper op count (0 = factory default)
    iterations: int = 0             # DAX micro iterations (0 = factory default)
    workload_seed: Optional[int] = None  # None = factory default seed
    # compare cells: scheme values in run order (baseline first by convention).
    schemes: Tuple[str, ...] = ()
    # sweep cells: the fault plan, boundary sampling bound, and sweep seed.
    plan: Optional[FaultPlan] = None
    max_points: int = 8
    sweep_seed: int = 0xC0FFEE
    name: str = ""                  # sweep trace name (part of the payload)
    # compare cells: execute through the compiled-trace batch path.
    # Bit-identical payloads by contract, so the default stays out of
    # the cell key (see _LATE_DEFAULTS).
    batch: bool = False
    # loadcurve cells: offered-load fractions of the mix's calibrated
    # throughput, the closed-loop calibration's MLP window, and the
    # open-loop arrival-process seed.
    loads: Tuple[float, ...] = ()
    mlp_window: int = 1
    arrival_seed: int = 0xA221

    def __post_init__(self) -> None:
        if self.kind not in ("compare", "sweep", "loadcurve"):
            raise ValueError(f"unknown cell kind {self.kind!r}")
        if self.kind == "compare" and not self.schemes:
            raise ValueError("compare cell needs at least one scheme")
        if self.kind == "sweep" and self.plan is None:
            raise ValueError("sweep cell needs a FaultPlan")
        if self.kind == "loadcurve":
            if not self.schemes:
                raise ValueError("loadcurve cell needs at least one scheme")
            if not self.loads:
                raise ValueError("loadcurve cell needs at least one load point")
        if self.loads:
            if any(not load > 0.0 for load in self.loads):
                raise ValueError(f"loads must be positive, got {self.loads!r}")
            object.__setattr__(
                self, "loads", tuple(float(load) for load in self.loads)
            )
        if self.mlp_window < 1:
            raise ValueError(f"mlp_window must be >= 1, got {self.mlp_window}")
        if self.schemes:
            # Scheme names are registry currency: canonicalise (and
            # validate) them here so equal cells always hash equally,
            # whatever spelling the caller used.
            from ..sim.schemes import canonical_scheme_name

            object.__setattr__(
                self,
                "schemes",
                tuple(canonical_scheme_name(scheme) for scheme in self.schemes),
            )

    @property
    def label(self) -> str:
        """Human-readable cell identity for logs and error messages."""
        if self.kind == "compare":
            return f"{self.workload}({'/'.join(self.schemes)})"
        if self.kind == "loadcurve":
            return f"{self.workload}[loadcurve {'/'.join(self.schemes)}]"
        return f"{self.workload}[sweep {self.config.scheme.value}]"

    def canonical(self) -> Dict:
        return _plain(self)


def cell_key(spec: CellSpec, fingerprint: str) -> str:
    """Content address: canonical spec JSON + the source fingerprint."""
    blob = canonical_json(spec) + ":" + fingerprint
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# Workload resolution (name -> fresh-instance factory)
# ----------------------------------------------------------------------


def resolve_workload(
    name: str,
    ops: int = 0,
    iterations: int = 0,
    seed: Optional[int] = None,
) -> Callable[[], object]:
    """A zero-argument factory for a fresh workload by benchmark name.

    Covers all three families the figures run: ``DAX-*`` micros, the
    Whisper set (YCSB/Hashmap/CTree), and PMEMKV patterns.  Zero /
    ``None`` arguments fall through to the factory defaults so specs
    built from existing call sites reproduce their exact workloads.
    """
    from ..workloads import (
        WHISPER_BENCHMARKS,
        ManyFilesWorkload,
        make_dax_micro,
        make_pmemkv_workload,
        make_whisper_workload,
    )

    if name.split("@", 1)[0] == "ManyFiles":
        # "ManyFiles@10" = 10% of files re-opened per round (the
        # multi-tenant churn knob); ops maps onto the file count.
        churn_part = name.partition("@")[2]
        kwargs = {}
        if churn_part:
            kwargs["churn"] = int(churn_part) / 100.0
        if ops:
            kwargs["num_files"] = ops
        if seed is not None:
            kwargs["seed"] = seed
        return lambda: ManyFilesWorkload(**kwargs)
    if name.upper().startswith("DAX"):
        kwargs = {}
        if iterations:
            kwargs["iterations"] = iterations
        if seed is not None:
            kwargs["seed"] = seed
        return lambda: make_dax_micro(name, **kwargs)
    if name in {bench_name for bench_name, _cls in WHISPER_BENCHMARKS}:
        kwargs = {}
        if ops:
            kwargs["ops"] = ops
        if seed is not None:
            kwargs["seed"] = seed
        return lambda: make_whisper_workload(name, **kwargs)
    kwargs = {}
    if ops:
        kwargs["ops"] = ops
    if seed is not None:
        kwargs["seed"] = seed
    return lambda: make_pmemkv_workload(name, **kwargs)


# ----------------------------------------------------------------------
# Execution (runs in worker processes — keep it a pure function)
# ----------------------------------------------------------------------


def execute_cell(spec: CellSpec) -> Dict:
    """Run one cell to completion; returns the JSON-safe payload.

    Determinism contract: everything the payload contains is derived
    from the spec alone — no wall clock, no pid, no ambient entropy —
    so a worker pool's results are bit-identical to a serial loop's.
    """
    if spec.kind == "compare":
        return _execute_compare(spec)
    if spec.kind == "loadcurve":
        return _execute_loadcurve(spec)
    return _execute_sweep(spec)


def _execute_compare(spec: CellSpec) -> Dict:
    from ..sim.schemes import get_scheme
    from ..workloads.base import run_workload

    factory = resolve_workload(
        spec.workload, ops=spec.ops, iterations=spec.iterations, seed=spec.workload_seed
    )
    runs: Dict[str, Dict] = {}
    workload_name = spec.workload
    # A compare cell is BatchRunner's sweet spot: one captured trace
    # sweeps every scheme column, so the workload's own Python runs
    # once per encryption class instead of once per column.
    batch_runner = None
    if spec.batch:
        from ..sim.batch import BatchRunner

        batch_runner = BatchRunner()
    for scheme_name in spec.schemes:
        workload = factory()
        workload_name = workload.name
        # The registry projects the column onto the cell's base config:
        # for the base schemes this is exactly with_scheme(); variant
        # columns ("fsencr+wpq", "fsencr+anubis", ...) add their pins.
        run_config = get_scheme(scheme_name).configure(spec.config)
        if batch_runner is not None:
            result = batch_runner.run(run_config, workload)
        else:
            result = run_workload(run_config, workload)
        runs[scheme_name] = result.to_dict()
    return {"kind": "compare", "workload": workload_name, "runs": runs}


def _execute_loadcurve(spec: CellSpec) -> Dict:
    from ..analysis.tails import load_curve
    from ..sim.schemes import get_scheme

    curves: Dict[str, Dict] = {}
    for scheme_name in spec.schemes:
        run_config = get_scheme(scheme_name).configure(spec.config)
        curves[scheme_name] = load_curve(
            run_config,
            spec.workload,
            spec.loads,
            window=spec.mlp_window,
            arrival_seed=spec.arrival_seed,
            ops=spec.ops,
        )
    return {"kind": "loadcurve", "mix": spec.workload, "curves": curves}


def _execute_sweep(spec: CellSpec) -> Dict:
    from ..faults.sweep import sweep_workload

    factory = resolve_workload(
        spec.workload, ops=spec.ops, iterations=spec.iterations, seed=spec.workload_seed
    )
    sweep = sweep_workload(
        factory,
        spec.config,
        plan=spec.plan,
        max_points=spec.max_points,
        seed=spec.sweep_seed,
        name=spec.name,
    )
    return {"kind": "sweep", "sweep": sweep.to_dict()}


# ----------------------------------------------------------------------
# Payload decoding (back to the domain objects consumers expect)
# ----------------------------------------------------------------------


def payload_to_runs(payload: Dict) -> Dict[str, RunResult]:
    """Decode a compare payload into {scheme value: RunResult}."""
    if payload.get("kind") != "compare":
        raise ValueError(f"not a compare payload: kind={payload.get('kind')!r}")
    return {
        scheme: RunResult.from_dict(raw) for scheme, raw in payload["runs"].items()
    }


def payload_to_curves(payload: Dict) -> Dict[str, Dict]:
    """Decode a loadcurve payload into ``{scheme: curve dict}``."""
    if payload.get("kind") != "loadcurve":
        raise ValueError(f"not a loadcurve payload: kind={payload.get('kind')!r}")
    return payload["curves"]


def payload_to_sweep(payload: Dict):
    """Decode a sweep payload into a SweepResult."""
    from ..faults.sweep import SweepResult

    if payload.get("kind") != "sweep":
        raise ValueError(f"not a sweep payload: kind={payload.get('kind')!r}")
    return SweepResult.from_dict(payload["sweep"])
