"""Content-addressed on-disk result cache (``.repro-cache/``).

Entries are keyed by ``sha256(canonical cell spec + source fingerprint)``
— see :func:`repro.exec.spec.cell_key` — so a cache hit is a proof-by-
construction that the cached payload is what simulating the cell *now*
would produce: change a config knob, a seed, or any line of the
simulator and the key changes with it.  That makes eviction unnecessary
for correctness; ``clear()`` exists for disk hygiene only.

Layout: one JSON file per cell at ``<dir>/<key[:2]>/<key>.json`` (the
two-character fan-out keeps directories small on big grids).  Files are
written atomically (temp + rename) so a parallel runner's workers and a
concurrent second invocation can share one cache directory safely —
worst case two processes compute the same cell and one rename wins with
an identical payload.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Dict, Optional

__all__ = ["DEFAULT_CACHE_DIR", "ResultCache"]

DEFAULT_CACHE_DIR = ".repro-cache"


class ResultCache:
    """Get/put of cell payloads under one cache directory."""

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = Path(directory or DEFAULT_CACHE_DIR)

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict]:
        """The cached entry for ``key``, or None.  A corrupt or
        truncated file (killed writer, disk trouble) is a miss, never an
        error — the cell is simply recomputed and rewritten."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or "payload" not in entry:
            return None
        return entry

    def put(self, key: str, entry: Dict) -> None:
        """Atomically persist one entry (temp file + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(entry, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        if not self.directory.exists():
            return removed
        for path in self.directory.rglob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for child in sorted(self.directory.iterdir()):
            if child.is_dir():
                shutil.rmtree(child, ignore_errors=True)
        return removed

    def __len__(self) -> int:
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.rglob("*.json"))
