"""Content-addressed on-disk result cache (``.repro-cache/``).

Entries are keyed by ``sha256(canonical cell spec + source fingerprint)``
— see :func:`repro.exec.spec.cell_key` — so a cache hit is a proof-by-
construction that the cached payload is what simulating the cell *now*
would produce: change a config knob, a seed, or any line of the
simulator and the key changes with it.  That makes eviction unnecessary
for correctness; ``clear()`` and ``gc()`` exist for disk hygiene only.

Layout: one JSON file per cell at ``<dir>/<key[:2]>/<key>.json`` (the
two-character fan-out keeps directories small on big grids).  Files are
written atomically (temp + rename) so a parallel runner's workers and a
concurrent second invocation can share one cache directory safely —
worst case two processes compute the same cell and one rename wins with
an identical payload.

Every entry written carries a ``checksum`` over its canonical payload
JSON, so corruption *after* the atomic rename — bit rot, a torn page,
an injected chaos write — is detected, not served: ``get`` treats a
mismatch as a miss, and ``verify`` moves the damaged file into
``<dir>/quarantine/`` for inspection.  ``gc`` sweeps the two kinds of
dead weight a cache accumulates: orphaned ``*.tmp.<pid>`` files from
killed writers, and entries whose recorded source fingerprint no longer
matches the current tree (unreachable forever, since their key embeds
the old fingerprint).  ``python -m repro cache stats|verify|gc`` fronts
all of this from the shell (docs/RUNNER.md).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from pathlib import Path
from typing import Dict, Iterator, Optional

__all__ = ["DEFAULT_CACHE_DIR", "QUARANTINE_DIR", "ResultCache", "payload_checksum"]

DEFAULT_CACHE_DIR = ".repro-cache"
QUARANTINE_DIR = "quarantine"


def payload_checksum(payload) -> str:
    """Hex digest of the canonical JSON form of a cell payload."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """Get/put of cell payloads under one cache directory."""

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = Path(directory or DEFAULT_CACHE_DIR)

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def entry_path(self, key: str) -> Path:
        """Where the entry for ``key`` lives (exists or not)."""
        return self._path(key)

    def _quarantine_dir(self) -> Path:
        return self.directory / QUARANTINE_DIR

    def _live_entries(self) -> Iterator[Path]:
        """Every entry file, excluding the quarantine area."""
        if not self.directory.exists():
            return
        for path in sorted(self.directory.rglob("*.json")):
            if QUARANTINE_DIR in path.parts:
                continue
            yield path

    def _tmp_files(self) -> Iterator[Path]:
        """Orphaned atomic-write temporaries (``<key>.tmp.<pid>``)."""
        if not self.directory.exists():
            return
        for path in sorted(self.directory.rglob("*.tmp.*")):
            if QUARANTINE_DIR in path.parts:
                continue
            yield path

    def get(self, key: str) -> Optional[Dict]:
        """The cached entry for ``key``, or None.  A corrupt or
        truncated file (killed writer, disk trouble) is a miss, never an
        error — the cell is simply recomputed and rewritten.  An entry
        whose payload no longer matches its recorded checksum is equally
        a miss: a silently-garbled result must never be served."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or "payload" not in entry:
            return None
        checksum = entry.get("checksum")
        if checksum is not None and checksum != payload_checksum(entry["payload"]):
            return None
        return entry

    def put(self, key: str, entry: Dict) -> None:
        """Atomically persist one entry (temp file + rename), stamping a
        payload checksum so later corruption is detectable."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        if "payload" in entry and "checksum" not in entry:
            entry = dict(entry)
            entry["checksum"] = payload_checksum(entry["payload"])
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(entry, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed.

        Also sweeps ``*.tmp.<pid>`` leftovers from interrupted writers —
        the one file kind an entry-keyed cache would otherwise leak
        forever — though only real entries count toward the total.
        """
        removed = 0
        if not self.directory.exists():
            return removed
        for path in self.directory.rglob("*.tmp.*"):
            try:
                path.unlink()
            except OSError:
                pass
        for path in self.directory.rglob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for child in sorted(self.directory.iterdir()):
            if child.is_dir():
                shutil.rmtree(child, ignore_errors=True)
        return removed

    # -- tooling (python -m repro cache ...) ----------------------------

    def stats(self) -> Dict:
        """Entry counts, bytes, and age span — the ``cache stats`` view."""
        entries = 0
        total_bytes = 0
        mtimes = []
        for path in self._live_entries():
            try:
                info = path.stat()
            except OSError:
                continue
            entries += 1
            total_bytes += info.st_size
            mtimes.append(info.st_mtime)
        tmp_files = sum(1 for _ in self._tmp_files())
        quarantined = 0
        if self._quarantine_dir().exists():
            quarantined = sum(1 for _ in self._quarantine_dir().glob("*.json"))
        now = time.time()
        return {
            "directory": str(self.directory),
            "entries": entries,
            "bytes": total_bytes,
            "tmp_files": tmp_files,
            "quarantined": quarantined,
            "oldest_age_seconds": (now - min(mtimes)) if mtimes else 0.0,
            "newest_age_seconds": (now - max(mtimes)) if mtimes else 0.0,
        }

    def verify(self) -> Dict:
        """Re-check every entry's payload against its checksum.

        Unreadable JSON, a missing payload, and a checksum mismatch all
        classify as *corrupt*; corrupt files move to ``quarantine/`` so
        the evidence survives the recompute that would otherwise
        overwrite it.  Entries written before checksums existed count as
        *legacy* — valid, but unverifiable — and are left in place.
        """
        checked = ok = legacy = corrupt = 0
        quarantined = []
        for path in list(self._live_entries()):
            checked += 1
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                entry = None
            if not isinstance(entry, dict) or "payload" not in entry:
                corrupt += 1
                quarantined.append(self._quarantine(path))
                continue
            checksum = entry.get("checksum")
            if checksum is None:
                legacy += 1
                continue
            if checksum != payload_checksum(entry["payload"]):
                corrupt += 1
                quarantined.append(self._quarantine(path))
                continue
            ok += 1
        return {
            "checked": checked,
            "ok": ok,
            "legacy": legacy,
            "corrupt": corrupt,
            "quarantined": quarantined,
        }

    def _quarantine(self, path: Path) -> str:
        target_dir = self._quarantine_dir()
        target_dir.mkdir(parents=True, exist_ok=True)
        target = target_dir / path.name
        try:
            os.replace(path, target)
        except OSError:
            pass
        return path.name

    def gc(self, fingerprint: Optional[str] = None) -> Dict:
        """Remove orphaned temp files and stale-fingerprint entries.

        An entry whose recorded ``fingerprint`` differs from the current
        one can never hit again — its key embedded the old fingerprint —
        so it is pure dead weight.  Pass ``fingerprint=None`` to sweep
        temp files only.
        """
        tmp_removed = 0
        stale_removed = 0
        bytes_freed = 0
        kept = 0
        for path in list(self._tmp_files()):
            try:
                bytes_freed += path.stat().st_size
                path.unlink()
                tmp_removed += 1
            except OSError:
                pass
        for path in list(self._live_entries()):
            stale = False
            if fingerprint is not None:
                try:
                    entry = json.loads(path.read_text(encoding="utf-8"))
                    stale = (
                        isinstance(entry, dict)
                        and entry.get("fingerprint", fingerprint) != fingerprint
                    )
                except (OSError, ValueError):
                    stale = False  # corrupt files are verify()'s business
            if stale:
                try:
                    bytes_freed += path.stat().st_size
                    path.unlink()
                    stale_removed += 1
                except OSError:
                    pass
            else:
                kept += 1
        return {
            "tmp_removed": tmp_removed,
            "stale_removed": stale_removed,
            "bytes_freed": bytes_freed,
            "entries_kept": kept,
        }

    def __len__(self) -> int:
        return sum(1 for _ in self._live_entries())
