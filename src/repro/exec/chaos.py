"""Chaos injection for the supervised runner.

The supervision layer's claims — a hung cell is killed and accounted, a
dead worker rebuilds the pool, a transient error is retried to a
bit-identical payload, a corrupt cache write is detected — are only
worth anything if they are *provoked* and observed.  A
:class:`ChaosPolicy` is a picklable saboteur the tests hand to
:class:`~repro.exec.runner.ExperimentRunner`: it matches cells by label
substring and makes their workers hang, die (``os._exit``), raise a
transient error N times before succeeding, or garble their cache entry
on the way to disk.

Sabotage budgets (``times``) are tracked in small counter files under
``state_dir`` because a retried attempt typically lands in a *fresh*
worker process — "die once, then succeed" has to survive the death it
causes.  Nothing here touches the simulation itself: chaos fires in the
worker wrapper *around* ``execute_cell`` (or in the parent around the
cache write), so a surviving attempt's payload is exactly the payload a
clean run produces.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

__all__ = [
    "CHAOS_KINDS",
    "ChaosTransientError",
    "ChaosAction",
    "ChaosPolicy",
    "apply_worker_chaos",
    "sabotage_cache_write",
]

CHAOS_KINDS = ("hang", "die", "transient", "corrupt-write")

#: Worker-side kinds need a process of their own to sabotage: a hang can
#: only be preempted, and a death only survived, across a process
#: boundary — the serial path refuses them instead of wedging pytest.
_LETHAL_KINDS = ("hang", "die")


class ChaosTransientError(RuntimeError):
    """The injected 'fails N times, then succeeds' failure."""


@dataclass(frozen=True)
class ChaosAction:
    """One kind of sabotage, with a budget.

    ``times`` is how many attempts get sabotaged before the action goes
    quiet (0 = every attempt, forever).  ``seconds`` is the hang length;
    ``mode`` picks how a cache entry is corrupted: ``truncate`` (cut off
    mid-JSON, a killed writer) or ``garble`` (valid JSON whose payload no
    longer matches its checksum, silent media trouble).
    """

    kind: str
    times: int = 1
    seconds: float = 3600.0
    mode: str = "truncate"

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(f"unknown chaos kind {self.kind!r} (choose from {CHAOS_KINDS})")
        if self.mode not in ("truncate", "garble"):
            raise ValueError(f"unknown corrupt-write mode {self.mode!r}")


@dataclass(frozen=True)
class ChaosPolicy:
    """Which cells get sabotaged, how, and where the budgets live.

    ``rules`` maps a label substring to an action; the first match wins.
    The whole object pickles into every worker, so it must stay a value
    — all shared state goes through files under ``state_dir``.
    """

    state_dir: str
    rules: Tuple[Tuple[str, ChaosAction], ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.rules, dict):
            object.__setattr__(self, "rules", tuple(sorted(self.rules.items())))
        else:
            object.__setattr__(self, "rules", tuple(self.rules))

    def match(self, spec) -> Optional[Tuple[str, ChaosAction]]:
        for needle, action in self.rules:
            if needle in spec.label:
                return needle, action
        return None

    def consume(self, needle: str, action: ChaosAction) -> bool:
        """Spend one sabotage token; True if the action fires this time.

        The counter lives on disk so the budget is shared between the
        parent, the original worker, and every retry's fresh worker —
        including across the process death the action itself causes
        (the file is flushed before ``os._exit`` runs).
        """
        if action.times <= 0:
            return True
        root = Path(self.state_dir)
        root.mkdir(parents=True, exist_ok=True)
        slug = hashlib.sha256(f"{needle}:{action.kind}".encode()).hexdigest()[:16]
        path = root / f"{slug}.count"
        try:
            fired = int(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            fired = 0
        if fired >= action.times:
            return False
        path.write_text(str(fired + 1), encoding="utf-8")
        return True


def apply_worker_chaos(
    spec, policy: Optional[ChaosPolicy], in_pool_worker: bool = True
) -> None:
    """Sabotage this attempt of ``spec`` if the policy says so.

    Called in the worker immediately before ``execute_cell`` (and by the
    serial path, which rejects the lethal kinds rather than hanging or
    killing the only process there is).
    """
    if policy is None:
        return
    hit = policy.match(spec)
    if hit is None:
        return
    needle, action = hit
    if action.kind == "corrupt-write":
        return  # parent-side sabotage; see sabotage_cache_write
    if action.kind in _LETHAL_KINDS and not in_pool_worker:
        raise RuntimeError(
            f"chaos {action.kind!r} needs a worker pool (jobs >= 2); the "
            f"serial path cannot survive it"
        )
    if not policy.consume(needle, action):
        return
    if action.kind == "transient":
        raise ChaosTransientError(
            f"injected transient failure for {spec.label}"
        )
    if action.kind == "hang":
        time.sleep(action.seconds)
    elif action.kind == "die":
        os._exit(13)


def sabotage_cache_write(cache, key: str, spec, policy: Optional[ChaosPolicy]) -> bool:
    """Corrupt the just-written cache entry for ``spec``; True if it did.

    Runs in the parent right after ``ResultCache.put``: the in-memory
    result the caller holds stays correct, but the on-disk entry is now
    what a killed writer or silent bit rot would leave behind — exactly
    what ``cache verify`` and the checksum check in ``get`` must catch.
    """
    if policy is None:
        return False
    hit = policy.match(spec)
    if hit is None or hit[1].kind != "corrupt-write":
        return False
    needle, action = hit
    if not policy.consume(needle, action):
        return False
    path = cache.entry_path(key)
    if not path.exists():
        return False
    if action.mode == "truncate":
        path.write_text('{"payload": {"trunca', encoding="utf-8")
    else:
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["payload"] = {"garbled": True, "was": spec.label}
        # Keep the original checksum: the payload no longer matches it.
        path.write_text(json.dumps(entry, sort_keys=True), encoding="utf-8")
    return True
