"""The parallel, memoised experiment runner.

``ExperimentRunner.run`` takes a list of :class:`CellSpec` and returns
their payloads in order, fanning uncached cells out over a
``ProcessPoolExecutor``.  The contract that makes this safe is division
of labour:

* cells are *pure functions* of their spec (``execute_cell``) — so
  running them in any process, in any order, yields the same bytes;
* the cache key binds spec + source fingerprint — so a hit can be
  served without re-simulating, and any simulator edit misses;
* ``jobs=1`` executes in-process with no pool at all — the exact serial
  path, used by tests to prove the parallel path changes nothing.

Observability: every ``run`` records per-cell wall-seconds, hit/miss
counts, and throughput into :class:`RunnerStats` (``runner.last_stats``,
with a lifetime accumulation in ``runner.lifetime``); consumers persist
it into their results JSON so a figure's provenance records how it was
produced.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .cache import ResultCache
from .fingerprint import source_fingerprint
from .spec import CellSpec, cell_key, execute_cell

__all__ = ["CellExecutionError", "CellResult", "RunnerStats", "ExperimentRunner"]


class CellExecutionError(RuntimeError):
    """A cell failed in a worker.  The grid run raises — it never
    returns a silent partial grid — and the message names the cell."""


@dataclass
class CellResult:
    """One executed (or cache-served) cell."""

    spec: CellSpec
    key: str
    payload: Dict
    wall_seconds: float
    from_cache: bool


@dataclass
class RunnerStats:
    """Counters for one ``run`` call (or a lifetime accumulation)."""

    cells_total: int = 0
    cache_hits: int = 0
    simulated: int = 0
    wall_seconds: float = 0.0   # elapsed for the whole run() call
    cell_seconds: float = 0.0   # sum of per-cell simulation time
    jobs: int = 1

    @property
    def cache_misses(self) -> int:
        return self.cells_total - self.cache_hits

    @property
    def cells_per_second(self) -> float:
        return self.cells_total / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def merge(self, other: "RunnerStats") -> None:
        self.cells_total += other.cells_total
        self.cache_hits += other.cache_hits
        self.simulated += other.simulated
        self.wall_seconds += other.wall_seconds
        self.cell_seconds += other.cell_seconds
        self.jobs = max(self.jobs, other.jobs)

    def summary(self) -> str:
        return (
            f"exec: {self.cells_total} cells "
            f"({self.simulated} simulated, {self.cache_hits} cached) "
            f"in {self.wall_seconds:.2f}s wall / {self.cell_seconds:.2f}s cell time, "
            f"{self.cells_per_second:.2f} cells/s, jobs={self.jobs}"
        )

    def to_dict(self) -> Dict:
        return {
            "cells_total": self.cells_total,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "simulated": self.simulated,
            "wall_seconds": self.wall_seconds,
            "cell_seconds": self.cell_seconds,
            "cells_per_second": self.cells_per_second,
            "jobs": self.jobs,
        }


def _execute_timed(spec: CellSpec):
    """Worker entry point: run one cell, time it.  Module-level so the
    process pool can pickle it; wall time is measured *around* the pure
    simulation, never fed into it."""
    start = time.perf_counter()
    payload = execute_cell(spec)
    return payload, time.perf_counter() - start


class ExperimentRunner:
    """Fan a grid of cells out over processes, memoising on disk.

    * ``jobs`` — worker count; ``None`` means ``os.cpu_count()``; ``1``
      is the exact in-process serial path (no pool, no pickling).
    * ``use_cache`` — serve unchanged cells from ``.repro-cache/``
      (``--no-cache`` maps to False: always simulate, never read/write).
    * ``cache_dir`` — override the cache location.
    * ``fingerprint`` — override the source fingerprint (tests use this
      to prove a "source change" invalidates every key).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        *,
        use_cache: bool = True,
        cache_dir: Optional[Path] = None,
        cache: Optional[ResultCache] = None,
        fingerprint: Optional[str] = None,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.use_cache = use_cache
        self.cache = cache or ResultCache(cache_dir)
        self._fingerprint = fingerprint
        self.last_stats = RunnerStats(jobs=self.jobs)
        self.lifetime = RunnerStats(jobs=self.jobs)

    def fingerprint(self) -> str:
        return self._fingerprint or source_fingerprint()

    def clear_cache(self) -> int:
        return self.cache.clear()

    # ------------------------------------------------------------------

    def run(self, specs: Sequence[CellSpec]) -> List[CellResult]:
        """Execute a grid; results come back in spec order.

        Raises :class:`CellExecutionError` if any cell fails — cells
        that already completed are still cached, so a re-run after a fix
        only pays for the broken cell onward.
        """
        start = time.perf_counter()
        fingerprint = self.fingerprint()
        keys = [cell_key(spec, fingerprint) for spec in specs]
        results: List[Optional[CellResult]] = [None] * len(specs)

        pending: List[int] = []
        for index, (spec, key) in enumerate(zip(specs, keys)):
            entry = self.cache.get(key) if self.use_cache else None
            if entry is not None:
                results[index] = CellResult(
                    spec=spec,
                    key=key,
                    payload=entry["payload"],
                    wall_seconds=entry.get("wall_seconds", 0.0),
                    from_cache=True,
                )
            else:
                pending.append(index)

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                self._run_serial(specs, keys, results, pending, fingerprint)
            else:
                self._run_pool(specs, keys, results, pending, fingerprint)

        stats = RunnerStats(
            cells_total=len(specs),
            cache_hits=len(specs) - len(pending),
            simulated=len(pending),
            wall_seconds=time.perf_counter() - start,
            cell_seconds=sum(
                r.wall_seconds for r in results if r is not None and not r.from_cache
            ),
            jobs=self.jobs,
        )
        self.last_stats = stats
        self.lifetime.merge(stats)
        return [result for result in results if result is not None]

    def run_one(self, spec: CellSpec) -> CellResult:
        return self.run([spec])[0]

    # ------------------------------------------------------------------

    def _store(self, spec: CellSpec, key: str, payload: Dict, seconds: float,
               fingerprint: str) -> CellResult:
        if self.use_cache:
            self.cache.put(
                key,
                {
                    "spec": spec.canonical(),
                    "fingerprint": fingerprint,
                    "payload": payload,
                    "wall_seconds": seconds,
                },
            )
        return CellResult(
            spec=spec, key=key, payload=payload, wall_seconds=seconds, from_cache=False
        )

    def _run_serial(self, specs, keys, results, pending, fingerprint) -> None:
        for index in pending:
            try:
                payload, seconds = _execute_timed(specs[index])
            except Exception as exc:
                raise CellExecutionError(
                    f"cell {specs[index].label} failed: {exc}"
                ) from exc
            results[index] = self._store(
                specs[index], keys[index], payload, seconds, fingerprint
            )

    def _run_pool(self, specs, keys, results, pending, fingerprint) -> None:
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_execute_timed, specs[index]): index for index in pending
            }
            done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
            failed: Optional[BaseException] = None
            failed_index = -1
            for future in done:
                index = futures[future]
                exc = future.exception()
                if exc is not None:
                    if failed is None:
                        failed, failed_index = exc, index
                    continue
                payload, seconds = future.result()
                results[index] = self._store(
                    specs[index], keys[index], payload, seconds, fingerprint
                )
            if failed is not None:
                for future in not_done:
                    future.cancel()
                raise CellExecutionError(
                    f"cell {specs[failed_index].label} failed in worker: {failed}"
                ) from failed
            # FIRST_EXCEPTION with no exception means everything is done.
            assert not not_done
