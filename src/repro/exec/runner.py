"""The parallel, memoised, *supervised* experiment runner.

``ExperimentRunner.run`` takes a list of :class:`CellSpec` and returns
their payloads in order, fanning uncached cells out over a
``ProcessPoolExecutor``.  The contract that makes this safe is division
of labour:

* cells are *pure functions* of their spec (``execute_cell``) — so
  running them in any process, in any order, any number of times,
  yields the same bytes;
* the cache key binds spec + source fingerprint — so a hit can be
  served without re-simulating, and any simulator edit misses;
* ``jobs=1`` executes in-process with no pool at all — the exact serial
  path, used by tests to prove the parallel path changes nothing.

Supervision (:mod:`repro.exec.supervise`) sits on top: per-cell
wall-clock timeouts, bounded retries with deterministic seeded backoff,
``BrokenProcessPoolError`` recovery that rebuilds the pool and re-queues
the in-flight cells, and a ``failure_policy`` of ``fail_fast`` (default:
the first quarantined cell raises) or ``continue`` (finish the grid,
quarantine failures into the :class:`GridReport`).  Results are stored
*as cells complete* — a failure late in a grid never discards finished
work.

Observability: every ``run`` records per-cell wall-seconds, hit/miss
counts, recovery activity (retries, timeouts, re-queues, pool rebuilds),
and throughput into :class:`RunnerStats` (``runner.last_stats``, with a
lifetime accumulation in ``runner.lifetime``) and the per-cell audit
into ``runner.last_report``; consumers persist both into their results
JSON so a figure's provenance records how it was produced.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .cache import ResultCache
from .chaos import ChaosPolicy, sabotage_cache_write
from .fingerprint import source_fingerprint
from .spec import CellSpec, cell_key, execute_cell
from .supervise import (
    OUTCOME_CACHED,
    OUTCOME_CANCELLED,
    OUTCOME_FAILED,
    OUTCOME_SIMULATED,
    OUTCOME_TIMED_OUT,
    CellRecord,
    GridReport,
    SupervisionPolicy,
    Supervisor,
)

__all__ = ["CellExecutionError", "CellResult", "RunnerStats", "ExperimentRunner"]


class CellExecutionError(RuntimeError):
    """A cell was quarantined under ``fail_fast``.  The grid run raises
    — it never returns a silent partial grid — and the message names the
    cell (or, for a pool death, the cells that were in flight).  The
    full :class:`GridReport` rides along as ``.report``."""

    def __init__(self, message: str, report: Optional[GridReport] = None) -> None:
        super().__init__(message)
        self.report = report


@dataclass
class CellResult:
    """One executed (or cache-served) cell."""

    spec: CellSpec
    key: str
    payload: Dict
    wall_seconds: float
    from_cache: bool


@dataclass
class RunnerStats:
    """Counters for one ``run`` call (or a lifetime accumulation)."""

    cells_total: int = 0
    cache_hits: int = 0
    simulated: int = 0
    wall_seconds: float = 0.0   # elapsed for the whole run() call
    cell_seconds: float = 0.0   # sum of per-cell simulation time
    jobs: int = 1
    # Recovery activity (docs/RUNNER.md "Supervised execution"):
    retries: int = 0            # attempts re-run after an error or timeout
    timeouts: int = 0           # deadline kills performed by the supervisor
    requeues: int = 0           # cells resubmitted after a pool death
    pool_rebuilds: int = 0      # times a broken pool was replaced
    failed_cells: int = 0       # final outcome failed or timed-out
    cancelled_cells: int = 0    # never ran: a fail_fast grid aborted first

    @property
    def cache_misses(self) -> int:
        return self.cells_total - self.cache_hits

    @property
    def cells_per_second(self) -> float:
        return self.cells_total / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def stat(self, key: str) -> float:
        """Strict counter lookup: raises on an unknown key.

        Mirrors :meth:`repro.sim.results.RunResult.stat` — a misspelled
        counter must fail loudly, never read as a plausible zero.
        """
        data = self.to_dict()
        try:
            return data[key]
        except KeyError:
            known = ", ".join(sorted(data))
            raise KeyError(f"unknown runner stat {key!r} (known: {known})") from None

    def merge(self, other: "RunnerStats") -> None:
        self.cells_total += other.cells_total
        self.cache_hits += other.cache_hits
        self.simulated += other.simulated
        self.wall_seconds += other.wall_seconds
        self.cell_seconds += other.cell_seconds
        self.jobs = max(self.jobs, other.jobs)
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.requeues += other.requeues
        self.pool_rebuilds += other.pool_rebuilds
        self.failed_cells += other.failed_cells
        self.cancelled_cells += other.cancelled_cells

    def summary(self) -> str:
        text = (
            f"exec: {self.cells_total} cells "
            f"({self.simulated} simulated, {self.cache_hits} cached) "
            f"in {self.wall_seconds:.2f}s wall / {self.cell_seconds:.2f}s cell time, "
            f"{self.cells_per_second:.2f} cells/s, jobs={self.jobs}"
        )
        recovery = []
        if self.retries:
            recovery.append(f"{self.retries} retries")
        if self.timeouts:
            recovery.append(f"{self.timeouts} timeouts")
        if self.requeues:
            recovery.append(f"{self.requeues} requeued")
        if self.pool_rebuilds:
            recovery.append(f"{self.pool_rebuilds} pool rebuilds")
        if self.failed_cells:
            recovery.append(f"{self.failed_cells} quarantined")
        if self.cancelled_cells:
            recovery.append(f"{self.cancelled_cells} cancelled")
        if recovery:
            text += f" [{', '.join(recovery)}]"
        return text

    def to_dict(self) -> Dict:
        return {
            "cells_total": self.cells_total,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "simulated": self.simulated,
            "wall_seconds": self.wall_seconds,
            "cell_seconds": self.cell_seconds,
            "cells_per_second": self.cells_per_second,
            "jobs": self.jobs,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "requeues": self.requeues,
            "pool_rebuilds": self.pool_rebuilds,
            "failed_cells": self.failed_cells,
            "cancelled_cells": self.cancelled_cells,
        }


def _execute_timed(spec: CellSpec):
    """Run one cell, time it.  Wall time is measured *around* the pure
    simulation, never fed into it."""
    start = time.perf_counter()
    payload = execute_cell(spec)
    return payload, time.perf_counter() - start


class ExperimentRunner:
    """Fan a grid of cells out over processes, memoising on disk.

    * ``jobs`` — worker count; ``None`` means ``os.cpu_count()``; ``1``
      is the exact in-process serial path (no pool, no pickling).
    * ``use_cache`` — serve unchanged cells from ``.repro-cache/``
      (``--no-cache`` maps to False: always simulate, never read/write).
    * ``cache_dir`` — override the cache location.
    * ``fingerprint`` — override the source fingerprint (tests use this
      to prove a "source change" invalidates every key).
    * ``policy`` — the :class:`SupervisionPolicy`; the default is
      exactly the unsupervised semantics (no timeout, one attempt,
      ``fail_fast``).
    * ``chaos`` — a :class:`ChaosPolicy` saboteur (tests only).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        *,
        use_cache: bool = True,
        cache_dir: Optional[Path] = None,
        cache: Optional[ResultCache] = None,
        fingerprint: Optional[str] = None,
        policy: Optional[SupervisionPolicy] = None,
        chaos: Optional[ChaosPolicy] = None,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        self.use_cache = use_cache
        self.cache = cache or ResultCache(cache_dir)
        self._fingerprint = fingerprint
        self.policy = policy or SupervisionPolicy()
        self.chaos = chaos
        self.last_stats = RunnerStats(jobs=self.jobs)
        self.lifetime = RunnerStats(jobs=self.jobs)
        self.last_report: Optional[GridReport] = None

    def fingerprint(self) -> str:
        return self._fingerprint or source_fingerprint()

    def clear_cache(self) -> int:
        return self.cache.clear()

    # ------------------------------------------------------------------

    def run(self, specs: Sequence[CellSpec]) -> List[Optional[CellResult]]:
        """Execute a grid; results come back in spec order.

        Under ``fail_fast`` (the default) a quarantined cell raises
        :class:`CellExecutionError` — never a silent partial grid — and
        every list entry of a normal return is a :class:`CellResult`.
        Under ``continue`` the grid finishes around failures: the
        returned list keeps spec order with ``None`` holes for
        quarantined cells, and ``runner.last_report`` records every
        cell's fate.  Either way, cells that completed are already
        cached, so a re-run after a fix only pays for what never
        finished.
        """
        start = time.perf_counter()
        fingerprint = self.fingerprint()
        keys = [cell_key(spec, fingerprint) for spec in specs]
        results: List[Optional[CellResult]] = [None] * len(specs)
        records = [
            CellRecord(label=spec.label, key=key) for spec, key in zip(specs, keys)
        ]
        stats = RunnerStats(cells_total=len(specs), jobs=self.jobs)

        pending: List[int] = []
        for index, (spec, key) in enumerate(zip(specs, keys)):
            entry = self.cache.get(key) if self.use_cache else None
            if entry is not None:
                results[index] = CellResult(
                    spec=spec,
                    key=key,
                    payload=entry["payload"],
                    wall_seconds=entry.get("wall_seconds", 0.0),
                    from_cache=True,
                )
                records[index].outcome = OUTCOME_CACHED
            else:
                pending.append(index)

        if pending:
            supervisor = Supervisor(
                specs=specs,
                keys=keys,
                records=records,
                policy=self.policy,
                chaos=self.chaos,
                store=lambda index, payload, seconds: results.__setitem__(
                    index,
                    self._store(specs[index], keys[index], payload, seconds, fingerprint),
                ),
                stats=stats,
            )
            if self.jobs == 1 or len(pending) == 1:
                supervisor.run_serial(pending)
            else:
                supervisor.run_pool(pending, self.jobs)

        report = GridReport(cells=records, failure_policy=self.policy.failure_policy)
        stats.cache_hits = len(specs) - len(pending)
        stats.simulated = sum(1 for r in records if r.outcome == OUTCOME_SIMULATED)
        stats.failed_cells = sum(
            1 for r in records if r.outcome in (OUTCOME_FAILED, OUTCOME_TIMED_OUT)
        )
        stats.cancelled_cells = sum(
            1 for r in records if r.outcome == OUTCOME_CANCELLED
        )
        stats.wall_seconds = time.perf_counter() - start
        stats.cell_seconds = sum(
            r.wall_seconds for r in results if r is not None and not r.from_cache
        )
        self.last_stats = stats
        self.lifetime.merge(stats)
        self.last_report = report

        if self.policy.failure_policy == "fail_fast":
            quarantined = report.quarantined
            if quarantined:
                raise CellExecutionError(self._blame(quarantined[0]), report)
        return results

    def run_one(self, spec: CellSpec) -> CellResult:
        return self.run([spec])[0]

    # ------------------------------------------------------------------

    @staticmethod
    def _blame(record: CellRecord) -> str:
        """The fail_fast message: name the true culprit, not a bystander.

        A pool death fails every pending future at once; blaming
        whichever future iterates first misattributes the crash, so the
        pool-death attempt's own text (which names the cells that were
        actually in flight) is surfaced verbatim.
        """
        last = record.attempts[-1] if record.attempts else None
        if last is not None and last.outcome == "pool-death":
            return last.error
        if record.outcome == OUTCOME_TIMED_OUT:
            return (
                f"cell {record.label} timed out "
                f"({record.executed_attempts} attempt(s)): {last.error if last else ''}"
            )
        detail = last.error if last else "no attempt recorded"
        return (
            f"cell {record.label} failed in worker after "
            f"{record.executed_attempts} attempt(s): {detail}"
        )

    def _store(self, spec: CellSpec, key: str, payload: Dict, seconds: float,
               fingerprint: str) -> CellResult:
        if self.use_cache:
            self.cache.put(
                key,
                {
                    "spec": spec.canonical(),
                    "fingerprint": fingerprint,
                    "payload": payload,
                    "wall_seconds": seconds,
                },
            )
            sabotage_cache_write(self.cache, key, spec, self.chaos)
        return CellResult(
            spec=spec, key=key, payload=payload, wall_seconds=seconds, from_cache=False
        )
