"""Supervised cell execution: timeouts, retries, pool-crash recovery.

The simulator side of this reproduction enforces *detected-or-recovered-
never-silent* for the simulated machine; this module gives the
experiment harness the same discipline.  Every cell an
:class:`~repro.exec.runner.ExperimentRunner` submits terminates in
exactly one recorded outcome:

``cached``     served from ``.repro-cache/`` without simulating;
``simulated``  executed (possibly after retries) and stored;
``failed``     every attempt errored — quarantined with its tracebacks;
``timed-out``  exceeded the per-cell wall-clock budget on its final
               attempt (the hung worker is killed, never abandoned);
``cancelled``  a ``fail_fast`` grid aborted before the cell ran.

Two value objects carry the policy and the evidence:

* :class:`SupervisionPolicy` — per-cell timeout, bounded retries with
  *deterministic seeded* exponential backoff (delays are a pure function
  of ``(backoff_seed, cell key, attempt)``; no wall clock or ambient
  entropy feeds a policy decision), a pool-rebuild budget for poison
  cells, and the ``failure_policy`` (``fail_fast`` raises on the first
  quarantined cell, ``continue`` finishes the grid around it).
* :class:`GridReport` — one :class:`CellRecord` per submitted cell with
  its full attempt history (outcome, traceback, wall seconds, backoff),
  persisted under ``runner.grid_report`` in results JSON.

The :class:`Supervisor` is the engine: the pool path replaces the old
``wait(FIRST_EXCEPTION)`` barrier with as-completed draining (finished
cells are stored the moment they finish, so a later failure throws
nothing away), kills workers that blow their deadline, and survives
``BrokenProcessPoolError`` by rebuilding the pool, re-queueing the cells
that were in flight, and attributing the death to them by name — never
to whichever future happened to iterate first.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import signal
import tempfile
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from .chaos import ChaosPolicy, apply_worker_chaos
from .spec import CellSpec, execute_cell

__all__ = [
    "OUTCOME_CACHED",
    "OUTCOME_SIMULATED",
    "OUTCOME_FAILED",
    "OUTCOME_TIMED_OUT",
    "OUTCOME_CANCELLED",
    "FINAL_OUTCOMES",
    "FAILURE_POLICIES",
    "SupervisionPolicy",
    "CellAttempt",
    "CellRecord",
    "GridReport",
    "Supervisor",
]

OUTCOME_CACHED = "cached"
OUTCOME_SIMULATED = "simulated"
OUTCOME_FAILED = "failed"
OUTCOME_TIMED_OUT = "timed-out"
OUTCOME_CANCELLED = "cancelled"

#: Every submitted cell must end in exactly one of these.
FINAL_OUTCOMES = (
    OUTCOME_CACHED,
    OUTCOME_SIMULATED,
    OUTCOME_FAILED,
    OUTCOME_TIMED_OUT,
    OUTCOME_CANCELLED,
)

FAILURE_POLICIES = ("fail_fast", "continue")


@dataclass(frozen=True)
class SupervisionPolicy:
    """How hard the runner fights for each cell before giving up.

    The defaults reproduce the pre-supervision semantics exactly: no
    timeout, one attempt, ``fail_fast``.
    """

    timeout_seconds: Optional[float] = None  # None = no per-cell deadline
    max_attempts: int = 1                    # executed attempts per cell
    backoff_base: float = 0.0                # delay before the 2nd attempt
    backoff_factor: float = 2.0              # growth per further attempt
    backoff_seed: int = 0xB0FF
    max_pool_rebuilds: int = 3               # non-timeout pool deaths tolerated
    failure_policy: str = "fail_fast"
    poll_seconds: float = 0.05               # supervisor wake-up tick

    def __post_init__(self) -> None:
        if self.failure_policy not in FAILURE_POLICIES:
            raise ValueError(
                f"failure_policy must be one of {FAILURE_POLICIES}, "
                f"not {self.failure_policy!r}"
            )
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive (or None)")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")

    def backoff_seconds(self, key: str, executed_attempts: int) -> float:
        """Delay before the next attempt of the cell addressed by ``key``.

        A pure function of (policy, key, attempt count): exponential in
        the attempt number with jitter drawn from a sha256 of the seed
        and the cell key — never from the wall clock or the process
        environment, so two runs of the same grid back off identically
        (the no-worker-seed-entropy contract, docs/RUNNER.md).
        """
        if self.backoff_base <= 0:
            return 0.0
        delay = self.backoff_base * (self.backoff_factor ** max(0, executed_attempts - 1))
        blob = f"{self.backoff_seed}:{key}:{executed_attempts}".encode()
        jitter = int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") / 2.0**64
        return delay * (0.5 + jitter)


@dataclass
class CellAttempt:
    """One try at one cell — executed, killed, or lost to a pool death."""

    attempt: int            # 1-based position in the record's history
    outcome: str            # "ok" | "error" | "timeout" | "pool-death"
    error: str = ""         # traceback / blame text for non-ok outcomes
    wall_seconds: float = 0.0
    backoff_seconds: float = 0.0  # delay applied before the *next* attempt

    def to_dict(self) -> Dict:
        return {
            "attempt": self.attempt,
            "outcome": self.outcome,
            "error": self.error,
            "wall_seconds": self.wall_seconds,
            "backoff_seconds": self.backoff_seconds,
        }

    @classmethod
    def from_dict(cls, raw: Dict) -> "CellAttempt":
        return cls(
            attempt=raw["attempt"],
            outcome=raw["outcome"],
            error=raw.get("error", ""),
            wall_seconds=raw.get("wall_seconds", 0.0),
            backoff_seconds=raw.get("backoff_seconds", 0.0),
        )


@dataclass
class CellRecord:
    """The audited life of one submitted cell: attempts, then a verdict."""

    label: str
    key: str
    outcome: str = ""  # one of FINAL_OUTCOMES once the grid finishes
    attempts: List[CellAttempt] = field(default_factory=list)

    @property
    def executed_attempts(self) -> int:
        """Attempts that actually consumed the cell's retry budget.

        ``pool-death`` entries are excluded: when the pool dies with
        several cells in flight, any of them may be the innocent
        bystander, so a death is bounded by the pool-rebuild budget
        instead of charging every victim an attempt.
        """
        return sum(1 for a in self.attempts if a.outcome in ("ok", "error", "timeout"))

    def note(
        self,
        outcome: str,
        error: str = "",
        wall_seconds: float = 0.0,
        backoff_seconds: float = 0.0,
    ) -> CellAttempt:
        attempt = CellAttempt(
            attempt=len(self.attempts) + 1,
            outcome=outcome,
            error=error,
            wall_seconds=wall_seconds,
            backoff_seconds=backoff_seconds,
        )
        self.attempts.append(attempt)
        return attempt

    def to_dict(self) -> Dict:
        return {
            "label": self.label,
            "key": self.key,
            "outcome": self.outcome,
            "attempts": [a.to_dict() for a in self.attempts],
        }

    @classmethod
    def from_dict(cls, raw: Dict) -> "CellRecord":
        return cls(
            label=raw["label"],
            key=raw["key"],
            outcome=raw.get("outcome", ""),
            attempts=[CellAttempt.from_dict(a) for a in raw.get("attempts", [])],
        )


@dataclass
class GridReport:
    """Every submitted cell's recorded fate — the harness-level audit log.

    The invariant mirrors the crash sweep's: no cell is ever silently
    missing.  ``complete()`` checks it; the chaos tests assert it after
    injected hangs, deaths, and transient failures.
    """

    cells: List[CellRecord] = field(default_factory=list)
    failure_policy: str = "fail_fast"

    def counts(self) -> Dict[str, int]:
        tally = {outcome: 0 for outcome in FINAL_OUTCOMES}
        for record in self.cells:
            tally[record.outcome] = tally.get(record.outcome, 0) + 1
        return tally

    @property
    def quarantined(self) -> List[CellRecord]:
        """Cells that never produced a payload (failed or timed out)."""
        return [
            r for r in self.cells if r.outcome in (OUTCOME_FAILED, OUTCOME_TIMED_OUT)
        ]

    def complete(self) -> bool:
        """True iff every submitted cell has exactly one final outcome."""
        return all(record.outcome in FINAL_OUTCOMES for record in self.cells)

    def summary(self) -> str:
        tally = self.counts()
        parts = [f"{count} {outcome}" for outcome, count in tally.items() if count]
        return f"grid: {len(self.cells)} cells ({', '.join(parts) or 'empty'})"

    def failure_lines(self) -> List[str]:
        """Human-readable quarantine block for the CLI."""
        lines: List[str] = []
        for record in self.quarantined:
            last = record.attempts[-1] if record.attempts else None
            reason = (last.error.strip().splitlines() or [""])[-1] if last else ""
            lines.append(
                f"  quarantined [{record.outcome}] {record.label} "
                f"({record.executed_attempts} attempt(s)): {reason}"
            )
        return lines

    def to_dict(self) -> Dict:
        return {
            "failure_policy": self.failure_policy,
            "counts": self.counts(),
            "cells": [record.to_dict() for record in self.cells],
        }

    @classmethod
    def from_dict(cls, raw: Dict) -> "GridReport":
        return cls(
            cells=[CellRecord.from_dict(c) for c in raw.get("cells", [])],
            failure_policy=raw.get("failure_policy", "fail_fast"),
        )


# ----------------------------------------------------------------------
# Worker entry point
# ----------------------------------------------------------------------


def _execute_supervised(
    spec: CellSpec, marker: Optional[str], chaos: Optional[ChaosPolicy]
):
    """Run one cell in a worker under supervision.

    Writes a ``<marker>`` file holding this worker's pid before touching
    the cell and removes it afterwards, so the supervisor can (a) name
    the cells that were genuinely in flight when the pool dies and
    (b) kill this exact process when the cell blows its deadline.  The
    pid never flows into the simulation — ``execute_cell`` stays a pure
    function of the spec.
    """
    path = Path(marker) if marker else None
    if path is not None:
        path.write_text(str(os.getpid()), encoding="utf-8")
    try:
        apply_worker_chaos(spec, chaos)
        start = time.perf_counter()
        payload = execute_cell(spec)
        return payload, time.perf_counter() - start
    finally:
        if path is not None:
            try:
                path.unlink()
            except OSError:
                pass


def _format_error(exc: BaseException) -> str:
    """The exception plus its remote worker traceback, if one travelled."""
    if exc.__traceback__ is not None:
        return "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ).strip()
    text = "".join(traceback.format_exception_only(type(exc), exc)).strip()
    cause = exc.__cause__
    if cause is not None and type(cause).__name__ == "_RemoteTraceback":
        text = f"{text}\n{str(cause).strip()}"
    return text


# ----------------------------------------------------------------------
# The supervisor engine
# ----------------------------------------------------------------------


class Supervisor:
    """Drive a set of pending cells to exactly-one-outcome each.

    The runner owns caching and result placement; the supervisor owns
    scheduling, deadlines, retries, and recovery.  ``store`` is called
    at most once per cell, the moment its payload exists — incremental
    by construction, so a failure later in the grid never discards
    finished work.
    """

    def __init__(
        self,
        specs: Sequence[CellSpec],
        keys: Sequence[str],
        records: Sequence[CellRecord],
        policy: SupervisionPolicy,
        chaos: Optional[ChaosPolicy],
        store: Callable[[int, Dict, float], None],
        stats,
    ) -> None:
        self.specs = specs
        self.keys = keys
        self.records = records
        self.policy = policy
        self.chaos = chaos
        self.store = store
        self.stats = stats  # RunnerStats: retries/timeouts/requeues/pool_rebuilds
        self.aborted = False
        # pool-path state (initialised in run_pool)
        self.queue: Deque[int] = deque()
        self.delayed: List[Tuple[float, int]] = []
        self.outstanding: Dict[object, int] = {}
        self.submitted_at: Dict[int, float] = {}
        self.kill_pending: Set[int] = set()
        self.death_rebuilds = 0
        self.workers = 1
        self.pool: Optional[ProcessPoolExecutor] = None
        self.scratch: Optional[Path] = None

    # -- shared bookkeeping ---------------------------------------------

    def _finish_ok(self, index: int, payload: Dict, seconds: float) -> None:
        record = self.records[index]
        record.note("ok", wall_seconds=seconds)
        record.outcome = OUTCOME_SIMULATED
        self.store(index, payload, seconds)

    def _after_failed_attempt(self, index: int, kind: str, error: str) -> bool:
        """Record a failed attempt; True if the cell will be retried."""
        record = self.records[index]
        attempt = record.note(kind, error=error)
        if kind == "timeout":
            self.stats.timeouts += 1
        if record.executed_attempts < self.policy.max_attempts:
            attempt.backoff_seconds = self.policy.backoff_seconds(
                self.keys[index], record.executed_attempts
            )
            self.stats.retries += 1
            return True
        record.outcome = OUTCOME_TIMED_OUT if kind == "timeout" else OUTCOME_FAILED
        if self.policy.failure_policy == "fail_fast":
            self.aborted = True
        return False

    # -- serial path -----------------------------------------------------

    def run_serial(self, pending: Sequence[int]) -> None:
        """In-process execution with retries and failure policy.

        Wall-clock preemption needs a separate worker process, so
        ``timeout_seconds`` is not enforced here (docs/RUNNER.md); the
        lethal chaos kinds are rejected by ``apply_worker_chaos`` for
        the same reason.
        """
        for index in pending:
            record = self.records[index]
            if self.aborted:
                record.outcome = OUTCOME_CANCELLED
                continue
            while True:
                start = time.perf_counter()
                try:
                    apply_worker_chaos(self.specs[index], self.chaos, in_pool_worker=False)
                    payload = execute_cell(self.specs[index])
                    seconds = time.perf_counter() - start
                except Exception as exc:
                    if self._after_failed_attempt(index, "error", _format_error(exc)):
                        time.sleep(record.attempts[-1].backoff_seconds)
                        continue
                    break
                else:
                    self._finish_ok(index, payload, seconds)
                    break

    # -- pool path -------------------------------------------------------

    def run_pool(self, pending: Sequence[int], jobs: int) -> None:
        self.workers = min(jobs, len(pending))
        self.queue = deque(pending)
        self.scratch = Path(tempfile.mkdtemp(prefix="repro-supervise-"))
        self.pool = ProcessPoolExecutor(max_workers=self.workers)
        try:
            while (self.queue or self.delayed or self.outstanding) and not self.aborted:
                self._promote_delayed()
                self._top_up()
                if not self.outstanding:
                    if self.queue:
                        continue
                    if self.delayed:
                        self._sleep_until_next_retry()
                        continue
                    break
                done, _not_done = wait(
                    set(self.outstanding),
                    timeout=self._wait_timeout(),
                    return_when=FIRST_COMPLETED,
                )
                broken = self._drain(done)
                self._enforce_timeouts()
                if broken:
                    self._recover()
            if self.aborted:
                self._cancel_unfinished()
        finally:
            if self.pool is not None:
                self.pool.shutdown(wait=False, cancel_futures=True)
            if self.scratch is not None:
                shutil.rmtree(self.scratch, ignore_errors=True)

    # -- scheduling ------------------------------------------------------

    def _marker_path(self, index: int) -> Path:
        assert self.scratch is not None
        return self.scratch / f"{index:05d}.pid"

    def _promote_delayed(self) -> None:
        now = time.monotonic()
        still: List[Tuple[float, int]] = []
        for ready_at, index in self.delayed:
            if ready_at <= now:
                self.queue.append(index)
            else:
                still.append((ready_at, index))
        self.delayed = still

    def _top_up(self) -> None:
        while self.queue and len(self.outstanding) < self.workers:
            index = self.queue.popleft()
            try:
                future = self.pool.submit(
                    _execute_supervised,
                    self.specs[index],
                    str(self._marker_path(index)),
                    self.chaos,
                )
            except BrokenProcessPool:
                self.queue.appendleft(index)
                self._recover()
                continue
            self.outstanding[future] = index
            self.submitted_at[index] = time.monotonic()

    def _sleep_until_next_retry(self) -> None:
        ready_at = min(ready for ready, _ in self.delayed)
        time.sleep(max(0.0, ready_at - time.monotonic()))

    def _wait_timeout(self) -> Optional[float]:
        """How long wait() may block before the supervisor must look up."""
        candidates: List[float] = []
        now = time.monotonic()
        if self.policy.timeout_seconds is not None:
            deadlines = [
                self.submitted_at[index] + self.policy.timeout_seconds
                for index in self.outstanding.values()
                if index not in self.kill_pending
            ]
            if deadlines:
                candidates.append(min(deadlines) - now)
        if self.kill_pending:
            # A kill is in flight; poll for the pool-break it triggers.
            candidates.append(self.policy.poll_seconds)
        if self.delayed:
            candidates.append(min(ready for ready, _ in self.delayed) - now)
        if not candidates:
            return None
        return max(0.01, min(candidates))

    # -- completion / failure handling ----------------------------------

    def _drain(self, done) -> bool:
        """Store finished cells, route failures; True if the pool broke."""
        broken = False
        for future in done:
            index = self.outstanding.get(future)
            if index is None:
                continue
            exc = future.exception()
            if isinstance(exc, BrokenProcessPool):
                # Leave it in `outstanding`: _recover() attributes all
                # the broken futures together, with the in-flight set.
                broken = True
                continue
            del self.outstanding[future]
            if exc is None:
                payload, seconds = future.result()
                self._finish_ok(index, payload, seconds)
            elif self._after_failed_attempt(index, "error", _format_error(exc)):
                self._schedule_retry(index)
        return broken

    def _schedule_retry(self, index: int) -> None:
        backoff = self.records[index].attempts[-1].backoff_seconds
        self.delayed.append((time.monotonic() + backoff, index))

    def _enforce_timeouts(self) -> None:
        if self.policy.timeout_seconds is None:
            return
        now = time.monotonic()
        for future, index in list(self.outstanding.items()):
            if index in self.kill_pending or future.done():
                continue
            if now - self.submitted_at[index] < self.policy.timeout_seconds:
                continue
            pid = self._read_marker_pid(index)
            if pid is None:
                continue  # not started yet; re-check next tick
            try:
                os.kill(pid, getattr(signal, "SIGKILL", signal.SIGTERM))
            except OSError:
                continue  # already gone; the pool break will attribute it
            self.kill_pending.add(index)

    def _read_marker_pid(self, index: int) -> Optional[int]:
        try:
            return int(self._marker_path(index).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    # -- pool-death recovery --------------------------------------------

    def _recover(self) -> None:
        """Rebuild a broken pool; re-queue and attribute the in-flight cells.

        Deliberate deaths (a timeout kill) charge the timed-out cell an
        attempt.  Spontaneous deaths (OOM kill, ``os._exit``, a crashed
        interpreter) are attributed to the cells whose pid markers were
        live — the cells actually running — and bounded by the policy's
        pool-rebuild budget rather than the cells' retry budgets,
        because any one of several in-flight cells may be the poison.
        """
        deliberate = bool(self.kill_pending)
        in_flight: List[int] = []
        queued_back: List[int] = []
        for index in self.outstanding.values():
            if index in self.kill_pending:
                continue
            if self._marker_path(index).exists():
                in_flight.append(index)
            else:
                queued_back.append(index)

        for index in sorted(self.kill_pending):
            error = (
                f"cell exceeded its {self.policy.timeout_seconds:g}s timeout; "
                f"worker killed by the supervisor"
            )
            if self._after_failed_attempt(index, "timeout", error):
                self._schedule_retry(index)

        labels = ", ".join(self.specs[i].label for i in sorted(in_flight))
        blame = (
            "worker pool died (BrokenProcessPoolError) while these cells "
            f"were in flight: {labels or '(none had started)'}"
        )
        over_budget = (not deliberate) and (
            self.death_rebuilds >= self.policy.max_pool_rebuilds
        )
        for index in sorted(in_flight):
            record = self.records[index]
            record.note("pool-death", error=blame)
            if over_budget:
                record.outcome = OUTCOME_FAILED
                if self.policy.failure_policy == "fail_fast":
                    self.aborted = True
            else:
                self.queue.append(index)
                self.stats.requeues += 1
        for index in sorted(queued_back):
            self.queue.append(index)
            self.stats.requeues += 1

        if not deliberate:
            self.death_rebuilds += 1
        self.stats.pool_rebuilds += 1
        self.kill_pending.clear()
        self.outstanding.clear()
        for path in self.scratch.glob("*.pid"):
            try:
                path.unlink()
            except OSError:
                pass
        self.pool.shutdown(wait=False)
        self.pool = ProcessPoolExecutor(max_workers=self.workers)

    def _cancel_unfinished(self) -> None:
        unfinished = (
            list(self.queue)
            + [index for _, index in self.delayed]
            + list(self.outstanding.values())
            + list(self.kill_pending)
        )
        for index in unfinished:
            record = self.records[index]
            if not record.outcome:
                record.outcome = OUTCOME_CANCELLED
