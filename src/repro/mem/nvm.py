"""DDR-attached PCM device model: timing and backing store.

Two concerns live here, deliberately separated:

* :class:`NVMTiming` / :class:`NVMDevice` — the *performance* model.
  Per-bank open-row tracking with the paper's open-adaptive policy and
  Table III latencies (60 ns array read, 150 ns array write, tRCD 55 ns,
  tCL 12.5 ns, tBURST 5 ns).  Each access returns a latency in
  nanoseconds and bumps read/write counters — those counters are exactly
  what Figures 9/10/13/14 plot.

* :class:`NVMStore` — the *functional* backing store.  A sparse dict of
  64-byte lines holding whatever ciphertext the controller writes, so
  integration tests can pull the DIMM out (read raw lines), verify that
  file data at rest never appears in plaintext, and exercise crash
  recovery against real residue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .address import LINE_SIZE, AddressMap, line_address
from .stats import StatCounters

__all__ = ["NVMTiming", "NVMDevice", "NVMStore"]


@dataclass(frozen=True)
class NVMTiming:
    """Latency constants, in nanoseconds (Table III, PCM row)."""

    read_ns: float = 60.0  # PCM array read (activate a closed row)
    write_ns: float = 150.0  # PCM array write (restore a dirty row)
    t_rcd_ns: float = 55.0
    t_cl_ns: float = 12.5
    t_burst_ns: float = 5.0

    @property
    def row_hit_ns(self) -> float:
        """Latency to read/write a line already in the row buffer."""
        return self.t_cl_ns + self.t_burst_ns

    @property
    def row_miss_read_ns(self) -> float:
        """Closed-row read: array sensing + column access."""
        return self.read_ns + self.t_cl_ns + self.t_burst_ns

    @property
    def dirty_evict_ns(self) -> float:
        """Writing a dirty row buffer back to the PCM array."""
        return self.write_ns


@dataclass
class _BankState:
    open_row: Optional[int] = None
    dirty: bool = False
    consecutive_misses: int = 0


class NVMDevice:
    """Per-bank row-buffer timing model with an open-adaptive page policy.

    Open-adaptive: rows stay open after an access (open-page) but a bank
    that keeps missing closes its row eagerly so the next activate is not
    serialised behind a precharge.  The adaptation threshold is small and
    fixed; the policy detail matters far less here than the stable
    row-hit/row-miss latency split.
    """

    ADAPT_THRESHOLD = 4

    def __init__(
        self,
        address_map: Optional[AddressMap] = None,
        timing: Optional[NVMTiming] = None,
        stats: Optional[StatCounters] = None,
        track_wear: bool = True,
    ) -> None:
        self.address_map = address_map or AddressMap()
        self.timing = timing or NVMTiming()
        self.stats = stats or StatCounters("nvm")
        self._banks: Dict[tuple, _BankState] = {}
        # PCM endurance bookkeeping (§VI touches write endurance twice:
        # secure deletion and counter overflow).  Per-line write counts
        # let ablations and users audit wear hot spots.
        self._track_wear = track_wear
        self._wear: Dict[int, int] = {}

    def _bank(self, key: tuple) -> _BankState:
        state = self._banks.get(key)
        if state is None:
            state = _BankState()
            self._banks[key] = state
        return state

    def _access(self, addr: int, is_write: bool) -> float:
        coord = self.address_map.decompose(addr)
        bank = self._bank(coord.bank_key)
        timing = self.timing
        latency = 0.0
        if bank.open_row == coord.row:
            bank.consecutive_misses = 0
            latency += timing.row_hit_ns
            self.stats.add("row_hits")
        else:
            bank.consecutive_misses += 1
            self.stats.add("row_misses")
            if bank.open_row is not None and bank.dirty:
                # Dirty row restore before the new activate.
                latency += timing.dirty_evict_ns
                self.stats.add("dirty_row_writebacks")
            latency += timing.row_miss_read_ns
            bank.open_row = coord.row
            bank.dirty = False
            if bank.consecutive_misses >= self.ADAPT_THRESHOLD:
                # Adaptive close: pay the restore now, skip it next miss.
                if bank.dirty:
                    latency += timing.dirty_evict_ns
                bank.open_row = None
                bank.consecutive_misses = 0
                self.stats.add("adaptive_closes")
        if is_write:
            bank.dirty = bank.open_row is not None
        return latency

    def read(self, addr: int) -> float:
        """Read one line; returns latency in ns."""
        self.stats.add("reads")
        return self._access(addr, is_write=False)

    def write(self, addr: int, persist: bool = False) -> float:
        """Write one line; ``persist`` forces the PCM array write now.

        Persist-path writes (clwb/clflush + fence) cannot linger in the
        row buffer: durability requires the cell write, which is why
        write-intensive persistent workloads hurt most in the paper.
        """
        self.stats.add("writes")
        if self._track_wear:
            line = line_address(addr)
            self._wear[line] = self._wear.get(line, 0) + 1
        latency = self._access(addr, is_write=True)
        if persist:
            latency += self.timing.dirty_evict_ns
            coord = self.address_map.decompose(addr)
            self._bank(coord.bank_key).dirty = False
            self.stats.add("persist_writes")
        return latency

    @property
    def read_count(self) -> int:
        return self.stats.get("reads")

    @property
    def write_count(self) -> int:
        return self.stats.get("writes")

    # -- endurance auditing ------------------------------------------------

    def wear_of(self, addr: int) -> int:
        """Array-write count of one line (0 if wear tracking is off)."""
        return self._wear.get(line_address(addr), 0)

    @property
    def max_wear(self) -> int:
        """The hottest line's write count — the endurance-limiting spot."""
        return max(self._wear.values(), default=0)

    def wear_hotspots(self, top: int = 10) -> "list[tuple[int, int]]":
        """The ``top`` most-written lines as (addr, writes), hottest first."""
        return sorted(self._wear.items(), key=lambda kv: -kv[1])[:top]


class NVMStore:
    """Sparse functional backing store, 64-byte line granularity.

    ``read_line`` of a never-written line returns an "erased" pattern —
    deterministic so functional decryption of uninitialised memory is
    reproducible in tests.

    Alongside each data line the store can hold the line's 8-byte
    plaintext ECC (Osiris §II-D: ECC computed over plaintext, written
    with the ciphertext).  The ECC side-table is what post-crash counter
    recovery trial-decrypts against, and ``flip_bit`` is the
    fault-injection hook that corrupts ciphertext in place the way a
    failing PCM cell would.
    """

    ERASED = bytes(LINE_SIZE)

    def __init__(self) -> None:
        self._lines: Dict[int, bytes] = {}
        self._ecc: Dict[int, bytes] = {}

    def write_line(self, addr: int, data: bytes) -> None:
        if len(data) != LINE_SIZE:
            raise ValueError(f"line must be {LINE_SIZE} bytes, got {len(data)}")
        self._lines[line_address(addr)] = bytes(data)

    def read_line(self, addr: int) -> bytes:
        return self._lines.get(line_address(addr), self.ERASED)

    def write_ecc(self, addr: int, ecc: Optional[bytes]) -> None:
        """Store (or with ``None``, erase) a line's plaintext ECC byte-per-word."""
        line = line_address(addr)
        if ecc is None:
            self._ecc.pop(line, None)
            return
        if len(ecc) != LINE_SIZE // 8:
            raise ValueError(f"ecc must be {LINE_SIZE // 8} bytes, got {len(ecc)}")
        self._ecc[line] = bytes(ecc)

    def read_ecc(self, addr: int) -> Optional[bytes]:
        return self._ecc.get(line_address(addr))

    def scan_ecc(self) -> Dict[int, bytes]:
        """Every line that carries ECC — the recovery sweep's worklist."""
        return dict(self._ecc)

    def flip_bit(self, addr: int, bit: int) -> None:
        """Fault injection: flip one stored ciphertext bit in place."""
        if not 0 <= bit < LINE_SIZE * 8:
            raise ValueError(f"bit index {bit} out of line range")
        line = line_address(addr)
        data = bytearray(self._lines.get(line, self.ERASED))
        data[bit // 8] ^= 1 << (bit % 8)
        self._lines[line] = bytes(data)

    def __contains__(self, addr: int) -> bool:
        return line_address(addr) in self._lines

    def __len__(self) -> int:
        return len(self._lines)

    def scan(self) -> Dict[int, bytes]:
        """Attacker's view: every line currently stored on the DIMM."""
        return dict(self._lines)
