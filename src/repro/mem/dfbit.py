"""DF-bit (DAX-File bit) physical-address tagging.

FsEncr's recognition mechanism (§III-C): one spare bit of the physical
address — bit 51 of a 52-bit address space, matching the paper's
``(1UL << 51) | pfn`` kernel snippet — marks a page as belonging to a
DAX file.  The kernel sets it in the PTE during the DAX page fault; the
MMU propagates it through translation; caches carry it as part of the
tag; the memory controller finally consumes it to route the request
through the file-encryption engine.

Using address bits this way mirrors shipping hardware (AMD SEV's C-bit,
Intel MKTME's KeyID bits), which is the paper's feasibility argument.

This lives in ``repro.mem`` because it is address arithmetic every layer
shares; ``repro.core`` re-exports it as part of the public FsEncr API.
"""

from __future__ import annotations

__all__ = [
    "DF_BIT_POSITION",
    "DF_MASK",
    "PHYSICAL_ADDRESS_BITS",
    "set_df",
    "clear_df",
    "has_df",
    "strip",
]

PHYSICAL_ADDRESS_BITS = 52  # Intel IA-32e maximum (§III-C)
DF_BIT_POSITION = 51
DF_MASK = 1 << DF_BIT_POSITION


def set_df(addr: int) -> int:
    """Tag a physical address as a DAX-file access."""
    _check(addr)
    return addr | DF_MASK


def clear_df(addr: int) -> int:
    """Remove the DF tag (alias of :func:`strip`, reads better in pairs)."""
    _check(addr)
    return addr & ~DF_MASK


def has_df(addr: int) -> bool:
    """True when the address carries the DAX-file tag."""
    _check(addr)
    return bool(addr & DF_MASK)


def strip(addr: int) -> int:
    """The raw device address: DF removed, everything else untouched."""
    _check(addr)
    return addr & ~DF_MASK


def _check(addr: int) -> None:
    if addr < 0 or addr >= (1 << PHYSICAL_ADDRESS_BITS):
        raise ValueError(
            f"address {addr:#x} outside the {PHYSICAL_ADDRESS_BITS}-bit physical space"
        )
