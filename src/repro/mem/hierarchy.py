"""Three-level data-cache hierarchy in front of the memory controller.

Geometry and latencies follow Table III: private 32 KB 8-way L1
(2 cycles), private 512 KB 8-way L2 (20 cycles), shared 4 MB 64-way L3
(32 cycles), all with 64 B blocks.  The simulated CPU runs at 1 GHz so a
cycle is exactly one nanosecond — the code accounts in ns throughout.

The hierarchy is inclusive-enough for a trace model: a miss allocates in
every level on the way back, a dirty eviction propagates downward, and a
``clwb``/``clflush`` walks all three levels.  Coherence between cores is
not modelled (the paper's overheads are memory-side, not coherence-side);
multi-threaded workloads interleave their traces onto one shared
hierarchy, which is how sharing pressure shows up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .cache import CacheConfig, SetAssociativeCache
from .stats import StatsRegistry

__all__ = ["HierarchyConfig", "AccessOutcome", "CacheHierarchy"]


@dataclass(frozen=True)
class HierarchyConfig:
    """Per-level cache configs; defaults mirror Table III."""

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="l1", size_bytes=32 * 1024, ways=8, hit_latency=2.0
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="l2", size_bytes=512 * 1024, ways=8, hit_latency=20.0
        )
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="l3", size_bytes=4 * 1024 * 1024, ways=64, hit_latency=32.0
        )
    )


class AccessOutcome:
    """Result of pushing one CPU access through the hierarchy.

    ``miss_addr`` is set when the access fell through to memory, and
    ``writeback_addrs`` lists dirty L3 victims the controller must write
    back (each one a memory write the paper's figures count).

    One outcome is minted per line access, so this is a ``__slots__``
    class rather than a dataclass.
    """

    __slots__ = ("latency_ns", "hit_level", "miss_addr", "writeback_addrs")

    def __init__(
        self,
        latency_ns: float,
        hit_level: Optional[str],
        miss_addr: Optional[int],
        writeback_addrs: "tuple[int, ...]" = (),
    ) -> None:
        self.latency_ns = latency_ns
        self.hit_level = hit_level
        self.miss_addr = miss_addr
        self.writeback_addrs = writeback_addrs


class CacheHierarchy:
    """L1 -> L2 -> L3 with allocate-on-miss and downward dirty propagation."""

    def __init__(
        self,
        config: Optional[HierarchyConfig] = None,
        registry: Optional[StatsRegistry] = None,
    ) -> None:
        self.config = config or HierarchyConfig()
        registry = registry or StatsRegistry()
        self.l1 = SetAssociativeCache(self.config.l1, registry.create("l1"))
        self.l2 = SetAssociativeCache(self.config.l2, registry.create("l2"))
        self.l3 = SetAssociativeCache(self.config.l3, registry.create("l3"))
        self._levels = [self.l1, self.l2, self.l3]
        # id() -> position, so the walk never does a list.index() scan.
        self._level_index = {id(cache): i for i, cache in enumerate(self._levels)}

    def access(self, addr: int, is_write: bool) -> AccessOutcome:
        """Walk the hierarchy for one line access.

        Returns where the line hit (if anywhere), the accumulated lookup
        latency, and the memory traffic implied by allocations.
        """
        latency = 0.0
        writebacks: List[int] = []
        for index, cache in enumerate(self._levels):
            latency += cache.config.hit_latency
            hit, _ = self._probe(cache, addr, is_write)
            if hit:
                # Allocate in the upper levels the line just bypassed.
                for upper in self._levels[:index]:
                    eviction = upper.fill(addr, dirty=False)
                    if eviction is not None and eviction.dirty:
                        self._push_down(upper, eviction.addr)
                return AccessOutcome(
                    latency_ns=latency,
                    hit_level=cache.config.name,
                    miss_addr=None,
                    writeback_addrs=tuple(writebacks),
                )
        # Full miss: allocate everywhere, collecting L3 dirty victims.
        for cache in self._levels:
            eviction = cache.fill(addr, dirty=is_write and cache is self.l1)
            if eviction is not None and eviction.dirty:
                if cache is self.l3:
                    writebacks.append(eviction.addr)
                else:
                    self._push_down(cache, eviction.addr)
        return AccessOutcome(
            latency_ns=latency,
            hit_level=None,
            miss_addr=addr,
            writeback_addrs=tuple(writebacks),
        )

    def _probe(self, cache: SetAssociativeCache, addr: int, is_write: bool):
        """Probe one level without allocating on miss."""
        line_present = cache.lookup(addr)
        if line_present:
            cache.stats.add("hits")
            if is_write:
                cache.fill(addr, dirty=True)
        else:
            cache.stats.add("misses")
        return line_present, None

    def _push_down(self, cache: SetAssociativeCache, addr: int) -> None:
        """Install a dirty victim in the next level down (write-back)."""
        next_index = self._level_index[id(cache)] + 1
        for lower in self._levels[next_index:]:
            eviction = lower.fill(addr, dirty=True)
            if eviction is None or not eviction.dirty:
                return
            addr = eviction.addr
        # Fell out of L3 — the caller's next access() call will not see
        # this; the machine model drains L3 victims via access outcomes,
        # and victims generated here are rare enough to fold into them.

    def flush_line(self, addr: int, invalidate: bool) -> bool:
        """clwb (invalidate=False) or clflush (True) across all levels.

        Returns True if any level held the line dirty — meaning the
        controller must issue a persist write to the NVM.
        """
        was_dirty = False
        for cache in self._levels:
            if invalidate:
                eviction = cache.invalidate_line(addr)
                if eviction is not None and eviction.dirty:
                    was_dirty = True
            else:
                if cache.writeback_line(addr):
                    was_dirty = True
        return was_dirty

    def drain_dirty(self) -> List[int]:
        """Crash/shutdown: collect every dirty line across the hierarchy."""
        dirty: List[int] = []
        for cache in self._levels:
            for eviction in cache.drain():
                dirty.append(eviction.addr)
        return sorted(set(dirty))
