"""Physical address arithmetic and the RoRaBaChCo DRAM/PCM address map.

Table III fixes the paper's memory organisation: 2 ranks per channel,
8 banks per rank, 1 KB row buffer, RoRaBaChCo interleaving (from MSB to
LSB: Row | Rank | Bank | Channel | Column).  This module turns a flat
physical line address into (channel, rank, bank, row, column) so the
device model can track per-bank row-buffer state.

It also centralises the line/page arithmetic (64 B lines, 4 KB pages)
used everywhere else, so off-by-one page math lives in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LINE_SIZE",
    "LINE_SHIFT",
    "LINE_MASK",
    "PAGE_SIZE",
    "PAGE_SHIFT",
    "PAGE_MASK",
    "LINES_PER_PAGE",
    "line_address",
    "page_number",
    "page_offset_lines",
    "AddressMap",
    "BankAddress",
]

LINE_SIZE = 64
PAGE_SIZE = 4096
LINES_PER_PAGE = PAGE_SIZE // LINE_SIZE

# Precomputed shift/mask forms of the two geometries.  The hot paths
# (MMU translate, cache walk, line iteration) use these instead of
# re-deriving ``// LINE_SIZE`` / ``% PAGE_SIZE`` arithmetic per access.
LINE_SHIFT = LINE_SIZE.bit_length() - 1
LINE_MASK = LINE_SIZE - 1
PAGE_SHIFT = PAGE_SIZE.bit_length() - 1
PAGE_MASK = PAGE_SIZE - 1


def line_address(addr: int) -> int:
    """Align an address down to its cache-line base."""
    return addr & ~LINE_MASK


def page_number(addr: int) -> int:
    """Physical page number containing ``addr``."""
    return addr >> PAGE_SHIFT


def page_offset_lines(addr: int) -> int:
    """Index (0..63) of the cache line inside its 4 KB page."""
    return (addr & PAGE_MASK) >> LINE_SHIFT


@dataclass(frozen=True)
class BankAddress:
    """A decomposed device coordinate for one cache-line access."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int

    @property
    def bank_key(self) -> tuple:
        """Hashable identity of the physical bank (channel, rank, bank)."""
        return (self.channel, self.rank, self.bank)


class AddressMap:
    """RoRaBaChCo interleaving of line addresses onto device coordinates.

    Field widths are derived from the configuration rather than
    hard-coded, so the sensitivity suite can sweep channel/bank counts.
    All widths must be powers of two (true of every real DIMM geometry).
    """

    def __init__(
        self,
        channels: int = 1,
        ranks_per_channel: int = 2,
        banks_per_rank: int = 8,
        row_buffer_bytes: int = 1024,
        line_size: int = LINE_SIZE,
    ) -> None:
        for name, value in (
            ("channels", channels),
            ("ranks_per_channel", ranks_per_channel),
            ("banks_per_rank", banks_per_rank),
            ("row_buffer_bytes", row_buffer_bytes),
            ("line_size", line_size),
        ):
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{name} must be a positive power of two, got {value}")
        if row_buffer_bytes < line_size:
            raise ValueError("row buffer must hold at least one line")
        self.channels = channels
        self.ranks_per_channel = ranks_per_channel
        self.banks_per_rank = banks_per_rank
        self.row_buffer_bytes = row_buffer_bytes
        self.line_size = line_size
        self.columns_per_row = row_buffer_bytes // line_size

    def decompose(self, addr: int) -> BankAddress:
        """Map a byte address to its (channel, rank, bank, row, column)."""
        if addr < 0:
            raise ValueError(f"negative address: {addr:#x}")
        line = addr // self.line_size
        column = line % self.columns_per_row
        line //= self.columns_per_row
        channel = line % self.channels
        line //= self.channels
        bank = line % self.banks_per_rank
        line //= self.banks_per_rank
        rank = line % self.ranks_per_channel
        line //= self.ranks_per_channel
        return BankAddress(channel=channel, rank=rank, bank=bank, row=line, column=column)

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank
