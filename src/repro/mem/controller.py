"""Memory-controller interface and the plain (no-encryption) controller.

Every scheme the paper compares is, from the machine model's point of
view, just a memory controller with a different ``access`` cost:

* :class:`PlainMemoryController` (here) — raw ext4-dax with *no*
  encryption at all; used by the software-encryption study (Figure 3)
  as the thing eCryptfs is layered over.
* ``BaselineSecureController`` (``repro.secmem``) — counter-mode memory
  encryption + Bonsai Merkle tree; the paper's "Baseline Security".
* ``FsEncrController`` (``repro.core``) — the contribution: the baseline
  plus per-file encryption (FECB/OTT/dual-OTP).

They all implement the small :class:`MemoryControllerBase` surface so the
machine model and workloads are scheme-agnostic.
"""

from __future__ import annotations

from typing import Optional

from .nvm import NVMDevice, NVMStore
from .stats import StatCounters

__all__ = [
    "MemoryRequest",
    "MemoryControllerBase",
    "PlainMemoryController",
    "ServiceQueue",
    "MemoryControllerQueue",
]


class ServiceQueue:
    """A single-server FIFO contention point in virtual time.

    The concurrent-traffic service model (:mod:`repro.sim.service`)
    shares one of these per contended hardware resource across every
    stream's machine.  ``serve`` is the whole protocol: a request
    arriving at ``arrival_ns`` waits until the server frees up, then
    holds it for ``service_ns``.  The returned wait is the queueing
    delay the caller charges to its own clock — by construction a
    stream can never queue behind its *own* requests (each access's
    busy window ends at or before the clock value the stream leaves the
    access with), so a single-stream run takes zero delay everywhere
    and stays bit-identical to the seed path.

    Waits and busy time are accumulated as exact floats on the object
    (latencies are legitimately fractional); the registered
    :class:`StatCounters` bundle carries the integer event counts.
    """

    def __init__(self, name: str = "queue", stats: Optional[StatCounters] = None) -> None:
        # Standalone fallback; the service model injects a registered bundle.
        # repro-lint: disable=stats-registered
        self.stats = stats or StatCounters(name)
        self.busy_until_ns = 0.0
        self.total_wait_ns = 0.0
        self.total_service_ns = 0.0
        self.max_wait_ns = 0.0

    def serve(self, arrival_ns: float, service_ns: float) -> float:
        """Admit one request; returns the queueing delay in ns."""
        if not arrival_ns >= 0.0 or not service_ns >= 0.0:
            raise ValueError(
                f"arrival and service must be non-negative, got "
                f"({arrival_ns!r}, {service_ns!r})"
            )
        wait = self.busy_until_ns - arrival_ns
        if wait <= 0.0:
            wait = 0.0
        else:
            self.stats.add("contended")
        self.busy_until_ns = arrival_ns + wait + service_ns
        self.stats.add("requests")
        self.total_wait_ns += wait
        self.total_service_ns += service_ns
        if wait > self.max_wait_ns:
            self.max_wait_ns = wait
        return wait

    def summary(self) -> dict:
        """JSON-safe queue-delay stats for result records."""
        requests = self.stats.get("requests")
        return {
            "requests": requests,
            "contended": self.stats.get("contended"),
            "total_wait_ns": self.total_wait_ns,
            "mean_wait_ns": self.total_wait_ns / requests if requests else 0.0,
            "max_wait_ns": self.max_wait_ns,
            "busy_ns": self.total_service_ns,
        }


class MemoryControllerQueue(ServiceQueue):
    """The memory-controller request queue — the primary contention
    point between concurrent streams.  Every controller-side access a
    stream's machine issues (miss fills, write-backs, persist-path
    writes) holds this queue for exactly the latency the machine
    charges for it."""

    def __init__(self, stats: Optional[StatCounters] = None) -> None:
        super().__init__(name="mc_queue", stats=stats)


class MemoryRequest:
    """One line-granularity request arriving at the controller.

    ``addr`` is the *full* physical address including the DF-bit (bit 51
    by default — see ``repro.mem.dfbit``); secure controllers strip and
    interpret it.  ``persist`` marks persist-path writes (clwb+fence).
    ``data`` optionally carries the 64 B plaintext line for functional
    runs — controllers running with real crypto seal it during the write
    so the counter used for the pad is exactly the counter a later read
    will see.

    A ``__slots__`` class rather than a dataclass: one of these is built
    for every memory-side access the machine model issues, so per-object
    construction cost and footprint are on the simulator's hot path.
    """

    __slots__ = ("addr", "is_write", "persist", "data")

    def __init__(
        self,
        addr: int,
        is_write: bool,
        persist: bool = False,
        data: Optional[bytes] = None,
    ) -> None:
        if addr < 0:
            raise ValueError(f"negative physical address {addr:#x}")
        if not is_write:
            if persist:
                raise ValueError("persist only applies to writes")
            if data is not None:
                raise ValueError("data payload only applies to writes")
        self.addr = addr
        self.is_write = is_write
        self.persist = persist
        self.data = data

    def __repr__(self) -> str:
        return (
            f"MemoryRequest(addr={self.addr:#x}, is_write={self.is_write}, "
            f"persist={self.persist}, data={'<64B>' if self.data is not None else None})"
        )


class MemoryControllerBase:
    """Common plumbing: the NVM device, functional store, and counters."""

    def __init__(
        self,
        device: Optional[NVMDevice] = None,
        store: Optional[NVMStore] = None,
        stats: Optional[StatCounters] = None,
    ) -> None:
        # Standalone fallback; Machine injects a device with a registered bundle.
        # repro-lint: disable=stats-registered
        self.device = device or NVMDevice()
        self.store = store or NVMStore()
        self.stats = stats or StatCounters(self.__class__.__name__.lower())

    def access(self, request: MemoryRequest) -> float:
        """Serve one request; returns total latency in nanoseconds."""
        raise NotImplementedError

    # Functional path — optional; controllers that encrypt override these.

    def write_data(self, addr: int, plaintext_line: bytes) -> None:
        """Functionally store one 64 B line (plaintext view from the CPU).

        Architectural state only — the attacker model and golden-state
        replay install lines directly, deliberately bypassing the WPQ
        timing model (there is no crash window to model for them).
        """
        self.store.write_line(addr, plaintext_line)  # repro-lint: disable=persist-reaches-wpq (functional path)

    def read_data(self, addr: int) -> bytes:
        """Functionally load one 64 B line back to the CPU."""
        return self.store.read_line(addr)


class PlainMemoryController(MemoryControllerBase):
    """No encryption, no integrity: each request is one device access."""

    def access(self, request: MemoryRequest) -> float:
        if request.is_write:
            self.stats.add("write_requests")
            if request.data is not None:
                # Functional payload lands as-is: no encryption here.
                self.store.write_line(request.addr, request.data)
            return self.device.write(request.addr, persist=request.persist)
        self.stats.add("read_requests")
        return self.device.read(request.addr)
