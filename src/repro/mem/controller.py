"""Memory-controller interface and the plain (no-encryption) controller.

Every scheme the paper compares is, from the machine model's point of
view, just a memory controller with a different ``access`` cost:

* :class:`PlainMemoryController` (here) — raw ext4-dax with *no*
  encryption at all; used by the software-encryption study (Figure 3)
  as the thing eCryptfs is layered over.
* ``BaselineSecureController`` (``repro.secmem``) — counter-mode memory
  encryption + Bonsai Merkle tree; the paper's "Baseline Security".
* ``FsEncrController`` (``repro.core``) — the contribution: the baseline
  plus per-file encryption (FECB/OTT/dual-OTP).

They all implement the small :class:`MemoryControllerBase` surface so the
machine model and workloads are scheme-agnostic.
"""

from __future__ import annotations

from typing import Optional

from .nvm import NVMDevice, NVMStore
from .stats import StatCounters

__all__ = ["MemoryRequest", "MemoryControllerBase", "PlainMemoryController"]


class MemoryRequest:
    """One line-granularity request arriving at the controller.

    ``addr`` is the *full* physical address including the DF-bit (bit 51
    by default — see ``repro.mem.dfbit``); secure controllers strip and
    interpret it.  ``persist`` marks persist-path writes (clwb+fence).
    ``data`` optionally carries the 64 B plaintext line for functional
    runs — controllers running with real crypto seal it during the write
    so the counter used for the pad is exactly the counter a later read
    will see.

    A ``__slots__`` class rather than a dataclass: one of these is built
    for every memory-side access the machine model issues, so per-object
    construction cost and footprint are on the simulator's hot path.
    """

    __slots__ = ("addr", "is_write", "persist", "data")

    def __init__(
        self,
        addr: int,
        is_write: bool,
        persist: bool = False,
        data: Optional[bytes] = None,
    ) -> None:
        if addr < 0:
            raise ValueError(f"negative physical address {addr:#x}")
        if not is_write:
            if persist:
                raise ValueError("persist only applies to writes")
            if data is not None:
                raise ValueError("data payload only applies to writes")
        self.addr = addr
        self.is_write = is_write
        self.persist = persist
        self.data = data

    def __repr__(self) -> str:
        return (
            f"MemoryRequest(addr={self.addr:#x}, is_write={self.is_write}, "
            f"persist={self.persist}, data={'<64B>' if self.data is not None else None})"
        )


class MemoryControllerBase:
    """Common plumbing: the NVM device, functional store, and counters."""

    def __init__(
        self,
        device: Optional[NVMDevice] = None,
        store: Optional[NVMStore] = None,
        stats: Optional[StatCounters] = None,
    ) -> None:
        # Standalone fallback; Machine injects a device with a registered bundle.
        # repro-lint: disable=stats-registered
        self.device = device or NVMDevice()
        self.store = store or NVMStore()
        self.stats = stats or StatCounters(self.__class__.__name__.lower())

    def access(self, request: MemoryRequest) -> float:
        """Serve one request; returns total latency in nanoseconds."""
        raise NotImplementedError

    # Functional path — optional; controllers that encrypt override these.

    def write_data(self, addr: int, plaintext_line: bytes) -> None:
        """Functionally store one 64 B line (plaintext view from the CPU).

        Architectural state only — the attacker model and golden-state
        replay install lines directly, deliberately bypassing the WPQ
        timing model (there is no crash window to model for them).
        """
        self.store.write_line(addr, plaintext_line)  # repro-lint: disable=persist-reaches-wpq (functional path)

    def read_data(self, addr: int) -> bytes:
        """Functionally load one 64 B line back to the CPU."""
        return self.store.read_line(addr)


class PlainMemoryController(MemoryControllerBase):
    """No encryption, no integrity: each request is one device access."""

    def access(self, request: MemoryRequest) -> float:
        if request.is_write:
            self.stats.add("write_requests")
            if request.data is not None:
                # Functional payload lands as-is: no encryption here.
                self.store.write_line(request.addr, request.data)
            return self.device.write(request.addr, persist=request.persist)
        self.stats.add("read_requests")
        return self.device.read(request.addr)
