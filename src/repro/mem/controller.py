"""Memory-controller interface and the plain (no-encryption) controller.

Every scheme the paper compares is, from the machine model's point of
view, just a memory controller with a different ``access`` cost:

* :class:`PlainMemoryController` (here) — raw ext4-dax with *no*
  encryption at all; used by the software-encryption study (Figure 3)
  as the thing eCryptfs is layered over.
* ``BaselineSecureController`` (``repro.secmem``) — counter-mode memory
  encryption + Bonsai Merkle tree; the paper's "Baseline Security".
* ``FsEncrController`` (``repro.core``) — the contribution: the baseline
  plus per-file encryption (FECB/OTT/dual-OTP).

They all implement the small :class:`MemoryControllerBase` surface so the
machine model and workloads are scheme-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .nvm import NVMDevice, NVMStore
from .stats import StatCounters

__all__ = ["MemoryRequest", "MemoryControllerBase", "PlainMemoryController"]


@dataclass(frozen=True)
class MemoryRequest:
    """One line-granularity request arriving at the controller.

    ``addr`` is the *full* physical address including the DF-bit (bit 51
    by default — see ``repro.mem.dfbit``); secure controllers strip and
    interpret it.  ``persist`` marks persist-path writes (clwb+fence).
    ``data`` optionally carries the 64 B plaintext line for functional
    runs — controllers running with real crypto seal it during the write
    so the counter used for the pad is exactly the counter a later read
    will see.
    """

    addr: int
    is_write: bool
    persist: bool = False
    data: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise ValueError(f"negative physical address {self.addr:#x}")
        if self.persist and not self.is_write:
            raise ValueError("persist only applies to writes")
        if self.data is not None and not self.is_write:
            raise ValueError("data payload only applies to writes")


class MemoryControllerBase:
    """Common plumbing: the NVM device, functional store, and counters."""

    def __init__(
        self,
        device: Optional[NVMDevice] = None,
        store: Optional[NVMStore] = None,
        stats: Optional[StatCounters] = None,
    ) -> None:
        # Standalone fallback; Machine injects a device with a registered bundle.
        # repro-lint: disable=stats-registered
        self.device = device or NVMDevice()
        self.store = store or NVMStore()
        self.stats = stats or StatCounters(self.__class__.__name__.lower())

    def access(self, request: MemoryRequest) -> float:
        """Serve one request; returns total latency in nanoseconds."""
        raise NotImplementedError

    # Functional path — optional; controllers that encrypt override these.

    def write_data(self, addr: int, plaintext_line: bytes) -> None:
        """Functionally store one 64 B line (plaintext view from the CPU)."""
        self.store.write_line(addr, plaintext_line)

    def read_data(self, addr: int) -> bytes:
        """Functionally load one 64 B line back to the CPU."""
        return self.store.read_line(addr)


class PlainMemoryController(MemoryControllerBase):
    """No encryption, no integrity: each request is one device access."""

    def access(self, request: MemoryRequest) -> float:
        if request.is_write:
            self.stats.add("write_requests")
            if request.data is not None:
                # Functional payload lands as-is: no encryption here.
                self.store.write_line(request.addr, request.data)
            return self.device.write(request.addr, persist=request.persist)
        self.stats.add("read_requests")
        return self.device.read(request.addr)
