"""Statistics plumbing shared by every level of the memory model.

Every component (caches, NVM device, encryption engines, Merkle tree,
OTT, kernel) owns a :class:`StatCounters` bundle.  The machine model
aggregates them into one flat dictionary at the end of a run; the
benchmark harness then normalises against the baseline run exactly the
way the paper's figures do ("Normalized to the baseline").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

__all__ = ["StatCounters", "StatsRegistry"]


@dataclass
class StatCounters:
    """A named bag of monotonically increasing counters."""

    name: str
    counters: Counter = field(default_factory=Counter)

    def add(self, key: str, amount: int = 1) -> None:
        self.counters[key] += amount

    def get(self, key: str) -> int:
        return self.counters.get(key, 0)

    def stat(self, key: str) -> int:
        """Strict lookup: raises on a counter this bundle never declared.

        Use from benchmarks and analysis code, where a silently-zero
        read of a renamed counter would fabricate a result; ``get``
        remains for hot-path model code probing optional counters.
        """
        # Counter.__getitem__ returns 0 for absent keys, so membership
        # must be checked explicitly for the lookup to be strict.
        if key not in self.counters:
            known = ", ".join(sorted(self.counters)) or "<none>"
            raise KeyError(
                f"unknown stat {key!r} in bundle {self.name!r} (known: {known})"
            )
        return self.counters[key]

    def merge(self, other: "StatCounters") -> None:
        self.counters.update(other.counters)

    def reset(self) -> None:
        self.counters.clear()

    def as_dict(self, prefix: str = "") -> Dict[str, int]:
        base = prefix or self.name
        return {f"{base}.{key}": value for key, value in sorted(self.counters.items())}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
        return f"StatCounters({self.name}: {inner})"


class StatsRegistry:
    """Collects the :class:`StatCounters` of every component in a machine.

    Components register themselves at construction; ``snapshot`` returns a
    flat mapping suitable for result records and for computing the
    normalized reads/writes/slowdown series of Figures 8-14.
    """

    def __init__(self) -> None:
        self._bundles: Dict[str, StatCounters] = {}

    def register(self, bundle: StatCounters) -> StatCounters:
        if bundle.name in self._bundles:
            raise ValueError(f"duplicate stats bundle: {bundle.name}")
        self._bundles[bundle.name] = bundle
        return bundle

    def create(self, name: str) -> StatCounters:
        return self.register(StatCounters(name))

    def ensure(self, name: str) -> StatCounters:
        """The named bundle, created and registered on first use.

        For components built lazily and possibly repeatedly per machine
        (the crash-recovery objects): counters accumulate across reboots
        of the same machine instead of tripping the duplicate check.
        """
        existing = self._bundles.get(name)
        if existing is not None:
            return existing
        return self.create(name)

    def bundle(self, name: str) -> StatCounters:
        return self._bundles[name]

    @property
    def names(self) -> Iterable[str]:
        return self._bundles.keys()

    def reset(self) -> None:
        for bundle in self._bundles.values():
            bundle.reset()

    def snapshot(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for bundle in self._bundles.values():
            merged.update(bundle.as_dict())
        return merged

    @staticmethod
    def normalize(run: Mapping[str, float], baseline: Mapping[str, float], key: str) -> float:
        """Return run[key]/baseline[key], tolerating a zero baseline."""
        denominator = baseline.get(key, 0)
        if not denominator:
            return 0.0 if not run.get(key, 0) else float("inf")
        return run.get(key, 0) / denominator
