"""Memory substrate: address maps, PCM device model, caches, controllers."""

from .address import (
    LINE_SIZE,
    LINES_PER_PAGE,
    PAGE_SIZE,
    AddressMap,
    BankAddress,
    line_address,
    page_number,
    page_offset_lines,
)
from .cache import CacheConfig, Eviction, SetAssociativeCache
from .controller import MemoryControllerBase, MemoryRequest, PlainMemoryController
from .hierarchy import AccessOutcome, CacheHierarchy, HierarchyConfig
from .nvm import NVMDevice, NVMStore, NVMTiming
from .stats import StatCounters, StatsRegistry
from .wpq import WPQConfig, WritePendingQueue

__all__ = [
    "LINE_SIZE",
    "PAGE_SIZE",
    "LINES_PER_PAGE",
    "AddressMap",
    "BankAddress",
    "line_address",
    "page_number",
    "page_offset_lines",
    "CacheConfig",
    "Eviction",
    "SetAssociativeCache",
    "MemoryRequest",
    "MemoryControllerBase",
    "PlainMemoryController",
    "AccessOutcome",
    "CacheHierarchy",
    "HierarchyConfig",
    "NVMDevice",
    "NVMStore",
    "NVMTiming",
    "StatCounters",
    "StatsRegistry",
    "WPQConfig",
    "WritePendingQueue",
]
