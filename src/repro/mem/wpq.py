"""The memory controller's Write Pending Queue (the ADR domain).

``clwb + sfence`` does not wait for the PCM array: it completes when the
line reaches the controller's write-pending queue, which ADR guarantees
to drain on power failure.  That makes persist latency *burst-
sensitive*: a queue with free slots absorbs a flush in tens of
nanoseconds, but a workload flushing faster than the PCM array drains
(150 ns/entry) fills the queue and stalls — the cliff behind many real
PM performance anomalies.

The machine's persist path uses this model when
``MachineConfig.model_wpq`` is on; the default keeps the simpler fixed
ADR constant for backwards-comparable figures, and an ablation measures
the difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .stats import StatCounters

__all__ = ["WPQConfig", "WritePendingQueue"]


@dataclass(frozen=True)
class WPQConfig:
    """Queue geometry and timing."""

    entries: int = 16  # typical ADR-protected depth
    accept_ns: float = 30.0  # flush completion when a slot is free
    drain_ns_per_entry: float = 150.0  # PCM array write service rate

    def __post_init__(self) -> None:
        if self.entries < 1:
            raise ValueError("WPQ needs at least one entry")


class WritePendingQueue:
    """Occupancy-over-time model against the machine's global clock.

    The queue drains continuously at one entry per ``drain_ns_per_entry``;
    ``accept(now_ns)`` returns the latency the flushing store observes:
    the accept cost alone while slots are free, plus the wait for the
    next drain slot when the queue is full.
    """

    def __init__(self, config: Optional[WPQConfig] = None, stats: Optional[StatCounters] = None) -> None:
        self.config = config or WPQConfig()
        self.stats = stats or StatCounters("wpq")
        # Time at which the queue's backlog will have fully drained.
        self._backlog_clear_ns = 0.0

    def occupancy_at(self, now_ns: float) -> int:
        """Entries still queued at ``now_ns``."""
        remaining_ns = max(0.0, self._backlog_clear_ns - now_ns)
        return min(
            self.config.entries,
            int(-(-remaining_ns // self.config.drain_ns_per_entry)),
        )

    def accept(self, now_ns: float) -> float:
        """Enqueue one persist write at ``now_ns``; returns its latency."""
        self.stats.add("accepts")
        drain = self.config.drain_ns_per_entry
        backlog_ns = max(0.0, self._backlog_clear_ns - now_ns)
        occupancy = self.occupancy_at(now_ns)
        if occupancy >= self.config.entries:
            # Full: the flush waits for one drain slot to open.
            wait_ns = backlog_ns - (self.config.entries - 1) * drain
            self.stats.add("stalls")
            latency = wait_ns + self.config.accept_ns
            self._backlog_clear_ns = now_ns + backlog_ns + drain
            return latency
        # Free slot: accept immediately; the entry joins the backlog.
        self._backlog_clear_ns = max(self._backlog_clear_ns, now_ns) + drain
        return self.config.accept_ns

    def drain_all(self, now_ns: float) -> float:
        """Fence-to-durability (e.g. shutdown): time to empty the queue."""
        remaining = max(0.0, self._backlog_clear_ns - now_ns)
        self.stats.add("full_drains")
        self._backlog_clear_ns = now_ns
        return remaining

    def crash_drain(self, now_ns: float, drain_fraction: float) -> "tuple[int, int]":
        """Power failure: ADR drains what it can, the rest is lost.

        ``drain_fraction`` models how far the stored energy gets through
        the backlog (1.0 = healthy ADR, everything lands; 0.0 = none of
        the queue survives).  Returns ``(drained, lost)`` entry counts;
        the queue is empty afterwards either way — there is no machine
        left to drain into.
        """
        if not 0.0 <= drain_fraction <= 1.0:
            raise ValueError("drain_fraction must be in [0, 1]")
        occupancy = self.occupancy_at(now_ns)
        drained = int(occupancy * drain_fraction)
        lost = occupancy - drained
        self._backlog_clear_ns = now_ns
        self.stats.add("crash_drains")
        self.stats.add("crash_drained_entries", drained)
        self.stats.add("crash_lost_entries", lost)
        return drained, lost
