"""Generic set-associative write-back cache with LRU replacement.

One cache class serves every cache in the machine: L1/L2/L3 data caches
and the on-chip Metadata Cache holding MECB/FECB/Merkle-tree lines
(Table III: all are 64 B-block, 8- or 64-way, LRU-ish structures).  The
cache is a *tag store only* — data contents live in the functional layer
— because the timing model needs hit/miss/eviction behaviour, not bytes.

Evictions are reported to the caller (the next level or the memory
controller) so dirty metadata write-backs turn into the extra NVM writes
the paper's Figures 9/13 measure.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .stats import StatCounters

__all__ = ["CacheConfig", "Eviction", "SetAssociativeCache"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    ways: int
    line_size: int = 64
    hit_latency: float = 0.0  # ns; 1 GHz clock makes cycles == ns

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.size_bytes % (self.ways * self.line_size):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_size})"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_size)


class Eviction:
    """A victim pushed out of the cache; ``dirty`` means write it back.

    ``__slots__`` because evictions are minted inside the per-access
    cache walk — allocation cost here is paid on every simulated miss.
    """

    __slots__ = ("addr", "dirty")

    def __init__(self, addr: int, dirty: bool) -> None:
        self.addr = addr
        self.dirty = dirty

    def __repr__(self) -> str:
        return f"Eviction(addr={self.addr:#x}, dirty={self.dirty})"


class SetAssociativeCache:
    """LRU set-associative cache over line-aligned tags.

    The public operations mirror what the machine model needs:

    * :meth:`lookup` — probe without allocating.
    * :meth:`access` — probe and allocate on miss, returning the hit flag
      and any eviction the allocation caused.
    * :meth:`writeback_line` / :meth:`invalidate_line` — the clwb / clflush
      persist primitives PMDK-style workloads issue.
    """

    def __init__(self, config: CacheConfig, stats: Optional[StatCounters] = None) -> None:
        self.config = config
        self.stats = stats or StatCounters(config.name)
        # Hoisted geometry: the per-access path must not chase
        # ``self.config.<field>`` attribute chains on every probe.
        self._line_size = config.line_size
        self._num_sets = config.num_sets
        self._ways = config.ways
        # One OrderedDict per set: key = tag, value = dirty flag.
        # Iteration order is LRU -> MRU.
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(config.num_sets)
        ]

    # -- address helpers ---------------------------------------------------

    def _line(self, addr: int) -> int:
        return addr // self._line_size

    def _set_index(self, line: int) -> int:
        return line % self._num_sets

    # -- core operations ----------------------------------------------------

    def lookup(self, addr: int) -> bool:
        """True if the line is present; refreshes LRU on hit."""
        line = addr // self._line_size
        entries = self._sets[line % self._num_sets]
        if line in entries:
            entries.move_to_end(line)
            return True
        return False

    def access(self, addr: int, is_write: bool) -> "tuple[bool, Optional[Eviction]]":
        """Probe + allocate-on-miss.  Returns ``(hit, eviction_or_None)``."""
        line = addr // self._line_size
        entries = self._sets[line % self._num_sets]
        eviction: Optional[Eviction] = None
        hit = line in entries
        if hit:
            self.stats.add("hits")
            entries.move_to_end(line)
            if is_write:
                entries[line] = True
        else:
            self.stats.add("misses")
            if len(entries) >= self._ways:
                victim_line, victim_dirty = entries.popitem(last=False)
                eviction = Eviction(victim_line * self._line_size, victim_dirty)
                self.stats.add("evictions")
                if victim_dirty:
                    self.stats.add("dirty_evictions")
            entries[line] = is_write
        return hit, eviction

    def fill(self, addr: int, dirty: bool = False) -> Optional[Eviction]:
        """Insert a line (used by explicit fills); returns any eviction."""
        line = addr // self._line_size
        entries = self._sets[line % self._num_sets]
        eviction: Optional[Eviction] = None
        if line in entries:
            entries.move_to_end(line)
            if dirty:
                entries[line] = True
            return None
        if len(entries) >= self._ways:
            victim_line, victim_dirty = entries.popitem(last=False)
            eviction = Eviction(victim_line * self._line_size, victim_dirty)
            self.stats.add("evictions")
            if victim_dirty:
                self.stats.add("dirty_evictions")
        entries[line] = dirty
        return eviction

    def writeback_line(self, addr: int) -> bool:
        """clwb: clean the line in place.  Returns True if it was dirty."""
        line = addr // self._line_size
        entries = self._sets[line % self._num_sets]
        if entries.get(line):
            entries[line] = False
            self.stats.add("writebacks")
            return True
        return False

    def invalidate_line(self, addr: int) -> Optional[Eviction]:
        """clflush: evict the line.  Returns the eviction if present."""
        line = addr // self._line_size
        entries = self._sets[line % self._num_sets]
        if line not in entries:
            return None
        dirty = entries.pop(line)
        self.stats.add("invalidations")
        return Eviction(line * self._line_size, dirty)

    def drain(self) -> List[Eviction]:
        """Flush everything (crash / shutdown).  Returns dirty victims."""
        victims: List[Eviction] = []
        for entries in self._sets:
            for line, dirty in entries.items():
                if dirty:
                    victims.append(Eviction(line * self._line_size, True))
            entries.clear()
        return victims

    def contents(self) -> Dict[int, bool]:
        """Snapshot {line_addr: dirty} — used by crash-consistency tests."""
        snapshot: Dict[int, bool] = {}
        for entries in self._sets:
            for line, dirty in entries.items():
                snapshot[line * self._line_size] = dirty
        return snapshot

    @property
    def occupancy(self) -> int:
        return sum(len(entries) for entries in self._sets)

    @property
    def hit_rate(self) -> float:
        hits = self.stats.get("hits")
        total = hits + self.stats.get("misses")
        return hits / total if total else 0.0
