"""Fault plans: the seeded description of *how* a crash misbehaves.

A crash is not one event but a distribution of hardware outcomes — how
much of the ADR/WPQ domain drains before the capacitors give out,
whether the interrupted line lands torn, which PCM cells flip.  The
paper's crash-consistency arguments (Osiris stop-loss §II-D, OTT
write-through logging §III-H) are claims about *every* point in that
distribution, so the injector samples it from a seeded
:class:`random.Random` and nothing else: the same plan always produces
the same crash, byte for byte.

``derive(index)`` gives each crash point of a sweep its own independent
stream while keeping the whole sweep a pure function of one seed.

The fault vocabulary covers four hardware misbehaviours:

* **partial drain** (``drain_fraction``) — the ADR energy budget dies
  part-way through the write tail;
* **torn writes** (``torn_probability``) — an undrained line lands as a
  per-device-word mix of old and new;
* **torn bursts** (``torn_burst``) — a tear takes a *contiguous run* of
  in-flight lines down together, modelling a burst-granular ADR
  collapse (the supply sags for many cycles, not one word);
* **media faults** — bit flips in stored state after the dust settles:
  ``bit_flips`` land in data ciphertext, ``counter_flips`` land in the
  security-metadata regions (persisted MECB/FECB counter lines, the
  encrypted OTT spill region, stored Merkle nodes) — exactly the faults
  Huang & Hua show encrypted-NVM recovery schemes silently diverge on.

``FAULT_PROFILES`` names the standard plans the scheme-matrix sweep
(``repro.faults.sweep.sweep_matrix``) runs every scheme under.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict

__all__ = ["TEAR_BYTES", "FaultPlan", "FAULT_PROFILES"]

# Torn-write granularity.  NVDIMM media writes 8-byte (64-bit data +
# ECC) device words atomically; a torn 64-byte line is therefore a
# per-word interleaving of old and new content, never a bit-level blend.
TEAR_BYTES = 8


@dataclass(frozen=True)
class FaultPlan:
    """One crash's worth of injected misbehaviour.

    * ``drain_fraction`` — how much of the in-flight write tail the
      ADR domain manages to drain (1.0 = healthy ADR, every accepted
      write persists; 0.0 = total supply collapse, nothing drains).
    * ``torn_probability`` — chance that each *undrained* write lands
      torn (old/new mixed per device word) instead of cleanly dropped.
    * ``torn_burst`` — maximum length of one tear event: a tear takes
      up to this many *contiguous* in-flight lines down together
      (length sampled uniformly per event).  1 = independent
      single-line tears, the classic model.
    * ``bit_flips`` — media faults: ciphertext bits flipped in stored
      data lines after the dust settles (failing PCM cells, §VI
      endurance).
    * ``counter_flips`` — media faults landing in the security-metadata
      regions instead of data: persisted MECB/FECB counter values, the
      encrypted OTT spill region, or stored Merkle nodes.  Recovery
      must detect-or-recover each one — Osiris trial decryption for
      counters, the record tag for OTT slots, the integrity scan for
      Merkle nodes.
    """

    seed: int = 0xFA01
    drain_fraction: float = 1.0
    torn_probability: float = 0.5
    torn_burst: int = 1
    bit_flips: int = 0
    counter_flips: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drain_fraction <= 1.0:
            raise ValueError(f"drain_fraction {self.drain_fraction} not in [0, 1]")
        if not 0.0 <= self.torn_probability <= 1.0:
            raise ValueError(f"torn_probability {self.torn_probability} not in [0, 1]")
        if self.torn_burst < 1:
            raise ValueError("torn_burst must be >= 1")
        if self.bit_flips < 0:
            raise ValueError("bit_flips must be >= 0")
        if self.counter_flips < 0:
            raise ValueError("counter_flips must be >= 0")

    def rng(self) -> random.Random:
        """The plan's private, reproducible randomness stream."""
        return random.Random(self.seed)

    def derive(self, index: int) -> "FaultPlan":
        """An independent sub-plan for crash point ``index`` of a sweep."""
        return replace(self, seed=(self.seed * 1000003 + index) & 0xFFFFFFFF)

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same fault distribution under a different seed."""
        return replace(self, seed=seed)


#: The standard fault profiles of the scheme-matrix sweep.  Each one
#: stresses a different recovery path; together they cover the paper's
#: crash-consistency claim along every axis the model injects.
FAULT_PROFILES: Dict[str, FaultPlan] = {
    # Partial drain + independent tears + one data-media flip: the
    # original mixed profile, every disposition exercised at once.
    "mixed": FaultPlan(drain_fraction=0.5, torn_probability=0.5, bit_flips=1),
    # Burst-granular ADR collapse: little drains, and tears take
    # contiguous runs of the in-flight tail down together.
    "torn-burst": FaultPlan(
        drain_fraction=0.25, torn_probability=0.75, torn_burst=4
    ),
    # Metadata-region media faults: flips land in persisted counters,
    # the OTT spill region, and stored Merkle nodes — the faults that
    # distinguish detect-or-recover schemes from silently-wrong ones.
    "counter-flips": FaultPlan(
        drain_fraction=0.75, torn_probability=0.25, counter_flips=2
    ),
}
