"""Fault plans: the seeded description of *how* a crash misbehaves.

A crash is not one event but a distribution of hardware outcomes — how
much of the ADR/WPQ domain drains before the capacitors give out,
whether the interrupted line lands torn, which PCM cells flip.  The
paper's crash-consistency arguments (Osiris stop-loss §II-D, OTT
write-through logging §III-H) are claims about *every* point in that
distribution, so the injector samples it from a seeded
:class:`random.Random` and nothing else: the same plan always produces
the same crash, byte for byte.

``derive(index)`` gives each crash point of a sweep its own independent
stream while keeping the whole sweep a pure function of one seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

__all__ = ["TEAR_BYTES", "FaultPlan"]

# Torn-write granularity.  NVDIMM media writes 8-byte (64-bit data +
# ECC) device words atomically; a torn 64-byte line is therefore a
# per-word interleaving of old and new content, never a bit-level blend.
TEAR_BYTES = 8


@dataclass(frozen=True)
class FaultPlan:
    """One crash's worth of injected misbehaviour.

    * ``drain_fraction`` — how much of the in-flight write tail the
      ADR domain manages to drain (1.0 = healthy ADR, every accepted
      write persists; 0.0 = total supply collapse, nothing drains).
    * ``torn_probability`` — chance that each *undrained* write lands
      torn (old/new mixed per device word) instead of cleanly dropped.
    * ``bit_flips`` — media faults: ciphertext bits flipped in stored
      lines after the dust settles (failing PCM cells, §VI endurance).
    """

    seed: int = 0xFA01
    drain_fraction: float = 1.0
    torn_probability: float = 0.5
    bit_flips: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drain_fraction <= 1.0:
            raise ValueError(f"drain_fraction {self.drain_fraction} not in [0, 1]")
        if not 0.0 <= self.torn_probability <= 1.0:
            raise ValueError(f"torn_probability {self.torn_probability} not in [0, 1]")
        if self.bit_flips < 0:
            raise ValueError("bit_flips must be >= 0")

    def rng(self) -> random.Random:
        """The plan's private, reproducible randomness stream."""
        return random.Random(self.seed)

    def derive(self, index: int) -> "FaultPlan":
        """An independent sub-plan for crash point ``index`` of a sweep."""
        return replace(self, seed=(self.seed * 1000003 + index) & 0xFFFFFFFF)
