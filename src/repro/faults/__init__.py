"""Deterministic crash/fault injection for the simulated machine.

The package splits along the crash timeline:

* :mod:`~repro.faults.plan` — *what goes wrong*: a seeded, frozen
  :class:`FaultPlan` (ADR drain fraction, torn-write probability, media
  bit flips).
* :mod:`~repro.faults.domain` — *what is at risk*: the
  :class:`CrashDomain` FIFO of in-flight functional line writes the
  secure controller stages on every write.
* :mod:`~repro.faults.lifecycle` — *the event*: ``crash_machine`` /
  ``reboot_machine`` behind ``Machine.crash()`` / ``Machine.reboot()``,
  with structured :class:`CrashReport` / :class:`RecoveryReport`.
* :mod:`repro.faults.sweep` — *the quantifier*: the systematic
  crash-point sweep.  Imported explicitly (``from repro.faults import
  sweep``) rather than re-exported here, because it depends on
  :mod:`repro.sim` while ``repro.sim.machine`` imports this package —
  re-exporting it would close an import cycle.
"""

from .domain import CrashDomain, LineWrite
from .lifecycle import (
    DISPOSITION_DRAINED,
    DISPOSITION_DROPPED,
    DISPOSITION_TORN,
    CrashReport,
    LineFate,
    MetadataFlip,
    RecoveryReport,
    crash_machine,
    reboot_machine,
)
from .plan import FAULT_PROFILES, TEAR_BYTES, FaultPlan

__all__ = [
    "TEAR_BYTES",
    "FaultPlan",
    "FAULT_PROFILES",
    "CrashDomain",
    "LineWrite",
    "DISPOSITION_DRAINED",
    "DISPOSITION_DROPPED",
    "DISPOSITION_TORN",
    "LineFate",
    "MetadataFlip",
    "CrashReport",
    "RecoveryReport",
    "crash_machine",
    "reboot_machine",
]
