"""Machine-level crash, reboot, and recovery.

``crash_machine`` is the power-fail instant: every volatile structure
(CPU caches, TLBs, the on-chip metadata cache, the OTT SRAM, the DRAM
page cache, the plaintext shadow) loses its contents, and the in-flight
write tail staged in the :class:`~repro.faults.domain.CrashDomain` is
resolved entry by entry according to the :class:`FaultPlan` — drained
into the array, cleanly dropped (the NVM keeps the pre-write line), or
torn (old and new interleaved per 8-byte device word).  Optional media
bit flips land afterwards.

``reboot_machine`` then runs the *real* recovery paths the paper
describes instead of restoring a golden snapshot:

1. the on-chip OTT is rebuilt from the encrypted spill region
   (write-through logging, §III-H option 1);
2. every line carrying plaintext ECC is trial-decrypted from the
   *persisted* counter values upward (Osiris §II-D) — one-dimensional
   over the MECB minor for plain-memory pages, two-dimensional over
   (MECB minor, FECB minor) for file-stamped pages, since both layers'
   counters ride the same stop-loss window;
3. the recovered counters are installed and the Bonsai Merkle tree is
   rebuilt over them, so subsequent reads verify the recovered state.

The invariant the sweep (``repro.faults.sweep``) checks is decided
here: a line either recovers to a consistent version or its failure is
*explicit* (ECC exhaustion, tag failure, integrity error) — never a
silent wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.ott import KeyUnavailableError
from ..crypto.iv import FILE_DOMAIN, MEMORY_DOMAIN, CounterIV
from ..crypto.otp import xor_bytes
from ..mem.address import LINE_SIZE, LINES_PER_PAGE, page_number, page_offset_lines
from ..secmem.counters import MINOR_BITS
from ..secmem.ecc import check_line
from ..secmem.osiris import CounterRecoveryError
from .domain import LineWrite
from .plan import TEAR_BYTES, FaultPlan

__all__ = [
    "DISPOSITION_DRAINED",
    "DISPOSITION_DROPPED",
    "DISPOSITION_TORN",
    "LineFate",
    "MetadataFlip",
    "CrashReport",
    "RecoveryReport",
    "crash_machine",
    "reboot_machine",
]

DISPOSITION_DRAINED = "drained"
DISPOSITION_DROPPED = "dropped"
DISPOSITION_TORN = "torn"

_MINOR_LIMIT = 1 << MINOR_BITS
_WORDS_PER_LINE = LINE_SIZE // TEAR_BYTES


@dataclass(frozen=True)
class LineFate:
    """What the crash did to one in-flight line write."""

    addr: int
    disposition: str  # drained | dropped | torn
    old_plain: Optional[bytes]
    new_plain: bytes


@dataclass(frozen=True)
class MetadataFlip:
    """One media fault landed in a security-metadata region.

    ``region`` names where it hit — ``mecb``/``fecb`` (the persisted
    counter journal for one page), ``ott`` (a sealed spill-region
    record), or ``merkle`` (a stored tree node).  ``where`` is the
    page, slot, or (level, index); ``field`` says which value within
    the target the ``bit`` landed in.
    """

    region: str
    where: object
    field: str
    bit: int


@dataclass(frozen=True)
class CrashReport:
    """Everything the crash injected, for the sweep's oracle."""

    plan: FaultPlan
    inflight: int
    drained: int
    dropped: int
    torn: int
    bit_flips: Tuple[Tuple[int, int], ...]  # (addr, bit)
    wpq_entries_lost: int
    line_fates: Dict[int, LineFate]
    #: Number of tear *events*; with ``plan.torn_burst > 1`` one event
    #: can take several contiguous in-flight lines down together.
    torn_bursts: int = 0
    metadata_flips: Tuple[MetadataFlip, ...] = ()


@dataclass(frozen=True)
class RecoveryReport:
    """What reboot-time recovery did and what it cost."""

    scheme: str
    functional: bool
    trials: int
    lines_checked: int
    lines_recovered: int
    failed_lines: Tuple[int, ...]
    pages_restored: int
    ott_keys_recovered: int
    merkle_leaves_rebuilt: int
    recovery_ns: float
    #: Stored Merkle nodes whose digest failed the pre-install
    #: integrity scan (media faults in node storage, or a protected
    #: leaf region — e.g. an OTT slot — that no longer matches its node).
    merkle_nodes_poisoned: int = 0
    #: OTT spill records whose tag failed during the recovery scan.
    ott_slots_rejected: int = 0
    #: Counter lines restored from the Anubis shadow region (the
    #: "+anubis" columns): these start trial decryption at zero lag.
    anubis_lines_restored: int = 0


# ======================================================================
# Crash
# ======================================================================


def _tear_line(store, write: LineWrite, rng) -> None:
    """Interleave old/new per 8-byte device word (data + its ECC byte).

    Each 72-bit device word (64 data bits + the plaintext-ECC byte)
    commits atomically, so a torn line is a word-granular mix of two
    versions sealed under *different* counters — no single trial counter
    decrypts every word, which is exactly why ECC flags it.
    """
    old_ecc = write.old_ecc if write.old_ecc is not None else bytes(_WORDS_PER_LINE)
    mixed_cipher = bytearray()
    mixed_ecc = bytearray()
    for word in range(_WORDS_PER_LINE):
        lo, hi = word * TEAR_BYTES, (word + 1) * TEAR_BYTES
        if rng.random() < 0.5:
            mixed_cipher += write.new_cipher[lo:hi]
            mixed_ecc.append(write.new_ecc[word])
        else:
            mixed_cipher += write.old_cipher[lo:hi]
            mixed_ecc.append(old_ecc[word])
    store.write_line(write.addr, bytes(mixed_cipher))
    store.write_ecc(write.addr, bytes(mixed_ecc))


def _drop_volatile_state(machine) -> None:
    """Power loss: everything DRAM/SRAM-resident vanishes."""
    machine.hierarchy.drain_dirty()  # discard — no write-back after power loss
    for context in machine._processes.values():
        context.mmu.tlb.flush()
    controller = machine.controller
    cache = getattr(controller, "metadata_cache", None)
    if cache is not None:
        cache.flush_all()  # discard the victims: dirty metadata is lost
    shadow = getattr(controller, "_plaintext_shadow", None)
    if shadow is not None:
        shadow.clear()
    ott = getattr(controller, "ott", None)
    if ott is not None:
        ott.reset()
    if machine.overlay is not None:
        machine.overlay.page_cache.drop_all()


def _metadata_flip_targets(controller) -> List[Tuple[str, object]]:
    """Every metadata location a ``counter_flips`` fault can land in.

    Deterministically ordered: persisted MECB pages, persisted FECB
    pages (file schemes only), occupied OTT spill slots, stored Merkle
    nodes.  Schemes without a layer simply expose no targets for it.
    """
    targets: List[Tuple[str, object]] = []
    for page in sorted(getattr(controller, "_persisted_mecb", {})):
        targets.append(("mecb", page))
    for page in sorted(getattr(controller, "_persisted_fecb", {})):
        targets.append(("fecb", page))
    region = getattr(controller, "ott_region", None)
    if region is not None:
        for slot in region.occupied_slots():
            targets.append(("ott", slot))
    merkle = getattr(controller, "merkle", None)
    if merkle is not None:
        for node in merkle.stored_nodes():
            targets.append(("merkle", node))
    for addr in sorted(getattr(controller, "_anubis_counters", {})):
        targets.append(("anubis", addr))
    return targets


# Sealed OTT records are 48 bytes (EncryptedOTTRegion.RECORD_BYTES);
# stored Merkle nodes are 32-byte SHA-256 digests.  Kept as local
# constants so repro.faults stays import-light.
_OTT_RECORD_BITS = 48 * 8
_MERKLE_DIGEST_BITS = 32 * 8


def _apply_metadata_flip(controller, region: str, where, rng) -> MetadataFlip:
    """Land one bit flip in the chosen metadata target."""
    if region == "mecb":
        major, minors = controller._persisted_mecb[where]
        minors = list(minors)
        if rng.random() < 0.125:
            bit = rng.randrange(8)
            major ^= 1 << bit
            field = "major"
        else:
            line = rng.randrange(len(minors))
            bit = rng.randrange(MINOR_BITS)
            minors[line] ^= 1 << bit
            field = f"minor[{line}]"
        controller._persisted_mecb[where] = (major, tuple(minors))
        return MetadataFlip(region="mecb", where=where, field=field, bit=bit)
    if region == "fecb":
        gid, fid, major, minors = controller._persisted_fecb[where]
        minors = list(minors)
        roll = rng.random()
        if roll < 0.125:
            bit = rng.randrange(8)
            gid ^= 1 << bit
            field = "group_id"
        elif roll < 0.25:
            bit = rng.randrange(8)
            fid ^= 1 << bit
            field = "file_id"
        else:
            line = rng.randrange(len(minors))
            bit = rng.randrange(MINOR_BITS)
            minors[line] ^= 1 << bit
            field = f"minor[{line}]"
        controller._persisted_fecb[where] = (gid, fid, major, tuple(minors))
        return MetadataFlip(region="fecb", where=where, field=field, bit=bit)
    if region == "ott":
        bit = rng.randrange(_OTT_RECORD_BITS)
        controller.ott_region.flip_bit(where, bit)
        return MetadataFlip(region="ott", where=where, field="sealed_record", bit=bit)
    if region == "merkle":
        level, index = where
        bit = rng.randrange(_MERKLE_DIGEST_BITS)
        controller.merkle.flip_node_bit(level, index, bit)
        return MetadataFlip(region="merkle", where=where, field="node_digest", bit=bit)
    if region == "anubis":
        # The shadow region is plain NVM like any counter line; a flip
        # lands in the journalled snapshot's minor array (its last
        # element), and recovery must surface it as an explicit ECC
        # failure — never silently trust the shadow.
        snap = list(controller._anubis_counters[where])
        minors = list(snap[-1])
        line = rng.randrange(len(minors))
        bit = rng.randrange(MINOR_BITS)
        minors[line] ^= 1 << bit
        snap[-1] = tuple(minors)
        controller._anubis_counters[where] = tuple(snap)
        return MetadataFlip(
            region="anubis", where=where, field=f"minor[{line}]", bit=bit
        )
    raise ValueError(f"unknown metadata flip region {region!r}")


def crash_machine(machine, plan: FaultPlan) -> CrashReport:
    """Apply ``plan`` to ``machine`` at the current instant."""
    rng = plan.rng()
    controller = machine.controller
    store = getattr(controller, "store", None)
    domain = getattr(controller, "crash_domain", None)

    fates: Dict[int, LineFate] = {}
    drained = dropped = torn = torn_bursts = 0
    burst_left = 0
    entries = domain.inflight() if domain is not None else []
    # The queue drains oldest-first; the ADR energy budget decides how
    # deep into the tail the drain gets before the rest is at risk.
    drain_upto = int(len(entries) * plan.drain_fraction)
    for position, write in enumerate(entries):
        if position < drain_upto:
            drained += 1
            disposition = DISPOSITION_DRAINED
        elif burst_left > 0:
            # A tear event in progress takes this line down with it.
            burst_left -= 1
            torn += 1
            disposition = DISPOSITION_TORN
            _tear_line(store, write, rng)
        elif rng.random() < plan.torn_probability:
            # New tear event; with torn_burst > 1 it collapses a
            # contiguous run of the in-flight tail (the supply sags for
            # many cycles, not one device word).
            if plan.torn_burst > 1:
                burst_left = rng.randint(1, plan.torn_burst) - 1
            torn_bursts += 1
            torn += 1
            disposition = DISPOSITION_TORN
            _tear_line(store, write, rng)
        else:
            dropped += 1
            disposition = DISPOSITION_DROPPED
            store.write_line(write.addr, write.old_cipher)
            store.write_ecc(write.addr, write.old_ecc)
        fates[write.addr] = LineFate(
            addr=write.addr,
            disposition=disposition,
            old_plain=write.old_plain,
            new_plain=write.new_plain,
        )
    if domain is not None:
        domain.clear()

    flips: List[Tuple[int, int]] = []
    if plan.bit_flips and store is not None:
        lines = sorted(store.scan())
        if lines:
            for _ in range(plan.bit_flips):
                addr = lines[rng.randrange(len(lines))]
                bit = rng.randrange(LINE_SIZE * 8)
                store.flip_bit(addr, bit)
                flips.append((addr, bit))

    meta_flips: List[MetadataFlip] = []
    if plan.counter_flips:
        targets = _metadata_flip_targets(controller)
        if targets:
            for _ in range(plan.counter_flips):
                region, where = targets[rng.randrange(len(targets))]
                meta_flips.append(_apply_metadata_flip(controller, region, where, rng))

    wpq_lost = 0
    if machine.wpq is not None:
        _, wpq_lost = machine.wpq.crash_drain(machine.clock_ns, plan.drain_fraction)

    _drop_volatile_state(machine)
    return CrashReport(
        plan=plan,
        inflight=len(entries),
        drained=drained,
        dropped=dropped,
        torn=torn,
        bit_flips=tuple(flips),
        wpq_entries_lost=wpq_lost,
        line_fates=fates,
        torn_bursts=torn_bursts,
        metadata_flips=tuple(meta_flips),
    )


# ======================================================================
# Reboot / recovery
# ======================================================================


def _memory_trial(controller, cipher: bytes, page: int, line_index: int, major: int, minor: int) -> bytes:
    iv = CounterIV(
        domain=MEMORY_DOMAIN,
        page_id=page,
        page_offset=line_index,
        major=major % (1 << 64),
        minor=minor,
    )
    return xor_bytes(cipher, controller._memory_engine.pad_for(iv))


def _stamped_trial(
    controller,
    key: bytes,
    cipher: bytes,
    page: int,
    line_index: int,
    mem_major: int,
    mem_minor: int,
    file_major: int,
    file_minor: int,
) -> bytes:
    mem_iv = CounterIV(
        domain=MEMORY_DOMAIN,
        page_id=page,
        page_offset=line_index,
        major=mem_major % (1 << 64),
        minor=mem_minor,
    )
    file_iv = CounterIV(
        domain=FILE_DOMAIN,
        page_id=page,
        page_offset=line_index,
        major=file_major,
        minor=file_minor,
    )
    pad = controller._memory_engine.pad_for(mem_iv)
    controller._file_engine.rekey(key)
    pad = xor_bytes(pad, controller._file_engine.pad_for(file_iv))
    return xor_bytes(cipher, pad)


def _recover_stamped_line(
    controller,
    key: bytes,
    cipher: bytes,
    ecc: bytes,
    page: int,
    line_index: int,
    mem_major: int,
    mem_minor: int,
    file_major: int,
    file_minor: int,
    stop_loss: int,
) -> Tuple[Optional[Tuple[int, int, bytes]], int]:
    """2-D Osiris search over (MECB minor, FECB minor) lags.

    Candidates are ordered by total lag — both counters bump together on
    the write path, so the true pair is minimally ahead of the persisted
    pair — and each layer's lag is independently bounded by its own
    stop-loss window.
    """
    trials = 0
    for total in range(2 * stop_loss + 1):
        for mem_off in range(max(0, total - stop_loss), min(stop_loss, total) + 1):
            file_off = total - mem_off
            cand_mem = mem_minor + mem_off
            cand_file = file_minor + file_off
            if cand_mem >= _MINOR_LIMIT or cand_file >= _MINOR_LIMIT:
                continue
            trials += 1
            plaintext = _stamped_trial(
                controller, key, cipher, page, line_index,
                mem_major, cand_mem, file_major, cand_file,
            )
            if check_line(plaintext, ecc):
                return (cand_mem, cand_file, plaintext), trials
    return None, trials


def reboot_machine(machine) -> RecoveryReport:
    """Bring the crashed machine back up through the real recovery paths."""
    controller = machine.controller
    scheme = machine.config.scheme.value
    functional = machine.config.functional
    recovery_ns = 0.0
    trials_total = 0
    lines_checked = 0
    lines_recovered = 0
    failed: List[int] = []
    ott_recovered = 0
    leaves = 0
    pages_restored = 0

    if not hasattr(controller, "mecb"):
        # Conventional-path machine: nothing encrypted to recover; the
        # caches simply come up cold.
        return RecoveryReport(
            scheme=scheme, functional=functional, trials=0, lines_checked=0,
            lines_recovered=0, failed_lines=(), pages_restored=0,
            ott_keys_recovered=0, merkle_leaves_rebuilt=0, recovery_ns=0.0,
        )

    cconf = controller.config
    journal_mecb = dict(getattr(controller, "_persisted_mecb", {}))
    journal_fecb = dict(getattr(controller, "_persisted_fecb", {}))

    # -- 0. integrity scan of the stored Merkle nodes -------------------
    # Must run before any recovered state is installed: leaf content
    # still matches what the stored digests were computed over, so a
    # mismatch here is media damage, never a legitimate recovery delta.
    nodes_poisoned = 0
    merkle = getattr(controller, "merkle", None)
    if merkle is not None:
        for level, index in merkle.stored_nodes():
            recovery_ns += controller.device.read(
                controller.layout.merkle_node_addr(level, index)
            )
        poisoned = merkle.flag_poisoned_nodes()
        nodes_poisoned = len(poisoned)
        if nodes_poisoned:
            controller.stats.add("merkle_poisoned_nodes", nodes_poisoned)

    # -- 1. OTT: scan the encrypted spill region (one read per slot) ----
    if hasattr(controller, "recover_ott_after_crash"):
        ott_recovered = controller.recover_ott_after_crash()
        for slot in range(controller.layout.ott_slots):
            recovery_ns += controller.device.read(controller.layout.ott_slot_addr(slot))

    # -- 2. counter recovery via ECC trial decryption -------------------
    final_mecb: Dict[int, Tuple[int, List[int]]] = {
        page: (major, list(minors)) for page, (major, minors) in journal_mecb.items()
    }
    final_fecb: Dict[int, Tuple[int, int, int, List[int]]] = {
        page: (gid, fid, major, list(minors))
        for page, (gid, fid, major, minors) in journal_fecb.items()
    }
    new_shadow: Dict[int, bytes] = {}

    # -- 2a. Anubis shadow restore (the "+anubis" columns) --------------
    # Before any trial decryption: the shadow region names exactly the
    # counter lines whose home copies were stale at the crash, and its
    # entries carry the live values.  One NVM read per tracked line;
    # restored lines enter the trial loop at zero lag (the ECC check
    # still runs, so a flipped shadow entry fails explicitly).
    anubis_restored = 0
    anubis_table = getattr(controller, "anubis_shadow", None)
    if anubis_table is not None and anubis_table.occupancy:
        anubis_snaps = dict(getattr(controller, "_anubis_counters", {}))

        def _install_from_shadow(addr: int) -> None:
            nonlocal recovery_ns
            recovery_ns += controller.device.read(anubis_table.slot_addr(addr))
            snap = anubis_snaps.get(addr)
            if snap is None:
                return
            if snap[0] == "mecb":
                _, page, major, minors = snap
                final_mecb[page] = (major, list(minors))
            else:
                _, page, gid, fid, major, minors = snap
                final_fecb[page] = (gid, fid, major, list(minors))

        anubis_result = machine.config.build_anubis_recovery(
            stats=machine.registry.ensure("anubis_recovery")
        ).recover(anubis_table, _install_from_shadow)
        anubis_restored = anubis_result.recovered_lines

    if functional:
        osiris_recovery = machine.config.build_osiris_recovery(
            stats=machine.registry.ensure("osiris_recovery")
        )
        ecc_map = controller.store.scan_ecc()
        by_page: Dict[int, List[int]] = {}
        for addr in sorted(ecc_map):
            by_page.setdefault(page_number(addr), []).append(addr)

        trial_cost_ns = cconf.aes_latency_ns + cconf.xor_latency_ns
        for page, addrs in sorted(by_page.items()):
            mem_major, mem_minors = final_mecb.setdefault(page, (0, [0] * LINES_PER_PAGE))
            fecb_entry = final_fecb.get(page)
            stamped = fecb_entry is not None and (fecb_entry[0] != 0 or fecb_entry[1] != 0)
            key: Optional[bytes] = None
            if stamped:
                try:
                    key, _ = controller._lookup_key(fecb_entry[0], fecb_entry[1])
                except KeyUnavailableError:
                    key = None  # key never logged: every page line is unrecoverable
            for addr in addrs:
                lines_checked += 1
                recovery_ns += controller.device.read(addr)
                line_index = page_offset_lines(addr)
                cipher = controller.store.read_line(addr)
                ecc = ecc_map[addr]
                if stamped:
                    if key is None:
                        failed.append(addr)
                        continue
                    found, trials = _recover_stamped_line(
                        controller, key, cipher, ecc, page, line_index,
                        mem_major, mem_minors[line_index],
                        fecb_entry[2], fecb_entry[3][line_index],
                        cconf.stop_loss,
                    )
                    trials_total += trials
                    recovery_ns += trials * trial_cost_ns
                    if found is None:
                        failed.append(addr)
                        continue
                    mem_minors[line_index], fecb_entry[3][line_index] = found[0], found[1]
                    new_shadow[addr] = found[2]
                    lines_recovered += 1
                else:
                    def decrypt(candidate: int) -> bytes:
                        return _memory_trial(
                            controller, cipher, page, line_index, mem_major, candidate
                        )

                    try:
                        result = osiris_recovery.recover_counter(
                            mem_minors[line_index],
                            decrypt,
                            lambda pt: check_line(pt, ecc),
                            ceiling=_MINOR_LIMIT - 1,
                        )
                    except CounterRecoveryError:
                        # Only in-range candidates were tried; a flipped
                        # persisted minor near the top of the field leaves
                        # a clipped (possibly empty) window.
                        window = min(
                            cconf.stop_loss + 1,
                            max(0, _MINOR_LIMIT - mem_minors[line_index]),
                        )
                        trials_total += window
                        recovery_ns += window * trial_cost_ns
                        failed.append(addr)
                        continue
                    trials_total += result.trials
                    recovery_ns += result.trials * trial_cost_ns
                    mem_minors[line_index] = result.recovered_value
                    new_shadow[addr] = _memory_trial(
                        controller, cipher, page, line_index,
                        mem_major, result.recovered_value,
                    )
                    lines_recovered += 1

    # -- 3. install the recovered state ---------------------------------
    controller.mecb.restore(
        {page: (major, tuple(minors)) for page, (major, minors) in final_mecb.items()}
    )
    controller._persisted_mecb = {
        page: (major, tuple(minors)) for page, (major, minors) in final_mecb.items()
    }
    pages_restored = len(final_mecb)
    if hasattr(controller, "fecb"):
        controller.fecb.restore(
            {
                page: (gid, fid, major, tuple(minors))
                for page, (gid, fid, major, minors) in final_fecb.items()
            }
        )
        controller._persisted_fecb = {
            page: (gid, fid, major, tuple(minors))
            for page, (gid, fid, major, minors) in final_fecb.items()
        }
        pages_restored += len(final_fecb)
    controller._plaintext_shadow.update(new_shadow)
    controller.osiris.reset()
    if anubis_table is not None:
        # Every tracked value is now installed and re-journalled; the
        # shadow starts the next epoch empty.
        anubis_table.reset()
        controller._anubis_counters.clear()

    # -- 4. rebuild the integrity tree over the recovered metadata ------
    for addr in controller._integrity_leaf_addrs():
        recovery_ns += controller.device.read(addr)
    leaves = controller.rebuild_integrity_tree()

    machine.clock_ns += recovery_ns
    return RecoveryReport(
        scheme=scheme,
        functional=functional,
        trials=trials_total,
        lines_checked=lines_checked,
        lines_recovered=lines_recovered,
        failed_lines=tuple(sorted(failed)),
        pages_restored=pages_restored,
        ott_keys_recovered=ott_recovered,
        merkle_leaves_rebuilt=leaves,
        recovery_ns=recovery_ns,
        merkle_nodes_poisoned=nodes_poisoned,
        ott_slots_rejected=getattr(controller, "ott_rejected_slots", 0),
        anubis_lines_restored=anubis_restored,
    )
