"""The crash domain: which functional writes are still in flight.

The timing model already has a WPQ (``repro.mem.wpq``) that tracks *how
many* entries are queued; fault injection additionally needs to know
*which lines* those entries are and what the NVM held before them, so a
crash can tear or roll back exactly the undrained tail.  The
:class:`CrashDomain` is that functional twin: a FIFO of
:class:`LineWrite` records, bounded to the WPQ depth.  A write pushed
out of the FIFO has, by construction, reached the array — the queue
drains oldest-first — and is no longer at risk.

The secure controller stages every functional line write here (see
``BaselineSecureController._write``); ``Machine.crash`` consumes the
FIFO through ``repro.faults.lifecycle``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

__all__ = ["LineWrite", "CrashDomain"]


@dataclass(frozen=True)
class LineWrite:
    """One staged line write: before/after images of cipher, ECC, plain.

    ``old_ecc``/``old_plain`` are ``None`` for a line's first-ever
    write (there is nothing to roll back to but erased bytes).
    """

    addr: int
    old_cipher: bytes
    old_ecc: Optional[bytes]
    old_plain: Optional[bytes]
    new_cipher: bytes
    new_ecc: bytes
    new_plain: bytes


class CrashDomain:
    """FIFO of in-flight functional writes, bounded like the WPQ.

    Re-writing an address already in flight coalesces (write combining
    in the queue): the oldest pre-image is kept, the newest post-image
    wins, and the entry moves to the queue tail.
    """

    def __init__(self, depth: int = 16) -> None:
        if depth < 1:
            raise ValueError("crash domain depth must be >= 1")
        self.depth = depth
        self._inflight: "OrderedDict[int, LineWrite]" = OrderedDict()
        # Writes that left the domain by reaching the array (FIFO
        # overflow or an explicit drain) — they survive any crash.
        self.drained_writes = 0

    def record(
        self,
        addr: int,
        *,
        old_cipher: bytes,
        old_ecc: Optional[bytes],
        old_plain: Optional[bytes],
        new_cipher: bytes,
        new_ecc: bytes,
        new_plain: bytes,
    ) -> None:
        existing = self._inflight.pop(addr, None)
        if existing is not None:
            entry = LineWrite(
                addr=addr,
                old_cipher=existing.old_cipher,
                old_ecc=existing.old_ecc,
                old_plain=existing.old_plain,
                new_cipher=new_cipher,
                new_ecc=new_ecc,
                new_plain=new_plain,
            )
        else:
            entry = LineWrite(
                addr=addr,
                old_cipher=old_cipher,
                old_ecc=old_ecc,
                old_plain=old_plain,
                new_cipher=new_cipher,
                new_ecc=new_ecc,
                new_plain=new_plain,
            )
        self._inflight[addr] = entry
        while len(self._inflight) > self.depth:
            self._inflight.popitem(last=False)
            self.drained_writes += 1

    def drain_all(self) -> int:
        """Everything in flight reaches the array (fence, sync op)."""
        drained = len(self._inflight)
        self.drained_writes += drained
        self._inflight.clear()
        return drained

    def clear(self) -> None:
        """Forget the in-flight set *without* draining (crash resolved
        each entry's fate already; nothing reached the array here)."""
        self._inflight.clear()

    def inflight(self) -> List[LineWrite]:
        """Oldest-first snapshot of the at-risk tail."""
        return list(self._inflight.values())

    def __len__(self) -> int:
        return len(self._inflight)
