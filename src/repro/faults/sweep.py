"""Systematic crash-point sweep over a workload's persist boundaries.

The crash-consistency claims of the paper (Osiris stop-loss recovery,
OTT write-through logging §III-H, the FECB stamp's durability) are
universally quantified: *wherever* power fails, the machine comes back
to a state that is either consistent or *explicitly* detected as
damaged.  One hand-picked crash test cannot check a universal claim;
this module enumerates the claim's domain instead:

1. record a workload run through :class:`~repro.sim.trace.TraceRecorder`
   and collect every persist boundary (each ``persist`` is a point where
   an application believes data durable — the interesting instants);
2. for each sampled boundary, replay the op prefix onto a fresh
   functional machine — stores carry deterministic, address-salted
   payloads so every line has a known expected value — and crash it
   there under a :class:`~repro.faults.plan.FaultPlan` derived from the
   sweep seed and the boundary index;
3. reboot through the real recovery paths, then audit every line the
   CPU ever wrote against the recovery's answer.

Each line lands in exactly one outcome bucket:

* ``recovered_new``  — decrypts to the last value the CPU wrote;
* ``recovered_old``  — decrypts to the pre-crash-write value (a clean
  ADR drop: the write never happened, which is consistent);
* ``detected``       — recovery explicitly failed the line (ECC
  exhaustion, missing ECC, integrity or key error);
* ``silent``         — recovery *accepted* the line but produced bytes
  that are neither the old nor the new version.  **This bucket must be
  empty**; ``SweepResult.assert_invariant`` enforces it.

Everything is a pure function of (workload, config, plan, seed): two
runs of the same sweep produce identical results, so a failure is a
repro, not an anecdote.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.ott import KeyUnavailableError
from ..mem.address import LINE_SIZE
from ..secmem.ecc import check_line
from ..secmem.merkle import IntegrityError
from ..secmem.osiris import CounterRecoveryError
from ..sim import trace as trace_mod
from ..sim.config import MachineConfig
from ..sim.machine import Machine
from ..sim.schemes import crash_matrix_names, get_scheme
from ..sim.trace import TraceRecorder
from .lifecycle import CrashReport, RecoveryReport
from .plan import FAULT_PROFILES, FaultPlan

__all__ = [
    "OUTCOME_RECOVERED_NEW",
    "OUTCOME_RECOVERED_OLD",
    "OUTCOME_DETECTED",
    "OUTCOME_SILENT",
    "CrashPointResult",
    "SweepResult",
    "MatrixResult",
    "workload_factory",
    "sweep_workload",
    "matrix_configs",
    "sweep_matrix",
]

OUTCOME_RECOVERED_NEW = "recovered_new"
OUTCOME_RECOVERED_OLD = "recovered_old"
OUTCOME_DETECTED = "detected"
OUTCOME_SILENT = "silent"

_ERASED = bytes(LINE_SIZE)


@dataclass(frozen=True)
class CrashPointResult:
    """Outcome of crashing at one persist boundary."""

    op_index: int
    plan_seed: int
    dispositions: Dict[str, int]
    outcomes: Dict[str, int]
    silent_lines: Tuple[int, ...]
    trials: int
    recovery_ns: float
    recovered_keys: int

    def to_dict(self) -> Dict:
        return {
            "op_index": self.op_index,
            "plan_seed": self.plan_seed,
            "dispositions": dict(self.dispositions),
            "outcomes": dict(self.outcomes),
            "silent_lines": list(self.silent_lines),
            "trials": self.trials,
            "recovery_ns": self.recovery_ns,
            "recovered_keys": self.recovered_keys,
        }

    @classmethod
    def from_dict(cls, raw: Dict) -> "CrashPointResult":
        return cls(
            op_index=raw["op_index"],
            plan_seed=raw["plan_seed"],
            dispositions=dict(raw["dispositions"]),
            outcomes=dict(raw["outcomes"]),
            silent_lines=tuple(raw["silent_lines"]),
            trials=raw["trials"],
            recovery_ns=raw["recovery_ns"],
            recovered_keys=raw["recovered_keys"],
        )


@dataclass
class SweepResult:
    """All crash points of one sweep plus the identity that produced it."""

    workload: str
    scheme: str
    seed: int
    boundaries_total: int
    points: List[CrashPointResult] = field(default_factory=list)

    @property
    def silent_corruptions(self) -> int:
        return sum(len(point.silent_lines) for point in self.points)

    def outcome_totals(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for point in self.points:
            for outcome, count in point.outcomes.items():
                totals[outcome] = totals.get(outcome, 0) + count
        return totals

    def summary(self) -> str:
        totals = self.outcome_totals()
        parts = ", ".join(f"{name}={totals.get(name, 0)}" for name in (
            OUTCOME_RECOVERED_NEW, OUTCOME_RECOVERED_OLD,
            OUTCOME_DETECTED, OUTCOME_SILENT,
        ))
        return (
            f"{self.workload} [{self.scheme}] seed={self.seed:#x}: "
            f"{len(self.points)}/{self.boundaries_total} crash points, {parts}"
        )

    def assert_invariant(self) -> None:
        """Every injected fault was detected or recovered — never silent."""
        if self.silent_corruptions:
            lines = [hex(addr) for point in self.points for addr in point.silent_lines]
            raise AssertionError(
                f"silent corruption at {len(lines)} line(s): {', '.join(lines)}"
            )

    def to_dict(self) -> Dict:
        """JSON-safe record (the exec runner's cache/worker payload)."""
        return {
            "workload": self.workload,
            "scheme": self.scheme,
            "seed": self.seed,
            "boundaries_total": self.boundaries_total,
            "points": [point.to_dict() for point in self.points],
        }

    @classmethod
    def from_dict(cls, raw: Dict) -> "SweepResult":
        return cls(
            workload=raw["workload"],
            scheme=raw["scheme"],
            seed=raw["seed"],
            boundaries_total=raw["boundaries_total"],
            points=[CrashPointResult.from_dict(p) for p in raw["points"]],
        )


# ----------------------------------------------------------------------
# Workload resolution and deterministic payloads
# ----------------------------------------------------------------------


def workload_factory(name: str, ops: int = 0, iterations: int = 0) -> Callable[[], object]:
    """A zero-argument factory for a fresh workload instance by name.

    ``DAX-*`` names resolve to the microbenchmarks, everything else to
    the PMEMKV patterns — the same naming the CLI's other commands use.
    """
    from ..workloads import make_dax_micro, make_pmemkv_workload

    if name.upper().startswith("DAX"):
        if iterations:
            return lambda: make_dax_micro(name, iterations=iterations)
        return lambda: make_dax_micro(name)
    if ops:
        return lambda: make_pmemkv_workload(name, ops=ops)
    return lambda: make_pmemkv_workload(name)


def _pattern(seed: int, op_index: int, vaddr: int, size: int) -> bytes:
    """Deterministic payload for one store: salted by op and address so
    no two writes collide and a stale line can never masquerade as a
    fresh one."""
    out = bytearray()
    counter = 0
    while len(out) < size:
        out += hashlib.sha256(
            f"{seed}:{op_index}:{vaddr}:{counter}".encode()
        ).digest()
        counter += 1
    return bytes(out[:size])


def _replay_prefix(machine: Machine, workload, ops: List, upto: int, seed: int) -> None:
    """Re-execute ``ops[0 .. upto]`` with data-carrying stores.

    The timing trace records addresses, not payloads; the replay supplies
    the deterministic pattern through the functional path *and* issues
    the original timing op, so the crash domain and WPQ see the same
    traffic shape the recording did.
    """
    workload.setup(machine)
    last_handle = None
    for index in range(upto + 1):
        op = ops[index]
        if op.op == trace_mod.CREATE:
            last_handle = machine.create_file(
                op.path, uid=op.addr, mode=op.size, encrypted=op.flag
            )
        elif op.op == trace_mod.OPEN:
            last_handle = machine.open_file(op.path, uid=op.addr, write=op.flag)
        elif op.op == trace_mod.MMAP:
            if last_handle is None:
                raise ValueError("trace mmap with no preceding create/open")
            machine.mmap(last_handle, pages=op.size, file_page_start=op.addr)
        elif op.op == trace_mod.LOAD:
            machine.load(op.addr, op.size)
        elif op.op == trace_mod.STORE:
            machine.store_bytes(op.addr, _pattern(seed, index, op.addr, op.size))
            machine.store(op.addr, op.size)
        elif op.op == trace_mod.PERSIST:
            machine.store_bytes(op.addr, _pattern(seed, index, op.addr, op.size))
            machine.persist(op.addr, op.size)
        elif op.op == trace_mod.COMPUTE:
            machine.compute(float(op.size))
        elif op.op == trace_mod.MARK:
            machine.mark_measurement_start()
        else:
            raise ValueError(f"unknown trace op {op.op!r}")


# ----------------------------------------------------------------------
# Verification oracle
# ----------------------------------------------------------------------


def _verify_line(
    machine: Machine,
    addr: int,
    expected_new: bytes,
    crash_report: CrashReport,
    recovery_report: RecoveryReport,
) -> str:
    """Classify one line's post-recovery content."""
    controller = machine.controller
    if addr in recovery_report.failed_lines:
        return OUTCOME_DETECTED
    try:
        plaintext = controller.read_data(addr)
    except (IntegrityError, KeyUnavailableError, CounterRecoveryError):
        return OUTCOME_DETECTED
    ecc = controller.store.read_ecc(addr)
    if ecc is None or not check_line(plaintext, ecc):
        return OUTCOME_DETECTED
    if plaintext == expected_new:
        return OUTCOME_RECOVERED_NEW
    fate = crash_report.line_fates.get(addr)
    old_plain = fate.old_plain if fate is not None else None
    if plaintext == (old_plain if old_plain is not None else _ERASED):
        return OUTCOME_RECOVERED_OLD
    return OUTCOME_SILENT


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------


def sweep_workload(
    factory: Callable[[], object],
    config: Optional[MachineConfig] = None,
    *,
    plan: Optional[FaultPlan] = None,
    max_points: int = 8,
    seed: int = 0xC0FFEE,
    name: str = "",
) -> SweepResult:
    """Crash-sweep one workload; returns the per-point audit.

    ``config.functional`` is forced on — the sweep's oracle needs real
    ciphertext to audit.  ``max_points`` bounds the replay cost by
    even-spaced sampling of the persist boundaries.
    """
    base_config = config or MachineConfig()  # default scheme: fsencr
    run_config = base_config._replace(functional=True)
    plan = plan or FaultPlan()

    workload = factory()
    recorder = TraceRecorder(Machine(run_config), name=name or getattr(workload, "name", "sweep"))
    workload.setup(recorder)
    workload.run(recorder)
    ops = recorder.trace.ops
    boundaries = [i for i, op in enumerate(ops) if op.op == trace_mod.PERSIST]

    result = SweepResult(
        workload=recorder.trace.name,
        scheme=run_config.scheme.value,
        seed=seed,
        boundaries_total=len(boundaries),
    )
    if not boundaries:
        return result

    if len(boundaries) <= max_points:
        sampled = list(boundaries)
    else:
        step = len(boundaries) / max_points
        sampled = sorted({boundaries[int(i * step)] for i in range(max_points)})

    for op_index in sampled:
        machine = Machine(run_config)
        _replay_prefix(machine, factory(), ops, op_index, seed)
        truth = dict(machine.controller._plaintext_shadow)
        point_plan = plan.derive(op_index)
        crash_report = machine.crash(point_plan)
        recovery_report = machine.reboot()

        outcomes: Dict[str, int] = {}
        silent: List[int] = []
        for addr in sorted(truth):
            outcome = _verify_line(
                machine, addr, truth[addr], crash_report, recovery_report
            )
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
            if outcome == OUTCOME_SILENT:
                silent.append(addr)
        result.points.append(
            CrashPointResult(
                op_index=op_index,
                plan_seed=point_plan.seed,
                dispositions={
                    "drained": crash_report.drained,
                    "dropped": crash_report.dropped,
                    "torn": crash_report.torn,
                    "torn_bursts": crash_report.torn_bursts,
                    "metadata_flips": len(crash_report.metadata_flips),
                },
                outcomes=outcomes,
                silent_lines=tuple(silent),
                trials=recovery_report.trials,
                recovery_ns=recovery_report.recovery_ns,
                recovered_keys=recovery_report.ott_keys_recovered,
            )
        )
    return result


# ----------------------------------------------------------------------
# The (scheme x fault-profile) matrix
# ----------------------------------------------------------------------

#: Scheme columns of the matrix, straight from the registry (every
#: SchemeSpec with a ``crash_matrix_order``).  The crash-consistency
#: claim is universal over the *secure* configurations: FsEncr, the
#: baseline it is measured against, FsEncr with the explicit WPQ model
#: (whose burst-drain path exercises a different in-flight tail shape),
#: and FsEncr with Anubis shadow recovery.  Registering a new scheme
#: with a matrix order grows this tuple — no edit here.
MATRIX_SCHEME_LABELS = crash_matrix_names()


def matrix_configs(base: Optional[MachineConfig] = None) -> List[Tuple[str, MachineConfig]]:
    """The matrix's scheme columns derived from one base config.

    The base's WPQ model is normalised off first so that only columns
    that *pin* it (e.g. ``fsencr+wpq``) run with it — column identity
    comes from the registry, not from whatever base the caller held.
    """
    base = (base or MachineConfig()).with_wpq(False)
    return [
        (name, get_scheme(name).configure(base)) for name in crash_matrix_names()
    ]


@dataclass
class MatrixResult:
    """One :class:`SweepResult` per (scheme, fault-profile) cell."""

    workload: str
    seed: int
    cells: Dict[Tuple[str, str], SweepResult] = field(default_factory=dict)

    @property
    def silent_corruptions(self) -> int:
        return sum(cell.silent_corruptions for cell in self.cells.values())

    def assert_invariant(self) -> None:
        """Every cell's silent bucket is empty — the universal claim."""
        offenders = [
            f"{scheme}/{profile}: {cell.silent_corruptions}"
            for (scheme, profile), cell in sorted(self.cells.items())
            if cell.silent_corruptions
        ]
        if offenders:
            raise AssertionError(
                "silent corruption in matrix cell(s): " + "; ".join(offenders)
            )

    def summary(self) -> str:
        """One aligned row per cell, totals last."""
        lines = [f"{self.workload} seed={self.seed:#x}"]
        width = max(
            (len(f"{s}/{p}") for s, p in self.cells), default=0
        )
        for (scheme, profile), cell in sorted(self.cells.items()):
            totals = cell.outcome_totals()
            lines.append(
                f"  {f'{scheme}/{profile}':<{width}}  "
                f"points={len(cell.points)} "
                + " ".join(
                    f"{name}={totals.get(name, 0)}"
                    for name in (
                        OUTCOME_RECOVERED_NEW, OUTCOME_RECOVERED_OLD,
                        OUTCOME_DETECTED, OUTCOME_SILENT,
                    )
                )
            )
        lines.append(f"  total silent={self.silent_corruptions}")
        return "\n".join(lines)


def sweep_matrix(
    factory: "Callable[[], object] | str",
    base_config: Optional[MachineConfig] = None,
    *,
    profiles: Optional[Dict[str, FaultPlan]] = None,
    schemes: Optional[List[Tuple[str, MachineConfig]]] = None,
    max_points: int = 8,
    seed: int = 0xC0FFEE,
    name: str = "",
    ops: int = 0,
    iterations: int = 0,
    runner=None,
) -> MatrixResult:
    """Run the full (scheme x fault-profile) crash-sweep matrix.

    Each cell is an independent :func:`sweep_workload` call; the cell's
    plan is the profile re-seeded with the sweep seed so two cells with
    the same profile still derive distinct per-point plans from their
    own boundary indices, while the whole matrix stays a pure function
    of (workload, base config, seed).

    ``factory`` is either a zero-argument callable (the historical
    in-process path) or a workload *name* string.  Passing a name makes
    the matrix runnable on a :class:`~repro.exec.ExperimentRunner`
    (``runner=``): each cell becomes a picklable
    :class:`~repro.exec.CellSpec`, so the grid fans out over worker
    processes and warm cells are served from the on-disk result cache —
    bit-identical to the serial path either way.  A callable factory
    cannot cross a process boundary, so combining one with ``runner``
    raises.
    """
    profiles = profiles if profiles is not None else dict(FAULT_PROFILES)
    schemes = schemes if schemes is not None else matrix_configs(base_config)
    result = MatrixResult(workload=name or "matrix", seed=seed)

    grid = [
        (scheme_label, config, profile_name, profile)
        for scheme_label, config in schemes
        for profile_name, profile in sorted(profiles.items())
    ]

    if runner is not None:
        from ..exec import CellSpec, payload_to_sweep

        if not isinstance(factory, str):
            raise TypeError(
                "sweep_matrix(runner=...) needs a workload name, not a "
                "callable — a factory function cannot cross the worker "
                "process boundary or be content-addressed for the cache"
            )
        cells = [
            CellSpec(
                kind="sweep",
                workload=factory,
                config=config,
                ops=ops,
                iterations=iterations,
                plan=profile.with_seed(seed),
                max_points=max_points,
                sweep_seed=seed,
                name=name,
            )
            for scheme_label, config, profile_name, profile in grid
        ]
        for (scheme_label, _config, profile_name, _profile), cell_result in zip(
            grid, runner.run(cells)
        ):
            if cell_result is None:  # quarantined under failure_policy="continue"
                continue
            cell = payload_to_sweep(cell_result.payload)
            result.cells[(scheme_label, profile_name)] = cell
            if not result.workload or result.workload == "matrix":
                result.workload = cell.workload
        return result

    if isinstance(factory, str):
        from ..exec import resolve_workload

        factory = resolve_workload(factory, ops=ops, iterations=iterations)
    for scheme_label, config, profile_name, profile in grid:
        cell = sweep_workload(
            factory,
            config,
            plan=profile.with_seed(seed),
            max_points=max_points,
            seed=seed,
            name=name,
        )
        result.cells[(scheme_label, profile_name)] = cell
        if not result.workload or result.workload == "matrix":
            result.workload = cell.workload
    return result
