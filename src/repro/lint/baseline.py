"""Baseline file: accepted pre-existing findings, committed to the repo.

The baseline lets the linter land with hard-failing CI even while some
findings are intentionally tolerated: each entry grandfathers ``count``
occurrences of one (rule, path, message) fingerprint.  Line numbers are
deliberately not part of the identity so edits elsewhere in a file do
not churn the baseline.  Entries may carry a human ``reason`` string;
the matcher ignores it.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from .engine import Finding, LintError

__all__ = ["Baseline", "split_findings"]

_VERSION = 1


class Baseline:
    """Multiset of grandfathered finding fingerprints."""

    def __init__(self, entries: Counter = None, reasons: Dict[Tuple[str, str, str], str] = None) -> None:
        self.entries: Counter = entries or Counter()
        self.reasons: Dict[Tuple[str, str, str], str] = reasons or {}

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise LintError(f"cannot read baseline {path}: {exc}") from exc
        if raw.get("version") != _VERSION:
            raise LintError(f"baseline {path}: unsupported version {raw.get('version')!r}")
        entries: Counter = Counter()
        reasons: Dict[Tuple[str, str, str], str] = {}
        for item in raw.get("findings", []):
            fingerprint = (item["rule"], item["path"], item["message"])
            entries[fingerprint] += int(item.get("count", 1))
            if item.get("reason"):
                reasons[fingerprint] = item["reason"]
        return cls(entries, reasons)

    @classmethod
    def from_findings(
        cls, findings: List[Finding], previous: "Baseline" = None
    ) -> "Baseline":
        """A baseline accepting exactly ``findings``.

        ``previous`` carries human ``reason`` annotations forward for
        fingerprints that still occur — re-running ``--write-baseline``
        must never silently strip the documented rationale for debt.
        """
        entries = Counter(f.fingerprint for f in findings)
        reasons: Dict[Tuple[str, str, str], str] = {}
        if previous is not None:
            reasons = {
                fingerprint: reason
                for fingerprint, reason in previous.reasons.items()
                if fingerprint in entries
            }
        return cls(entries, reasons)

    def pruned(self, findings: List[Finding]) -> "Baseline":
        """This baseline with paid-off debt removed.

        Entry counts are clamped to the number of matching findings that
        still occur (an entry none of them matches disappears); reasons
        survive on whatever remains.
        """
        actual = Counter(f.fingerprint for f in findings)
        entries = Counter()
        for fingerprint, count in self.entries.items():
            kept = min(count, actual.get(fingerprint, 0))
            if kept:
                entries[fingerprint] = kept
        reasons = {
            fingerprint: reason
            for fingerprint, reason in self.reasons.items()
            if fingerprint in entries
        }
        return Baseline(entries, reasons)

    def write(self, path: Path) -> None:
        items = []
        for (rule, rel, message), count in sorted(self.entries.items()):
            item = {"rule": rule, "path": rel, "message": message, "count": count}
            reason = self.reasons.get((rule, rel, message))
            if reason:
                item["reason"] = reason
            items.append(item)
        payload = {"version": _VERSION, "findings": items}
        path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8")


def split_findings(
    findings: List[Finding], baseline: Baseline
) -> Tuple[List[Finding], List[Finding], List[Dict[str, object]]]:
    """Partition findings into (new, baselined) and report stale entries.

    Stale entries — baseline fingerprints no longer produced — are
    returned so ``--strict`` can fail on them: a stale entry means the
    debt was paid and the baseline should shrink.
    """
    budget = Counter(baseline.entries)
    new: List[Finding] = []
    matched: List[Finding] = []
    for finding in findings:
        if budget.get(finding.fingerprint, 0) > 0:
            budget[finding.fingerprint] -= 1
            matched.append(finding)
        else:
            new.append(finding)
    stale = [
        {"rule": rule, "path": rel, "message": message, "count": count}
        for (rule, rel, message), count in sorted(budget.items())
        if count > 0
    ]
    return new, matched, stale
