"""Incremental on-disk index cache for module summaries.

Extraction (one full AST walk per file) dominates flow-graph build time,
and almost every lint run sees an almost-unchanged tree — so summaries
are cached under ``.repro-lint-index/`` keyed on each file's content
fingerprint (the same per-file hash ``repro.exec.fingerprint`` feeds the
result cache, so both caches agree on what "changed" means).

The cache is a single JSON document: ``{rel: {fingerprint, summary}}``.
A warm run loads it once, serves every unchanged file without parsing
it, re-extracts the rest, and atomically rewrites the document.  A
corrupt or version-skewed cache is treated as empty — never an error.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ...exec.fingerprint import file_fingerprint
from .index import INDEX_FORMAT, ModuleSummary, extract_module

__all__ = ["IndexCacheStats", "FlowIndexCache", "load_summaries"]

_CACHE_FILE = "index.json"


@dataclass
class IndexCacheStats:
    """Hit/miss accounting for one load_summaries pass."""

    files: int = 0
    hits: int = 0
    misses: int = 0
    parse_errors: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "files": self.files,
            "hits": self.hits,
            "misses": self.misses,
            "parse_errors": self.parse_errors,
        }


class FlowIndexCache:
    """The ``.repro-lint-index/`` persistence layer.

    ``directory=None`` disables persistence entirely (every file is a
    miss and nothing is written) — the engine uses that for one-shot
    in-memory runs, e.g. linting fixture trees in tests that opt out.
    """

    def __init__(self, directory: Optional[Path]) -> None:
        self.directory = Path(directory) if directory is not None else None
        self._entries: Dict[str, Dict] = {}
        self._loaded = False

    # -- persistence -----------------------------------------------------

    def _load(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        if self.directory is None:
            return
        path = self.directory / _CACHE_FILE
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if raw.get("format") != INDEX_FORMAT:
            return
        entries = raw.get("files")
        if isinstance(entries, dict):
            self._entries = entries

    def save(self) -> None:
        if self.directory is None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {"format": INDEX_FORMAT, "files": self._entries}
        path = self.directory / _CACHE_FILE
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, separators=(",", ":")), encoding="utf-8")
        os.replace(tmp, path)

    # -- lookup ----------------------------------------------------------

    def get(self, rel: str, fingerprint: str) -> Optional[ModuleSummary]:
        self._load()
        entry = self._entries.get(rel)
        if entry is None or entry.get("fingerprint") != fingerprint:
            return None
        try:
            return ModuleSummary.from_dict(entry["summary"])
        except (KeyError, TypeError):
            return None

    def put(self, rel: str, fingerprint: str, summary: ModuleSummary) -> None:
        self._load()
        self._entries[rel] = {"fingerprint": fingerprint, "summary": summary.to_dict()}

    def prune(self, live_rels) -> None:
        """Drop entries for files that no longer exist in the lint set."""
        self._load()
        keep = set(live_rels)
        for rel in list(self._entries):
            if rel not in keep:
                del self._entries[rel]


def load_summaries(
    files: List[Tuple[Path, str]],
    cache: FlowIndexCache,
) -> Tuple[Dict[str, ModuleSummary], IndexCacheStats]:
    """Summaries for ``(path, rel)`` pairs, served from cache when clean.

    Files that fail to parse are skipped (counted in ``parse_errors``) —
    the ordinary lint pass reports syntax errors properly; the flow graph
    just proceeds without the broken module.
    """
    stats = IndexCacheStats(files=len(files))
    out: Dict[str, ModuleSummary] = {}
    for path, rel in files:
        try:
            fingerprint = file_fingerprint(path)
        except OSError:
            stats.parse_errors += 1
            continue
        cached = cache.get(rel, fingerprint)
        if cached is not None:
            stats.hits += 1
            out[rel] = cached
            continue
        stats.misses += 1
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except (OSError, SyntaxError):
            stats.parse_errors += 1
            continue
        summary = extract_module(rel, tree)
        out[rel] = summary
        cache.put(rel, fingerprint, summary)
    cache.prune(out.keys())
    cache.save()
    return out, stats
