"""Per-module extraction: one parsed file -> a JSON-serialisable summary.

The flow engine never holds ASTs for the whole project at once.  Each
file is walked exactly once and reduced to a :class:`ModuleSummary` —
imports, classes, and per-function :class:`FunctionSummary` tables of
calls, assignments, returns, and output surfaces — in plain dict/list
form so the incremental index cache can round-trip it through JSON
without re-parsing unchanged files.

The expression model is deliberately coarse: an expression occurrence is
summarised as the set of names it reads, the attribute chains it reads,
the call sites it contains, and its string fragments.  That is enough
for name-level taint propagation and call-graph construction; it cannot
distinguish branches of a conditional (flow-insensitive by design —
docs/LINT.md documents the imprecision).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

__all__ = [
    "INDEX_FORMAT",
    "ModuleSummary",
    "FunctionSummary",
    "extract_module",
    "module_name_for",
]

#: Bump when the summary shape changes — stale cache entries are then
#: re-extracted instead of misread.
INDEX_FORMAT = 2

#: Calls whose result drops taint: length/shape metadata, strong digests
#: (a SHA-256 of a key is deliberately exported by e.g. the admin
#: credential path), and authenticated encryption of one key under
#: another (the ciphertext is the at-rest form).
DEFAULT_SANITIZERS = (
    "len",
    "bool",
    "isinstance",
    "type",
    "id",
    "sha256",
    "sha384",
    "sha512",
    "blake2b",
    "blake2s",
    "new",  # hashlib.new / hmac.new — keyed digests, not key material
    "compare_digest",
    "encrypt_block",
)


class FunctionSummary:
    """Dataflow facts for one function or method (or the module body)."""

    __slots__ = (
        "qualname",
        "lineno",
        "params",
        "param_types",
        "local_types",
        "return_types",
        "calls",
        "assigns",
        "returns",
        "fstrings",
        "raises",
        "subscript_stores",
    )

    def __init__(self, qualname: str, lineno: int) -> None:
        self.qualname = qualname
        self.lineno = lineno
        self.params: List[str] = []
        #: param / local name -> candidate class-name annotations.
        self.param_types: Dict[str, List[str]] = {}
        self.local_types: Dict[str, List[str]] = {}
        #: class names the return annotation mentions (types the call
        #: result at every resolved call site of this function).
        self.return_types: List[str] = []
        #: call sites: {"chain": [...], "args": [expr], "kwargs": {k: expr},
        #:  "line": int, "col": int}
        self.calls: List[Dict] = []
        #: [{"targets": [name], "expr": expr}]
        self.assigns: List[Dict] = []
        #: [expr] for each return statement
        self.returns: List[Dict] = []
        #: [{"expr": expr, "line": int, "col": int}] per f-string hole
        self.fstrings: List[Dict] = []
        #: [{"call": call-index or None, "expr": expr, "line", "col"}]
        self.raises: List[Dict] = []
        #: ``x[...] = v`` stores: [{"target_chain": [...], "expr": expr}]
        self.subscript_stores: List[Dict] = []

    def to_dict(self) -> Dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, raw: Dict) -> "FunctionSummary":
        out = cls(raw["qualname"], raw["lineno"])
        for slot in cls.__slots__:
            setattr(out, slot, raw[slot])
        return out


class ModuleSummary:
    """Everything the flow graph needs to know about one module."""

    __slots__ = (
        "rel",
        "name",
        "is_package",
        "imports",
        "classes",
        "functions",
    )

    def __init__(self, rel: str, name: str, is_package: bool) -> None:
        self.rel = rel
        self.name = name
        self.is_package = is_package
        #: local binding -> ["module"] or ["module", "symbol"]
        self.imports: Dict[str, List[str]] = {}
        #: class name -> {"bases": [...], "attr_types": {attr: [classes]},
        #:  "methods": [qualname, ...], "lineno": int, "decorators": [...]}
        self.classes: Dict[str, Dict] = {}
        #: qualname -> FunctionSummary ("<module>" holds the module body)
        self.functions: Dict[str, FunctionSummary] = {}

    def to_dict(self) -> Dict:
        return {
            "rel": self.rel,
            "name": self.name,
            "is_package": self.is_package,
            "imports": self.imports,
            "classes": self.classes,
            "functions": {q: fn.to_dict() for q, fn in self.functions.items()},
        }

    @classmethod
    def from_dict(cls, raw: Dict) -> "ModuleSummary":
        out = cls(raw["rel"], raw["name"], raw["is_package"])
        out.imports = raw["imports"]
        out.classes = raw["classes"]
        out.functions = {
            q: FunctionSummary.from_dict(fn) for q, fn in raw["functions"].items()
        }
        return out


def module_name_for(rel: str) -> Tuple[str, bool]:
    """Dotted module name for a repo-relative path, plus is-package.

    ``src/repro/crypto/keys.py`` -> ``repro.crypto.keys``;
    ``src/repro/crypto/__init__.py`` -> ``repro.crypto`` (package).
    A leading ``src/`` is dropped so import targets match the names
    modules import each other by.
    """
    parts = rel.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    is_package = bool(parts) and parts[-1] == "__init__"
    if is_package:
        parts = parts[:-1]
    return ".".join(parts), is_package


# ----------------------------------------------------------------------
# Expression summaries
# ----------------------------------------------------------------------


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


class _Extractor(ast.NodeVisitor):
    """One pass over a module AST filling a :class:`ModuleSummary`."""

    def __init__(self, summary: ModuleSummary) -> None:
        self.summary = summary
        self._fn_stack: List[FunctionSummary] = []
        self._class_stack: List[str] = []
        module_fn = FunctionSummary("<module>", 1)
        summary.functions["<module>"] = module_fn
        self._module_fn = module_fn

    # -- helpers ---------------------------------------------------------

    @property
    def _fn(self) -> FunctionSummary:
        return self._fn_stack[-1] if self._fn_stack else self._module_fn

    def _annotation_names(self, node: Optional[ast.AST]) -> List[str]:
        """Candidate class names mentioned by an annotation expression."""
        if node is None:
            return []
        names: List[str] = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                names.append(sub.id)
            elif isinstance(sub, ast.Attribute):
                names.append(sub.attr)
            elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                # String annotations: take the last dotted component of
                # every identifier-looking token.
                token = sub.value.strip()
                for piece in token.replace("[", " ").replace("]", " ").split():
                    names.append(piece.split(".")[-1].strip('"\''))
        return [n for n in names if n and n[0].isupper()]

    def _expr(self, node: Optional[ast.AST], sanitizers=DEFAULT_SANITIZERS) -> Dict:
        """Summarise an expression subtree.

        Returns ``{"names": [...], "attrs": [chain, ...], "calls": [call
        index, ...], "consts": [str, ...]}``.  Subtrees under a sanitizer
        call contribute nothing (their taint is deliberately dropped),
        but the sanitizer call itself is still recorded as a call site so
        the call graph sees the edge.
        """
        out: Dict = {"names": [], "attrs": [], "calls": [], "consts": []}
        if node is None:
            return out
        self._walk_expr(node, out, sanitizers)
        return out

    def _walk_expr(self, node: ast.AST, out: Dict, sanitizers) -> None:
        if isinstance(node, ast.Call):
            index = self._record_call(node, sanitizers)
            chain = _attr_chain(node.func) or []
            tail = chain[-1] if chain else ""
            if tail in sanitizers:
                # The call is on the graph, but nothing below it taints
                # the surrounding expression.
                return
            out["calls"].append(index)
            return
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                out["names"].append(node.id)
            return
        if isinstance(node, ast.Attribute):
            chain = _attr_chain(node)
            if chain is not None:
                out["attrs"].append(chain)
                return
            # Fall through into the (non-name) base expression.
            self._walk_expr(node.value, out, sanitizers)
            return
        if isinstance(node, ast.Constant):
            if isinstance(node.value, str):
                out["consts"].append(node.value)
            return
        if isinstance(node, ast.FormattedValue):
            # An f-string hole is an output surface wherever it occurs
            # (assigned, passed, raised); record it and read its value.
            self._fn.fstrings.append(
                {
                    "expr": self._expr(node.value, sanitizers),
                    "line": node.lineno,
                    "col": node.col_offset,
                }
            )
            self._walk_expr(node.value, out, sanitizers)
            return
        if isinstance(node, (ast.Lambda,)):
            return  # deferred bodies are walked when (if) they are called
        for child in ast.iter_child_nodes(node):
            self._walk_expr(child, out, sanitizers)

    def _record_call(self, node: ast.Call, sanitizers=DEFAULT_SANITIZERS) -> int:
        fn = self._fn
        chain = _attr_chain(node.func)
        if chain is None:
            # Call on a computed callee (``factory()(...)`` etc.); record
            # the inner expression so its own calls are still indexed.
            inner = self._expr(node.func, sanitizers)
            chain = ["<dynamic>"]
            base_args = [inner]
        else:
            base_args = []
        entry = {
            "chain": chain,
            "args": base_args + [self._expr(arg, sanitizers) for arg in node.args],
            "kwargs": {
                kw.arg if kw.arg is not None else "**": self._expr(kw.value, sanitizers)
                for kw in node.keywords
            },
            "line": node.lineno,
            "col": node.col_offset,
        }
        fn.calls.append(entry)
        return len(fn.calls) - 1

    # -- imports ---------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.summary.imports[bound] = [target]

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = self._resolve_from(node)
        if base is None:
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            self.summary.imports[bound] = [base, alias.name] if base else [alias.name]

    def _resolve_from(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module or ""
        parts = self.summary.name.split(".") if self.summary.name else []
        if not self.summary.is_package:
            parts = parts[:-1]
        up = node.level - 1
        if up > len(parts):
            return None
        base = parts[: len(parts) - up] if up else parts
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base)

    # -- classes and functions ------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qual = ".".join(self._class_stack + [node.name])
        bases = []
        for b in node.bases:
            chain = _attr_chain(b)
            if chain:
                bases.append(chain[-1])
        decorators = []
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            chain = _attr_chain(target)
            if chain:
                decorators.append(chain[-1])
        info = {
            "bases": bases,
            "attr_types": {},
            "methods": [],
            "lineno": node.lineno,
            "decorators": decorators,
        }
        self.summary.classes[qual] = info
        # Dataclass-style annotated attributes type the instance.
        for item in node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                candidates = self._annotation_names(item.annotation)
                if candidates:
                    info["attr_types"][item.target.id] = candidates
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node) -> None:
        qual = ".".join(self._class_stack + [node.name])
        fn = FunctionSummary(qual, node.lineno)
        args = list(node.args.posonlyargs) + list(node.args.args)
        fn.params = [a.arg for a in args]
        if node.args.vararg is not None:
            fn.params.append(node.args.vararg.arg)
        fn.params.extend(a.arg for a in node.args.kwonlyargs)
        if node.args.kwarg is not None:
            fn.params.append(node.args.kwarg.arg)
        for a in args + list(node.args.kwonlyargs):
            candidates = self._annotation_names(a.annotation)
            if candidates:
                fn.param_types[a.arg] = candidates
        fn.return_types = self._annotation_names(node.returns)
        self.summary.functions[qual] = fn
        if self._class_stack:
            cls = self.summary.classes.get(".".join(self._class_stack))
            if cls is not None:
                cls["methods"].append(qual)
        self._fn_stack.append(fn)
        for stmt in node.body:
            self.visit(stmt)
        self._fn_stack.pop()

    # -- statements that carry dataflow ---------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        expr = self._expr(node.value)
        targets: List[str] = []
        for target in node.targets:
            self._collect_targets(target, targets, expr)
        if targets:
            self._fn.assigns.append({"targets": targets, "expr": expr})
        self._record_ctor_types(node.value, targets)
        self._record_param_passthrough(node.value, targets)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        targets: List[str] = []
        expr = self._expr(node.value)
        self._collect_targets(node.target, targets, expr)
        if targets:
            if node.value is not None:
                self._fn.assigns.append({"targets": targets, "expr": expr})
            candidates = self._annotation_names(node.annotation)
            if candidates:
                for name in targets:
                    self._fn.local_types[name] = candidates
                self._record_self_attr_types(targets, candidates)
        if node.value is not None:
            self._record_ctor_types(node.value, targets)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        targets: List[str] = []
        expr = self._expr(node.value)
        self._collect_targets(node.target, targets, expr)
        if targets:
            self._fn.assigns.append({"targets": targets, "expr": expr})

    def visit_For(self, node: ast.For) -> None:
        # ``for x in expr`` assigns elements of expr to x: element taint
        # approximates container taint.
        targets: List[str] = []
        expr = self._expr(node.iter)
        self._collect_targets(node.target, targets, expr)
        if targets:
            self._fn.assigns.append({"targets": targets, "expr": expr})
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            expr = self._expr(item.context_expr)
            targets: List[str] = []
            if item.optional_vars is not None:
                self._collect_targets(item.optional_vars, targets, expr)
            if targets:
                self._fn.assigns.append({"targets": targets, "expr": expr})
        for stmt in node.body:
            self.visit(stmt)

    def _collect_targets(self, target: ast.AST, out: List[str], expr: Dict) -> None:
        if isinstance(target, ast.Name):
            out.append(target.id)
        elif isinstance(target, ast.Attribute):
            chain = _attr_chain(target)
            if chain is not None:
                out.append(".".join(chain))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._collect_targets(elt, out, expr)
        elif isinstance(target, ast.Subscript):
            chain = _attr_chain(target.value)
            if chain is not None:
                self._fn.subscript_stores.append(
                    {"target_chain": chain, "expr": expr}
                )
        elif isinstance(target, ast.Starred):
            self._collect_targets(target.value, out, expr)

    def _record_ctor_types(self, value: ast.AST, targets: List[str]) -> None:
        """``x = ClassName(...)`` types x (and ``self.x``) as ClassName."""
        if not (isinstance(value, ast.Call) and targets):
            return
        chain = _attr_chain(value.func)
        if not chain:
            return
        tail = chain[-1]
        if not (tail and tail[0].isupper()):
            return
        for name in targets:
            self._fn.local_types[name] = [tail]
        self._record_self_attr_types(targets, [tail])

    def _record_param_passthrough(self, value: ast.AST, targets: List[str]) -> None:
        """``self.x = param`` copies the parameter's annotated type."""
        if not (isinstance(value, ast.Name) and targets):
            return
        candidates = self._fn.param_types.get(value.id)
        if candidates:
            self._record_self_attr_types(targets, candidates)

    def _record_self_attr_types(self, targets: List[str], candidates: List[str]) -> None:
        if not self._class_stack:
            return
        cls = self.summary.classes.get(".".join(self._class_stack))
        if cls is None:
            return
        for name in targets:
            if name.startswith("self."):
                cls["attr_types"].setdefault(name[len("self."):], candidates)

    def visit_Return(self, node: ast.Return) -> None:
        self._fn.returns.append(self._expr(node.value))

    def visit_Raise(self, node: ast.Raise) -> None:
        expr = self._expr(node.exc)
        self._fn.raises.append(
            {
                # The constructor call (if the raise builds one inline)
                # was just recorded by _expr; its args carry the taint.
                "call": expr["calls"][0] if expr["calls"] else None,
                "expr": expr,
                "line": node.lineno,
                "col": node.col_offset,
            }
        )

    def visit_Expr(self, node: ast.Expr) -> None:
        # Bare expression statements (most call sites live here).
        self._expr(node.value)

    def generic_visit(self, node: ast.AST) -> None:
        # Statements without a dedicated visitor (if/while/try/assert...)
        # still carry call sites in their expression fields.
        for _field, value in ast.iter_fields(node):
            if isinstance(value, ast.expr):
                self._expr(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.expr):
                        self._expr(item)
                    elif isinstance(item, ast.AST):
                        self.visit(item)
            elif isinstance(value, ast.AST):
                self.visit(value)


def extract_module(rel: str, tree: ast.Module) -> ModuleSummary:
    """Walk one parsed module into its :class:`ModuleSummary`."""
    name, is_package = module_name_for(rel)
    summary = ModuleSummary(rel, name, is_package)
    extractor = _Extractor(summary)
    for stmt in tree.body:
        extractor.visit(stmt)
    return summary
