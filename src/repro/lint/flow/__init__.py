"""repro.lint.flow — whole-program analysis beneath the rule engine.

The per-file rules see one AST at a time; the flow layer sees the whole
project.  It builds three artefacts (docs/LINT.md, "Flow analysis"):

1. a module-level import graph,
2. a project symbol table (functions, methods, class attribute tables),
3. an approximate call graph over ``src/repro``,

then runs interprocedural passes on top — taint propagation from key
material and reachability queries — that the four cross-module rules
(``key-material-taint``, ``worker-entropy-reachability``,
``persist-reaches-wpq``, ``stats-flow``) consume.

The graph is always built from the *full* configured lint paths, even
when only a subset of files is being linted — a single-file lint or a
``--changed`` run still reasons about the whole program.  Extraction is
incremental: per-file summaries are cached on disk keyed on the same
content fingerprints ``repro.exec.fingerprint`` uses (see cache.py).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from ..engine import collect_files
from .cache import FlowIndexCache, IndexCacheStats, load_summaries
from .graph import FlowGraph, build_graph
from .index import INDEX_FORMAT, FunctionSummary, ModuleSummary, extract_module, module_name_for
from .taint import DEFAULT_KEY_SOURCES, TaintState, solve_taint

__all__ = [
    "FlowAnalysis",
    "FlowGraph",
    "FlowIndexCache",
    "FunctionSummary",
    "IndexCacheStats",
    "ModuleSummary",
    "TaintState",
    "build_flow",
    "build_graph",
    "extract_module",
    "module_name_for",
    "solve_taint",
    "DEFAULT_KEY_SOURCES",
    "INDEX_FORMAT",
]


class FlowAnalysis:
    """The built graph plus the solved taint facts, shared by all rules."""

    def __init__(
        self,
        graph: FlowGraph,
        taint: TaintState,
        cache_stats: IndexCacheStats,
    ) -> None:
        self.graph = graph
        self.taint = taint
        self.cache_stats = cache_stats

    def summary_stats(self) -> Dict[str, object]:
        """The ``flow`` block of the CLI's JSON summary."""
        return {
            "graph": dict(self.graph.stats),
            "index_cache": self.cache_stats.to_dict(),
        }


def _rel_for(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def flow_file_set(
    root: Path,
    options: Dict[str, object],
    extra: Iterable = (),
) -> List[Tuple[Path, str]]:
    """The ``(path, rel)`` pairs the whole-program graph is built from.

    Configured paths that do not exist under ``root`` are skipped (small
    fixture trees in tests rarely materialise every default path);
    ``extra`` — typically the files currently being linted — is unioned
    in so the graph always covers at least what the engine sees.
    """
    pairs: Dict[str, Path] = {}
    raw_paths = options.get("paths", []) or []
    targets = [root / str(p) for p in raw_paths if (root / str(p)).exists()]
    if targets:
        for path in collect_files(targets, root):
            pairs.setdefault(_rel_for(path, root), path)
    for item in extra:
        # Accept SourceFile-like objects or plain (path, rel) tuples.
        if isinstance(item, tuple):
            path, rel = item
        else:
            path, rel = item.path, item.rel
        pairs.setdefault(rel, path)
    return sorted(((path, rel) for rel, path in pairs.items()), key=lambda p: p[1])


def build_flow(
    root: Path,
    options: Dict[str, object],
    extra_files: Iterable = (),
) -> FlowAnalysis:
    """Build (or incrementally rebuild) the whole-program analysis."""
    root = Path(root)
    files = flow_file_set(root, options, extra_files)
    index_dir = options.get("flow-index-dir", ".repro-lint-index")
    directory: Optional[Path] = None
    if index_dir:
        candidate = Path(str(index_dir))
        directory = candidate if candidate.is_absolute() else root / candidate
    cache = FlowIndexCache(directory)
    summaries, stats = load_summaries(files, cache)
    graph = build_graph(summaries)
    taint = solve_taint(graph, options)
    return FlowAnalysis(graph, taint, stats)
