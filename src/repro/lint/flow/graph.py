"""Whole-program graphs: imports, symbols, and the approximate call graph.

Built from :class:`~repro.lint.flow.index.ModuleSummary` objects, never
from ASTs — so a warm index cache gives a warm graph.  Resolution is a
deliberate approximation (documented in docs/LINT.md):

* bare names resolve through the module's imports (with re-export
  chasing), then its own top-level functions and classes;
* ``self.method()`` resolves inside the enclosing class, walking base
  classes by name;
* ``obj.method()`` resolves through ``obj``'s inferred type — parameter
  annotations, ``x = ClassName(...)`` constructor assignments, and
  ``self.attr`` attribute types — falling back to the *unique* class
  that defines ``method`` when the receiver type is unknown;
* a method name defined by several classes with an unknown receiver is
  recorded as *ambiguous* and contributes no edge (favouring precision
  over recall: reachability rules would otherwise drown in false paths).

Function identity is ``"module.name:qualname"`` throughout.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .index import FunctionSummary, ModuleSummary

__all__ = ["CallResolution", "FlowGraph", "build_graph"]

#: Re-export chasing depth guard (cycles in package __init__ files).
_MAX_CHASE = 8

#: Method names the builtin containers define: an unknown receiver with
#: one of these is far more likely a list/dict/set/str than the single
#: project class that happens to share the name (``w.append(...)`` must
#: not edge into ``Trace.append``).  The unique-definition fallback
#: skips them; typed receivers still resolve normally.
_COLLECTION_METHODS = frozenset(
    {
        "append", "extend", "insert", "pop", "remove", "clear", "copy",
        "update", "get", "setdefault", "keys", "values", "items", "add",
        "discard", "split", "rsplit", "join", "strip", "lstrip", "rstrip",
        "encode", "decode", "format", "replace", "startswith", "endswith",
        "read", "write", "close", "sort", "reverse", "count", "index",
    }
)


class CallResolution:
    """Where one call site was resolved to."""

    __slots__ = ("targets", "origin", "result_types", "kind")

    def __init__(
        self,
        targets: Sequence[str] = (),
        origin: Optional[str] = None,
        result_types: Sequence[str] = (),
        kind: str = "unresolved",
    ) -> None:
        self.targets = list(targets)
        self.origin = origin
        self.result_types = list(result_types)
        self.kind = kind


class FlowGraph:
    """The project-wide index the flow rules query."""

    def __init__(self, summaries: Dict[str, ModuleSummary]) -> None:
        #: rel path -> summary
        self.modules: Dict[str, ModuleSummary] = dict(summaries)
        #: dotted module name -> summary
        self.by_name: Dict[str, ModuleSummary] = {}
        #: "module:qualname" -> (ModuleSummary, FunctionSummary)
        self.functions: Dict[str, Tuple[ModuleSummary, FunctionSummary]] = {}
        #: bare class name -> [(ModuleSummary, class qualname)]
        self.classes_by_name: Dict[str, List[Tuple[ModuleSummary, str]]] = {}
        #: method name -> [function key] across every class
        self.methods_by_name: Dict[str, List[str]] = {}
        #: call resolutions, aligned with FunctionSummary.calls
        self.resolutions: Dict[str, List[CallResolution]] = {}
        #: caller key -> callee keys
        self.edges: Dict[str, Set[str]] = {}
        #: callee key -> caller keys
        self.redges: Dict[str, Set[str]] = {}
        #: module name -> imported module names (project-internal only)
        self.module_imports: Dict[str, Set[str]] = {}
        #: rel path -> function keys defined there (rule dispatch index)
        self.functions_by_rel: Dict[str, List[str]] = {}
        #: bare class name -> bare names of direct subclasses
        self.subclasses: Dict[str, Set[str]] = {}
        self.stats = {
            "modules": 0,
            "functions": 0,
            "call_sites": 0,
            "resolved": 0,
            "ambiguous": 0,
            "external": 0,
            "unresolved": 0,
        }
        self._build_tables()
        self._resolve_all()
        # Iterated refinement: each resolution round lets ``x = obj.m()``
        # type ``x`` (and ``self.attr``) from the callee's return
        # annotation or a class alias; re-resolving with the richer
        # tables then connects calls through builder-wired attributes.
        # Two-hop chains (alias -> ctor -> attr) need a second round;
        # the cap bounds pathological type churn.
        for _round in range(3):
            if not self._augment_types_from_returns():
                break
            self._reset_resolution()
            self._resolve_all()

    # ------------------------------------------------------------------
    # table construction
    # ------------------------------------------------------------------

    def _build_tables(self) -> None:
        for summary in self.modules.values():
            self.by_name[summary.name] = summary
        for summary in self.modules.values():
            for qual, fn in summary.functions.items():
                key = f"{summary.name}:{qual}"
                self.functions[key] = (summary, fn)
                self.functions_by_rel.setdefault(summary.rel, []).append(key)
            for qual, info in summary.classes.items():
                bare = qual.split(".")[-1]
                self.classes_by_name.setdefault(bare, []).append((summary, qual))
                for base in info["bases"]:
                    self.subclasses.setdefault(base, set()).add(bare)
                for method_qual in info["methods"]:
                    method = method_qual.split(".")[-1]
                    self.methods_by_name.setdefault(method, []).append(
                        f"{summary.name}:{method_qual}"
                    )
            imported: Set[str] = set()
            for target in summary.imports.values():
                module = target[0]
                # "module" or "module.symbol": accept either granularity.
                if module in self.by_name:
                    imported.add(module)
                elif len(target) == 2 and f"{module}.{target[1]}" in self.by_name:
                    imported.add(f"{module}.{target[1]}")
                else:
                    # fromlist import of a submodule's parent package.
                    parent = module.rsplit(".", 1)[0] if "." in module else ""
                    if parent and parent in self.by_name:
                        imported.add(parent)
            self.module_imports[summary.name] = imported
        self.stats["modules"] = len(self.modules)
        self.stats["functions"] = len(self.functions)

    def _augment_types_from_returns(self) -> bool:
        """Type assignment targets from resolved callees' return
        annotations (``self.controller = builder.build_controller(...)``
        -> attr_types["controller"] = ["MemoryControllerBase"])."""
        changed = False
        for key, (summary, fn) in self.functions.items():
            for assign in fn.assigns:
                expr = assign["expr"]
                calls = expr.get("calls", ())
                types: List[str] = []
                if len(calls) == 1:
                    resolution = self.resolutions[key][calls[0]]
                    types.extend(resolution.result_types)
                    for target in resolution.targets:
                        types.extend(self.functions[target][1].return_types)
                elif not calls and len(expr.get("names", ())) == 1:
                    # Class alias: ``controller_cls = FsEncrController``
                    # (the name must *be* a class, checked via imports).
                    symbol = self.lookup_symbol(summary.name, expr["names"][0])
                    if symbol is not None and symbol[0] == "class":
                        types.append(symbol[2].split(".")[-1])
                types = sorted({t for t in types if t in self.classes_by_name})
                if not types:
                    continue
                for name in assign["targets"]:
                    if name.startswith("self."):
                        attr = name[len("self."):]
                        cls_qual = fn.qualname.rsplit(".", 1)[0] if "." in fn.qualname else None
                        if cls_qual and cls_qual in summary.classes:
                            attrs = summary.classes[cls_qual]["attr_types"]
                            merged = sorted(set(attrs.get(attr, ())) | set(types))
                            if merged != list(attrs.get(attr, ())):
                                attrs[attr] = merged
                                changed = True
                    else:
                        merged = sorted(set(fn.local_types.get(name, ())) | set(types))
                        if merged != list(fn.local_types.get(name, ())):
                            fn.local_types[name] = merged
                            changed = True
        return changed

    def _reset_resolution(self) -> None:
        self.resolutions.clear()
        self.edges.clear()
        self.redges.clear()
        for stat in ("call_sites", "resolved", "ambiguous", "external", "unresolved"):
            self.stats[stat] = 0

    # ------------------------------------------------------------------
    # symbol resolution
    # ------------------------------------------------------------------

    def lookup_symbol(
        self, module_name: str, symbol: str, _depth: int = 0
    ) -> Optional[Tuple[str, str, str]]:
        """Resolve ``symbol`` in ``module_name``.

        Returns ``(kind, module, name)`` with kind ``"function"`` or
        ``"class"``, chasing re-exports through package ``__init__``
        imports; ``None`` when the module is external or the symbol is
        genuinely unknown.
        """
        if _depth > _MAX_CHASE:
            return None
        summary = self.by_name.get(module_name)
        if summary is None:
            return None
        if symbol in summary.functions and "." not in symbol:
            return ("function", summary.name, symbol)
        if symbol in summary.classes:
            return ("class", summary.name, symbol)
        target = summary.imports.get(symbol)
        if target is not None:
            if len(target) == 2:
                # Might itself re-export (``from .base import Rule``).
                resolved = self.lookup_symbol(target[0], target[1], _depth + 1)
                if resolved is not None:
                    return resolved
                # from package import submodule
                if f"{target[0]}.{target[1]}" in self.by_name:
                    return ("module", f"{target[0]}.{target[1]}", "")
            elif target[0] in self.by_name:
                return ("module", target[0], "")
        return None

    def resolve_method(
        self, class_name: str, method: str, _seen: Optional[Set[str]] = None
    ) -> List[str]:
        """Function keys implementing ``method`` for a ``class_name``-typed
        receiver: the class itself, inherited definitions from its bases,
        and — virtual dispatch — overrides in its subclasses (a receiver
        typed as the base may hold any subclass at runtime)."""
        root = _seen is None
        seen = _seen if _seen is not None else set()
        if class_name in seen:
            return []
        seen.add(class_name)
        out: List[str] = []
        for summary, qual in self.classes_by_name.get(class_name, ()):
            method_qual = f"{qual}.{method}"
            if method_qual in summary.functions:
                out.append(f"{summary.name}:{method_qual}")
                continue
            for base in summary.classes[qual]["bases"]:
                out.extend(self.resolve_method(base, method, seen))
        if root:
            for sub in sorted(self.subclasses.get(class_name, ())):
                if sub not in seen:
                    out.extend(self._own_or_descendant_method(sub, method, seen))
        return out

    def _own_or_descendant_method(
        self, class_name: str, method: str, seen: Set[str]
    ) -> List[str]:
        """Subclass-side half of virtual dispatch: overrides only (an
        inherited definition was already found on the base)."""
        if class_name in seen:
            return []
        seen.add(class_name)
        out: List[str] = []
        for summary, qual in self.classes_by_name.get(class_name, ()):
            method_qual = f"{qual}.{method}"
            if method_qual in summary.functions:
                out.append(f"{summary.name}:{method_qual}")
        for sub in sorted(self.subclasses.get(class_name, ())):
            out.extend(self._own_or_descendant_method(sub, method, seen))
        return out

    def class_attr_types(self, class_name: str, attr: str) -> List[str]:
        """Inferred classes of ``self.<attr>`` for every same-named class."""
        out: List[str] = []
        for summary, qual in self.classes_by_name.get(class_name, ()):
            out.extend(summary.classes[qual]["attr_types"].get(attr, ()))
        return out

    def _receiver_types(
        self, summary: ModuleSummary, fn: FunctionSummary, name: str
    ) -> List[str]:
        """Candidate classes for a receiver name inside ``fn``."""
        if name == "self" and "." in fn.qualname:
            return [fn.qualname.rsplit(".", 1)[0].split(".")[-1]]
        for table in (fn.local_types, fn.param_types):
            if name in table:
                # Constructor-call names double as class names; imported
                # value types resolve through lookup below.
                return table[name]
        target = summary.imports.get(name)
        if target is not None and len(target) == 2:
            return [target[1]]
        return []

    # ------------------------------------------------------------------
    # call resolution
    # ------------------------------------------------------------------

    def _resolve_all(self) -> None:
        for key, (summary, fn) in self.functions.items():
            resolved: List[CallResolution] = []
            for call in fn.calls:
                resolution = self._resolve_call(summary, fn, call["chain"])
                resolved.append(resolution)
                self.stats["call_sites"] += 1
                self.stats[resolution.kind] += 1
                for target in resolution.targets:
                    self.edges.setdefault(key, set()).add(target)
                    self.redges.setdefault(target, set()).add(key)
            self.resolutions[key] = resolved

    def _class_targets(self, module: str, class_name: str) -> CallResolution:
        """A constructor call: edges into __init__/__post_init__."""
        targets = self.resolve_method(class_name, "__init__")
        targets += self.resolve_method(class_name, "__post_init__")
        return CallResolution(
            targets=targets,
            result_types=[class_name],
            kind="resolved",
            origin=f"{module}.{class_name}" if module else class_name,
        )

    def _resolve_call(
        self, summary: ModuleSummary, fn: FunctionSummary, chain: List[str]
    ) -> CallResolution:
        head = chain[0]
        if head == "<dynamic>":
            return CallResolution(kind="unresolved")

        # -- bare name ---------------------------------------------------
        if len(chain) == 1:
            symbol = self.lookup_symbol(summary.name, head)
            if symbol is not None:
                kind, module, name = symbol
                if kind == "function":
                    return CallResolution(
                        targets=[f"{module}:{name}"],
                        origin=f"{module}.{name}",
                        kind="resolved",
                    )
                if kind == "class":
                    return self._class_targets(module, name.split(".")[-1])
            # Locally defined class used before indexing order is not an
            # issue (tables are global), so this is a builtin/unknown.
            target = summary.imports.get(head)
            if target is not None:
                return CallResolution(
                    origin=".".join(target), kind="external"
                )
            if head in summary.classes:
                return self._class_targets(summary.name, head)
            # Class-alias variables: ``cls = FsEncrController; cls(...)``
            # (local_types carries class names from the augmentation pass).
            alias_types = [
                t for t in fn.local_types.get(head, ()) if t in self.classes_by_name
            ]
            if alias_types:
                targets: List[str] = []
                for cls in alias_types:
                    targets.extend(self.resolve_method(cls, "__init__"))
                    targets.extend(self.resolve_method(cls, "__post_init__"))
                return CallResolution(
                    targets=sorted(set(targets)),
                    result_types=alias_types,
                    kind="resolved",
                )
            return CallResolution(kind="unresolved")

        # -- attribute chains -------------------------------------------
        method = chain[-1]

        # module-alias calls: time.monotonic(), hashlib.sha256(), ott.f()
        target = summary.imports.get(head)
        if target is not None:
            dotted = target + chain[1:]
            origin = ".".join(dotted)
            if len(chain) == 2:
                symbol = self.lookup_symbol(".".join(target), method)
                if symbol is not None:
                    kind, module, name = symbol
                    if kind == "function":
                        return CallResolution(
                            targets=[f"{module}:{name}"], origin=origin, kind="resolved"
                        )
                    if kind == "class":
                        return self._class_targets(module, name.split(".")[-1])
            return CallResolution(origin=origin, kind="external")

        # receiver with an inferred class type (self, params, locals)
        receiver_types: List[str] = []
        if head == "self" and "." in fn.qualname:
            own_class = fn.qualname.rsplit(".", 1)[0].split(".")[-1]
            if len(chain) == 2:
                receiver_types = [own_class]
            else:
                # self.attr....method(): type the attribute.
                receiver_types = self.class_attr_types(own_class, chain[1])
        elif len(chain) == 2:
            receiver_types = self._receiver_types(summary, fn, head)

        candidates: List[str] = []
        for cls in receiver_types:
            candidates.extend(self.resolve_method(cls, method))
        if candidates:
            return CallResolution(targets=sorted(set(candidates)), kind="resolved")

        # unique-definition fallback: an unknown receiver, but only one
        # class anywhere defines this method name.
        if method in _COLLECTION_METHODS:
            return CallResolution(kind="unresolved")
        defined = self.methods_by_name.get(method, [])
        owners = {key.rsplit(".", 1)[0] for key in defined}
        if len(owners) == 1 and defined:
            return CallResolution(targets=sorted(set(defined)), kind="resolved")
        if len(owners) > 1:
            return CallResolution(kind="ambiguous")
        return CallResolution(kind="unresolved")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def function_keys_for_module_path(self, rel_suffix: str) -> List[str]:
        """Function keys whose defining file ends with ``rel_suffix``."""
        out = []
        for key, (summary, _fn) in self.functions.items():
            if summary.rel.endswith(rel_suffix):
                out.append(key)
        return sorted(out)

    def find_function(self, module: str, qualname: str) -> Optional[str]:
        key = f"{module}:{qualname}"
        return key if key in self.functions else None

    def forward_reachable(self, roots: Iterable[str]) -> Dict[str, Optional[str]]:
        """BFS over call edges; returns ``{reached: parent}`` (roots map
        to None) so callers can rebuild a shortest call chain."""
        parents: Dict[str, Optional[str]] = {}
        queue: deque = deque()
        for root in roots:
            if root in self.functions and root not in parents:
                parents[root] = None
                queue.append(root)
        while queue:
            current = queue.popleft()
            for nxt in sorted(self.edges.get(current, ())):
                if nxt not in parents:
                    parents[nxt] = current
                    queue.append(nxt)
        return parents

    def callers_closure(self, roots: Iterable[str]) -> Set[str]:
        """Everything that can (transitively) call any of ``roots``."""
        seen: Set[str] = set()
        queue: deque = deque(root for root in roots)
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            for caller in self.redges.get(current, ()):
                if caller not in seen:
                    queue.append(caller)
        return seen

    @staticmethod
    def chain_to(parents: Dict[str, Optional[str]], key: str) -> List[str]:
        """Root-to-key call chain recovered from a BFS parent map."""
        chain: List[str] = []
        cursor: Optional[str] = key
        while cursor is not None:
            chain.append(cursor)
            cursor = parents.get(cursor)
        return list(reversed(chain))

    def dependents_of(self, rels: Iterable[str]) -> Set[str]:
        """Transitive reverse-import closure, as rel paths.

        Given changed files, returns every file whose module (directly
        or transitively) imports one of them — the ``--changed``
        fallback set.  The changed files themselves are included.
        """
        reverse: Dict[str, Set[str]] = {}
        for module, imported in self.module_imports.items():
            for dep in imported:
                reverse.setdefault(dep, set()).add(module)
        name_by_rel = {rel: summary.name for rel, summary in self.modules.items()}
        rel_by_name = {summary.name: rel for rel, summary in self.modules.items()}
        queue: deque = deque(
            name_by_rel[rel] for rel in rels if rel in name_by_rel
        )
        seen: Set[str] = set(queue)
        while queue:
            current = queue.popleft()
            for dependent in reverse.get(current, ()):
                if dependent not in seen:
                    seen.add(dependent)
                    queue.append(dependent)
        out = {rel_by_name[name] for name in seen if name in rel_by_name}
        out.update(rel for rel in rels if rel in self.modules)
        return out

    def graph_dump(self) -> Dict:
        """The ``--graph`` debug payload."""
        edges = {
            caller: sorted(callees) for caller, callees in sorted(self.edges.items())
        }
        return {
            "stats": dict(self.stats),
            "modules": sorted(self.by_name),
            "module_imports": {
                name: sorted(deps) for name, deps in sorted(self.module_imports.items())
            },
            "edges": edges,
        }


def build_graph(summaries: Dict[str, ModuleSummary]) -> FlowGraph:
    return FlowGraph(summaries)
