"""Interprocedural taint propagation over the flow graph.

The domain is deliberately simple — a set of tainted *names* per
function (plus tainted ``self.<attr>`` slots per class and tainted
returns per function), each carrying a human-readable provenance string.
Propagation is monotone (taint only ever grows, provenance is
first-writer-wins), so the worklist terminates.

Seeding and the pass-through policy:

* a call resolving to a configured *source function* taints its result;
* key-ish parameter and attribute names (``fek``, ``fekek``, ``*_key``,
  ...) taint inside the configured crypto paths — the same vocabulary
  the per-file ``key-hygiene`` rule uses, lifted interprocedurally;
* calls to *unknown* callees pass taint from arguments to result (so
  ``bytes(key)``, ``key.hex()``, string concatenation helpers keep the
  taint alive) except for the extraction-time sanitizer set (``len``,
  strong digests, ``encrypt_block``), whose subtrees are already pruned
  from the summaries;
* calls to *resolved* callees taint the callee's matching parameters
  and return the callee's return-taint, giving genuine two-hop flows.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set, Tuple

from ..engine import path_matches
from .graph import FlowGraph
from .index import FunctionSummary, ModuleSummary

__all__ = ["TaintState", "solve_taint", "DEFAULT_KEY_SOURCES", "flow_keyish"]

#: Bare "key" is excluded on purpose: ``for key in mapping`` and cache
#: lookup keys would otherwise seed taint all over the tree.  The
#: remaining vocabulary (fek, fekek, *_key) is unambiguous.
_FLOW_KEYISH_EXACT = {"fek", "fekek", "file_key", "plaintext_key"}


def flow_keyish(name: str) -> bool:
    """Does an identifier *unambiguously* bind raw key material?

    Stricter than :func:`repro.lint.rules.base.is_keyish` — whole-program
    propagation amplifies every false seed, so the flow layer drops the
    generic ``key`` spelling the per-file rule still polices.
    """
    lowered = name.lower().lstrip("_")
    return lowered in _FLOW_KEYISH_EXACT or lowered.endswith("_key")

#: Functions whose return value *is* raw key material (resolved by bare
#: name against the call graph; all live in repro/crypto/keys.py).
DEFAULT_KEY_SOURCES = (
    "generate_fek",
    "derive_fekek",
    "unwrap_key",
    "derive_file_key",
    "rotated_file_key",
)

_LOCAL_FIXPOINT_CAP = 10

#: Builtins whose result *is* (a view of) their argument: taint passes
#: straight through.  Arbitrary unknown calls do NOT pass taint — an
#: unresolved ``install(key)`` returning a latency would otherwise smear
#: key taint over every integer downstream (precision over recall).
_IDENTITY_FNS = frozenset(
    {
        "bytes", "bytearray", "memoryview", "str", "repr", "ascii",
        "format", "list", "tuple", "set", "frozenset", "dict", "sorted",
        "reversed", "min", "max", "sum", "abs", "copy", "deepcopy", "hex",
    }
)


class TaintState:
    """The solved taint facts, queryable per function."""

    def __init__(self, graph: FlowGraph, sources: Set[str], crypto_paths) -> None:
        self.graph = graph
        self.sources = sources
        self.crypto_paths = list(crypto_paths)
        #: fnkey -> {name: provenance}; names include "self.attr" slots.
        self.locals: Dict[str, Dict[str, str]] = {}
        #: fnkey -> provenance of a tainted return value
        self.returns: Dict[str, str] = {}
        #: (module name, class bare name) -> {attr: provenance}
        self.class_attrs: Dict[Tuple[str, str], Dict[str, str]] = {}

    # -- scoping helpers -------------------------------------------------

    def _in_crypto_path(self, summary: ModuleSummary) -> bool:
        return path_matches(summary.rel, self.crypto_paths)

    def _class_of(self, fnkey: str) -> Optional[Tuple[str, str]]:
        module, _, qualname = fnkey.partition(":")
        if "." not in qualname:
            return None
        return (module, qualname.rsplit(".", 1)[0].split(".")[-1])

    # -- expression evaluation ------------------------------------------

    def expr_taint(self, fnkey: str, expr: Dict) -> Optional[str]:
        """Provenance if the summarised expression carries taint."""
        summary, fn = self.graph.functions[fnkey]
        local = self.locals.get(fnkey, {})
        crypto = self._in_crypto_path(summary)
        for name in expr.get("names", ()):
            if name in local:
                return local[name]
            if crypto and flow_keyish(name):
                return f"key-named binding '{name}'"
        cls = self._class_of(fnkey)
        for chain in expr.get("attrs", ()):
            dotted = ".".join(chain)
            if dotted in local:
                return local[dotted]
            if chain[0] == "self" and cls is not None and len(chain) == 2:
                shared = self.class_attrs.get(cls, {})
                if chain[1] in shared:
                    return shared[chain[1]]
            # Attribute reads are field-sensitive by *name*, everywhere:
            # ``handle.fek`` is key material no matter which module reads
            # it (the handle object itself is deliberately not tainted).
            if flow_keyish(chain[-1]):
                return f"key attribute '.{chain[-1]}'"
        for call_index in expr.get("calls", ()):
            provenance = self.call_taint(fnkey, call_index)
            if provenance is not None:
                return provenance
        return None

    def call_taint(self, fnkey: str, call_index: int) -> Optional[str]:
        """Provenance if the call's *result* is tainted."""
        _summary, fn = self.graph.functions[fnkey]
        call = fn.calls[call_index]
        resolution = self.graph.resolutions[fnkey][call_index]
        tail = call["chain"][-1]
        if tail in self.sources:
            return f"{tail}() key material"
        if resolution.origin is not None:
            origin_tail = resolution.origin.split(".")[-1]
            if origin_tail in self.sources:
                return f"{origin_tail}() key material"
        for target in resolution.targets:
            if target in self.returns:
                return self.returns[target]  # provenance travels verbatim
        if resolution.targets or resolution.result_types:
            # Resolved functions propagate via their return taint only;
            # resolved constructors deliberately do NOT taint the object
            # they build — a handle *carrying* a key is not itself key
            # bytes (the sinks check constructor arguments directly, and
            # named ``.fek``-style field reads re-taint on access).
            return None
        # ``key.hex()``-style methods on a tainted receiver stay tainted.
        if len(call["chain"]) >= 2 and call["chain"][0] != "<dynamic>":
            receiver = call["chain"][:-1]
            pseudo = {
                "names": [receiver[0]] if len(receiver) == 1 else [],
                "attrs": [receiver] if len(receiver) > 1 else [],
            }
            provenance = self.expr_taint(fnkey, pseudo)
            if provenance is not None:
                return provenance
        # Identity-ish builtins pass argument taint to their result.
        if tail in _IDENTITY_FNS:
            for arg in call["args"]:
                provenance = self.expr_taint(fnkey, arg)
                if provenance is not None:
                    return provenance
            for arg in call["kwargs"].values():
                provenance = self.expr_taint(fnkey, arg)
                if provenance is not None:
                    return provenance
        return None

    # -- mutation (solver only) -----------------------------------------

    def taint_local(self, fnkey: str, name: str, provenance: str) -> bool:
        table = self.locals.setdefault(fnkey, {})
        changed = False
        if name not in table:
            table[name] = provenance
            changed = True
        if name.startswith("self."):
            cls = self._class_of(fnkey)
            if cls is not None:
                shared = self.class_attrs.setdefault(cls, {})
                attr = name[len("self."):]
                if attr not in shared:
                    shared[attr] = provenance
                    changed = True
        return changed


def _param_for_arg(fn: FunctionSummary, position: int) -> Optional[str]:
    """Positional-arg -> parameter name, skipping a leading self/cls."""
    params = fn.params
    if params and params[0] in ("self", "cls") and "." in fn.qualname:
        params = params[1:]
    if 0 <= position < len(params):
        return params[position]
    return None


def solve_taint(graph: FlowGraph, options: Dict) -> TaintState:
    """Run the worklist to fixpoint and return the solved state."""
    sources = set(options.get("key-source-functions", DEFAULT_KEY_SOURCES))
    crypto_paths = options.get("crypto-paths", [])
    state = TaintState(graph, sources, crypto_paths)

    # Seed: key-ish parameters inside crypto paths.
    for fnkey, (summary, fn) in graph.functions.items():
        if not path_matches(summary.rel, crypto_paths):
            continue
        for param in fn.params:
            if flow_keyish(param):
                state.taint_local(fnkey, param, f"key parameter '{param}'")

    queue: deque = deque(sorted(graph.functions))
    queued: Set[str] = set(queue)
    while queue:
        fnkey = queue.popleft()
        queued.discard(fnkey)
        for affected in _process(graph, state, fnkey):
            if affected not in queued:
                queued.add(affected)
                queue.append(affected)
    return state


def _process(graph: FlowGraph, state: TaintState, fnkey: str) -> Set[str]:
    """Propagate within one function; returns functions to revisit."""
    _summary, fn = graph.functions[fnkey]
    affected: Set[str] = set()
    cls = state._class_of(fnkey)
    attrs_before = len(state.class_attrs.get(cls, {})) if cls is not None else 0

    # Local fixpoint over assignments (order-independent within the cap).
    for _round in range(_LOCAL_FIXPOINT_CAP):
        changed = False
        for assign in fn.assigns:
            provenance = state.expr_taint(fnkey, assign["expr"])
            if provenance is None:
                continue
            for target in assign["targets"]:
                if state.taint_local(fnkey, target, provenance):
                    changed = True
        for store in fn.subscript_stores:
            provenance = state.expr_taint(fnkey, store["expr"])
            if provenance is None:
                continue
            dotted = ".".join(store["target_chain"])
            if state.taint_local(fnkey, dotted, provenance):
                changed = True
        if not changed:
            break

    # Tainted returns notify callers.
    if fnkey not in state.returns:
        for ret in fn.returns:
            provenance = state.expr_taint(fnkey, ret)
            if provenance is not None:
                state.returns[fnkey] = provenance
                affected.update(graph.redges.get(fnkey, ()))
                break

    # Tainted arguments taint callee parameters.
    for call_index, call in enumerate(fn.calls):
        resolution = graph.resolutions[fnkey][call_index]
        if not resolution.targets:
            continue
        for position, arg in enumerate(call["args"]):
            provenance = state.expr_taint(fnkey, arg)
            if provenance is None:
                continue
            for target in resolution.targets:
                target_fn = graph.functions[target][1]
                param = _param_for_arg(target_fn, position)
                if param is not None and state.taint_local(target, param, provenance):
                    affected.add(target)
        for kwarg, arg in call["kwargs"].items():
            if kwarg == "**":
                continue
            provenance = state.expr_taint(fnkey, arg)
            if provenance is None:
                continue
            for target in resolution.targets:
                target_fn = graph.functions[target][1]
                if kwarg in target_fn.params and state.taint_local(
                    target, kwarg, provenance
                ):
                    affected.add(target)

    # A self-attribute newly tainted here becomes visible to sibling
    # methods of the same class — revisit them (change-driven, so this
    # cannot ping-pong once the attribute table stabilises).
    if cls is not None and len(state.class_attrs.get(cls, {})) > attrs_before:
        module, bare = cls
        for summary, qual in graph.classes_by_name.get(bare, ()):
            if summary.name != module:
                continue
            for method_qual in summary.classes[qual]["methods"]:
                sibling = f"{summary.name}:{method_qual}"
                if sibling != fnkey:
                    affected.add(sibling)
    return affected
