"""Configuration: defaults merged with ``[tool.repro-lint]`` in pyproject.

Python 3.11+ parses pyproject with :mod:`tomllib`; on 3.9/3.10 (no
tomllib, and this repo adds no third-party deps) a minimal fallback
parser handles the subset this table actually uses — string, integer,
boolean, and string-list values under ``[tool.repro-lint]``.
"""

from __future__ import annotations

import ast as _ast
import re
from pathlib import Path
from typing import Dict, List, Optional

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised only on 3.9/3.10
    tomllib = None

__all__ = ["DEFAULTS", "load_config"]

DEFAULTS: Dict[str, object] = {
    # What to lint when no paths are given on the command line.
    "paths": ["src", "benchmarks"],
    # Committed baseline of accepted findings (repo-root relative).
    "baseline": ".repro-lint-baseline.json",
    # Layers whose timing/crypto state must be a pure function of the
    # seed (no-wallclock-or-unseeded-rng).
    "deterministic-paths": [
        "repro/sim/",
        "repro/secmem/",
        "repro/mem/",
        "repro/core/",
        "repro/crypto/",
        "repro/faults/",
    ],
    # Worker-executed runner code: wall-timing is fine here, but seeds
    # must come from the cell spec (no-worker-seed-entropy).
    "worker-paths": ["repro/exec/"],
    # Layers that handle key material (key-hygiene).
    "crypto-paths": [
        "repro/crypto/",
        "repro/core/",
        "repro/secmem/",
        "repro/kernel/",
        "repro/fs/",
        "repro/faults/",
    ],
    # Layers allowed to write NVM-backed state (persist-through-wpq).
    "nvm-write-paths": ["repro/mem/", "repro/secmem/", "repro/core/", "repro/faults/"],
    # Where the config-not-component contract applies.
    "benchmark-paths": ["benchmarks/"],
    # The one module allowed to construct wired machine components
    # (builder-owns-wiring).
    "builder-paths": ["repro/sim/build.py"],
    # The one module allowed to touch CounterBlock fields directly.
    "counter-modules": ["repro/secmem/counters.py"],
    # Narrowest *_BITS width policed as a literal mask/shift.
    "mask-min-bits": 14,
    # Where the incremental flow index lives (repo-root relative; empty
    # string disables persistence, keeping each run in memory).
    "flow-index-dir": ".repro-lint-index",
    # Worker execution entry points ("module:qualname") for the
    # worker-entropy-reachability rule.  execute_cell is the pure cell
    # evaluator; the runner's timing wrapper legitimately reads the host
    # clock *around* it, never inside it.
    "flow-entry-points": ["repro.exec.spec:execute_cell"],
    # Functions whose return value is raw key material (key-material-taint
    # seeds; resolved against the call graph by bare name).
    "key-source-functions": [
        "generate_fek",
        "derive_fekek",
        "unwrap_key",
        "derive_file_key",
        "rotated_file_key",
    ],
}

_SECTION = "repro-lint"


def load_config(root: Path, pyproject: Optional[Path] = None) -> Dict[str, object]:
    """DEFAULTS overlaid with the repo's ``[tool.repro-lint]`` table."""
    merged = dict(DEFAULTS)
    path = pyproject or root / "pyproject.toml"
    if not path.exists():
        return merged
    text = path.read_text(encoding="utf-8")
    if tomllib is not None:
        data = tomllib.loads(text)
        table = data.get("tool", {}).get(_SECTION, {})
    else:
        table = _parse_toml_subset(text).get(f"tool.{_SECTION}", {})
    for key, value in table.items():
        merged[key] = value
    return merged


# -- 3.9/3.10 fallback ----------------------------------------------------

_HEADER_RE = re.compile(r"^\s*\[([^\]]+)\]\s*$")
_KEY_RE = re.compile(r"^\s*([A-Za-z0-9_\-\.\"']+)\s*=\s*(.*)$")


def _parse_toml_subset(text: str) -> Dict[str, Dict[str, object]]:
    """Parse only what [tool.repro-lint] needs: flat tables of strings,
    ints, booleans, and (possibly multi-line) string arrays."""
    tables: Dict[str, Dict[str, object]] = {}
    current: Dict[str, object] = {}
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i].split("#", 1)[0] if not lines[i].lstrip().startswith('"') else lines[i]
        header = _HEADER_RE.match(line)
        if header:
            name = header.group(1).strip().strip('"')
            current = tables.setdefault(name, {})
            i += 1
            continue
        key_match = _KEY_RE.match(line)
        if key_match:
            key = key_match.group(1).strip().strip("\"'")
            value_text = key_match.group(2).strip()
            # Accumulate multi-line arrays until brackets balance.
            while value_text.count("[") > value_text.count("]") and i + 1 < len(lines):
                i += 1
                value_text += " " + lines[i].split("#", 1)[0].strip()
            current[key] = _parse_value(value_text)
        i += 1
    return tables


def _parse_value(text: str) -> object:
    text = text.strip()
    if text in ("true", "false"):
        return text == "true"
    try:
        return _ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text.strip("\"'")
