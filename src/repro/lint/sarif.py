"""SARIF 2.1.0 output for CI code-scanning upload.

One run, one ``repro-lint`` driver, one result per finding.  Baselined
findings are emitted with a ``suppressions`` entry (kind ``external``)
so SARIF consumers show them as reviewed rather than new; inline-
suppressed findings never reach this layer at all.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from .engine import Finding
from .rules import RULES

__all__ = ["to_sarif"]

_SCHEMA = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"


def _rule_descriptor(name: str) -> Dict[str, object]:
    rule = RULES[name]
    descriptor: Dict[str, object] = {
        "id": name,
        "shortDescription": {"text": rule.summary},
    }
    if rule.contract:
        descriptor["fullDescription"] = {"text": f"Protects: {rule.contract}"}
    return descriptor


def _result(finding: Finding, baselined: bool) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                }
            }
        ],
    }
    if baselined:
        result["suppressions"] = [
            {"kind": "external", "justification": "accepted in the repo baseline"}
        ]
    return result


def to_sarif(new: Iterable[Finding], baselined: Iterable[Finding]) -> Dict[str, object]:
    new = list(new)
    baselined = list(baselined)
    used = sorted({f.rule for f in new} | {f.rule for f in baselined})
    results: List[Dict[str, object]] = [_result(f, False) for f in new]
    results += [_result(f, True) for f in baselined]
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/LINT.md",
                        "rules": [_rule_descriptor(name) for name in used],
                    }
                },
                "results": results,
            }
        ],
    }
