"""integer-cycle-accounting — StatCounters hold exact integers only.

Event counters are the raw material of every figure: NVM reads/writes,
cache hits, re-encryptions.  The paper normalises runs against baseline
runs ("Normalized to the baseline", Figures 8-14), which stays exact
only while counters are integers — a float increment introduces
representation error that compounds across millions of events and can
differ between Python builds.  Latencies are legitimately fractional
(nanoseconds accumulate in ``Machine.clock_ns``); *counters* are not.
This rule flags float literals (or ``float()`` casts) flowing into the
amount argument of a ``StatCounters.add``-shaped call.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, Project, SourceFile
from .base import Rule, attr_chain, contains_float_literal, register


def _is_stats_receiver(chain) -> bool:
    """['self', 'stats', 'add'] -> True; receiver must look like a
    StatCounters bundle, not an arbitrary .add() (e.g. set.add)."""
    if chain is None or len(chain) < 2:
        return False
    receiver = chain[:-1]
    return any(part == "stats" or part.endswith("_stats") or part == "counters" for part in receiver)


@register
class IntegerCycleAccounting(Rule):
    name = "integer-cycle-accounting"
    summary = "StatCounters increments must be integer-exact"
    contract = "PAPER Figures 8-14: normalised series derive from exact event counts"

    def check(self, src: SourceFile, project: Project, options) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "add"):
                continue
            if not _is_stats_receiver(attr_chain(func)):
                continue
            amounts = list(node.args[1:]) + [kw.value for kw in node.keywords if kw.arg == "amount"]
            for amount in amounts:
                offender = contains_float_literal(amount)
                if offender is not None:
                    yield self.finding(
                        src,
                        offender,
                        "float value flows into a StatCounters increment; counters must "
                        "stay integer-exact (round latencies at the result boundary, "
                        "not in counters)",
                    )
