"""stats-registered — every component bundle reaches the StatsRegistry.

``StatsRegistry.snapshot`` is the sole source of the counters that
``RunResult`` records and the figures normalise; a component whose
``StatCounters`` never gets registered silently drops its events from
every result (DESIGN.md: the machine aggregates all bundles).  The
common way to lose a bundle is constructing a component without passing
``stats=registry.create(...)`` — the component then falls back to a
private, orphaned bundle.

Project-wide, this rule flags constructor calls of any class known to
accept a ``stats`` parameter where neither a keyword ``stats=`` nor
enough positional arguments supply one.  (It originally ran only in
modules that referenced ``StatsRegistry`` by name, but the orphaned
bundles the rule exists to catch are precisely the ones created in
helper modules *away* from the registry — a module-scoped gate
whitelists the exact code most likely to be wrong.)  Self-contained
construction sites — ablation helpers probing a component's own bundle,
test fixtures — carry inline suppressions or a baseline entry.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, Project, SourceFile
from .base import Rule, register


@register
class StatsRegistered(Rule):
    name = "stats-registered"
    summary = "components accepting a stats bundle must receive a registered one"
    contract = "DESIGN.md: RunResult stats come from StatsRegistry.snapshot() — orphan bundles vanish"

    def check(self, src: SourceFile, project: Project, options) -> Iterator[Finding]:
        if not project.stats_classes:
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
            if name not in project.stats_classes:
                continue
            if any(kw.arg in ("stats", None) for kw in node.keywords):
                continue  # stats= passed, or **kwargs (can't tell; trust it)
            stats_index = project.stats_classes[name]
            if len(node.args) > stats_index:
                continue  # stats supplied positionally
            yield self.finding(
                src,
                node,
                f"{name} constructed without a stats bundle; its counters will never "
                f"reach StatsRegistry.snapshot() — pass stats=registry.create(...)",
            )
