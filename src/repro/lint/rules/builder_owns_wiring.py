"""builder-owns-wiring — machine wiring happens in the MachineBuilder.

The scheme-registry contract (docs/SCHEMES.md): a scheme column is a
declarative :class:`~repro.sim.schemes.SchemeSpec`, and the *only* place
that turns a spec into live components is
:class:`~repro.sim.build.MachineBuilder`.  Code elsewhere that calls
``FsEncrController(...)`` or ``DaxFilesystem(...)`` directly forks the
construction path: its machine silently stops matching what the
registry (and therefore every figure, sweep, and cache key) describes
the moment the builder's wiring changes.

This rule flags direct constructor calls of the wired component set —
controllers, the filesystem/overlay pair, the MMIO channel, the WPQ,
the cache hierarchy, the OTT, the crash domain, and the recovery
objects (Osiris, Anubis, the shadow table) — anywhere outside the
builder module itself (``builder-paths``, default
``repro/sim/build.py``).  The passive :class:`~repro.mem.NVMDevice` is
deliberately not in the set: white-box unit tests and probes build bare
devices all the time, and a device carries no scheme-dependent wiring.
Deliberate white-box constructions (security proofs, transport probes,
ablation benchmarks) suppress inline with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, Project, SourceFile, path_matches
from .base import Rule, register

#: Components whose construction *is* machine wiring.  One entry per
#: class the builder knows how to place; keep in sync with
#: ``repro.sim.build``'s imports.
WIRED_COMPONENTS = frozenset(
    {
        "PlainMemoryController",
        "BaselineSecureController",
        "FsEncrController",
        "CacheHierarchy",
        "DaxFilesystem",
        "SoftwareEncryptionOverlay",
        "PageCache",
        "MMIORegisters",
        "WritePendingQueue",
        "OpenTunnelTable",
        "CrashDomain",
        "OsirisRecovery",
        "AnubisRecovery",
        "ShadowTable",
    }
)


@register
class BuilderOwnsWiring(Rule):
    name = "builder-owns-wiring"
    summary = "machine components are wired by MachineBuilder, nowhere else"
    contract = "docs/SCHEMES.md: construction lives in repro.sim.build"

    def check(self, src: SourceFile, project: Project, options) -> Iterator[Finding]:
        builder_paths = options.get("builder-paths", ["repro/sim/build.py"])
        if path_matches(src.rel, builder_paths):
            return
        if path_matches(src.rel, ["tests/"]):
            # Unit tests construct components white-box by design.
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
            if name not in WIRED_COMPONENTS:
                continue
            yield self.finding(
                src,
                node,
                f"{name} constructed outside the MachineBuilder; route machine "
                f"wiring through repro.sim.build (or suppress with a "
                f"justification for white-box use)",
            )
