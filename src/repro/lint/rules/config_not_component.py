"""config-not-component — benchmarks describe machines, never build parts.

DESIGN.md's construction contract: "Benchmarks construct configs, never
components" (mirrored in ``repro.sim.config``'s module docstring).  A
benchmark that wires an ``OpenTunnelTable`` or a controller by hand
duplicates ``Machine._build_controller`` and silently diverges from it
the next time construction changes — the figure then measures a machine
that no config can describe.  Everything a figure varies must be a
``MachineConfig`` knob so runs stay reproducible from their recorded
config alone.

In benchmark paths this rule flags constructor calls of classes defined
in the component layers (``mem``/``secmem``/``core``/``kernel``/``fs``).
Config/value types (``*Config``, ``*Timing``, ``*Request``, enums, ...)
are exempt.  Deliberate white-box ablations may suppress the finding
inline with a justification comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, Project, SourceFile, path_matches
from .base import Rule, register


@register
class ConfigNotComponent(Rule):
    name = "config-not-component"
    summary = "benchmarks construct MachineConfigs, never components"
    contract = "DESIGN.md / repro.sim.config: benchmarks construct configs, never components"

    def check(self, src: SourceFile, project: Project, options) -> Iterator[Finding]:
        scoped = options.get("benchmark-paths", ["benchmarks/"])
        if not path_matches(src.rel, scoped):
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
            if name is None or name not in project.component_classes:
                continue
            origin = project.component_classes[name]
            yield self.finding(
                src,
                node,
                f"benchmark constructs component {name} (defined in {origin}) directly; "
                f"express the variation as a MachineConfig knob instead",
            )
