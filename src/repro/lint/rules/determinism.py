"""no-wallclock-or-unseeded-rng — the timing model is a pure function.

Every figure in the paper is reproducible because a run is a pure
function of (MachineConfig, workload, seed): the clock is the simulated
``clock_ns``, never the host's, and all randomness flows from seeded
``random.Random`` instances (DESIGN.md determinism contract;
``MachineConfig.seed``).  Host wall-clock reads or the process-global
``random`` module inside the model layers make runs non-replayable and
CI flaky, so within the configured deterministic packages this rule
bans:

* ``time.time/monotonic/perf_counter/...`` and ``datetime.now/utcnow``;
* the module-level ``random.*`` API (seeded instances via
  ``random.Random(seed)`` are fine; ``random.SystemRandom`` is not);
* ambient entropy: ``os.urandom``, ``uuid.uuid1/uuid4``, ``secrets.*``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Tuple

from ..engine import Finding, Project, SourceFile, path_matches
from .base import Rule, attr_chain, register

_TIME_FNS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
}
_DATETIME_FNS = {"now", "utcnow", "today"}
_RANDOM_ALLOWED = {"Random"}
_UUID_FNS = {"uuid1", "uuid4"}

#: (module, name) pairs banned when pulled in via ``from x import y``.
_BANNED_FROM_IMPORTS = {
    ("time", fn) for fn in _TIME_FNS
} | {("os", "urandom"), ("uuid", "uuid1"), ("uuid", "uuid4")}


@register
class NoWallclockOrUnseededRng(Rule):
    name = "no-wallclock-or-unseeded-rng"
    summary = "model layers must not read host time or ambient randomness"
    contract = "DESIGN.md: a run is a pure function of (config, workload, seed)"

    def check(self, src: SourceFile, project: Project, options) -> Iterator[Finding]:
        scoped = options.get("deterministic-paths", [])
        if not path_matches(src.rel, scoped):
            return
        banned_names = self._from_import_bans(src)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in banned_names:
                origin = banned_names[func.id]
                yield self.finding(
                    src,
                    node,
                    f"call to {origin[0]}.{origin[1]} breaks determinism; derive values "
                    f"from the simulated clock or the seeded RNG",
                )
                continue
            chain = attr_chain(func)
            if not chain or len(chain) < 2:
                continue
            verdict = self._banned_chain(chain)
            if verdict:
                yield self.finding(src, node, verdict)

    def _banned_chain(self, chain) -> str:
        head, tail = chain[0], chain[-1]
        dotted = ".".join(chain)
        if head == "time" and tail in _TIME_FNS:
            return f"{dotted}() reads the host wall clock; use the machine's clock_ns"
        if tail in _DATETIME_FNS and ("datetime" in chain or head == "date"):
            return f"{dotted}() reads the host wall clock; use the machine's clock_ns"
        if head == "random" and len(chain) == 2 and tail not in _RANDOM_ALLOWED:
            return (
                f"{dotted}() uses the process-global RNG; construct random.Random(seed) "
                f"from MachineConfig.seed instead"
            )
        if head == "os" and tail == "urandom":
            return f"{dotted}() is ambient entropy; thread entropy in from the seeded RNG"
        if head == "uuid" and tail in _UUID_FNS:
            return f"{dotted}() is non-deterministic; derive identifiers from the seed"
        if head == "secrets":
            return f"{dotted}() is ambient entropy; thread entropy in from the seeded RNG"
        return ""

    def _from_import_bans(self, src: SourceFile) -> Dict[str, Tuple[str, str]]:
        bans: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ImportFrom) or node.module is None:
                continue
            for alias in node.names:
                pair = (node.module, alias.name)
                if pair in _BANNED_FROM_IMPORTS or node.module == "secrets":
                    bans[alias.asname or alias.name] = pair
                if node.module == "datetime" and alias.name in ("datetime", "date"):
                    # datetime.now() via the class name is caught by the
                    # attribute-chain check; nothing to record here.
                    pass
        return bans


#: (module, attr) calls whose value varies per process / per invocation.
_ENTROPY_CHAINS = {
    ("os", "getpid"),
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("os", "urandom"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
}


@register
class NoWorkerSeedEntropy(Rule):
    """no-worker-seed-entropy — parallel workers must not invent seeds.

    The experiment runner's worker processes (``worker-paths``, default
    ``repro/exec/``) sit *outside* ``deterministic-paths`` on purpose:
    they legitimately read the host clock to time cells.  What they must
    never do is let per-process entropy flow into a *seed* — a worker
    deriving randomness from ``os.getpid()`` or ``time.time()`` makes
    ``--jobs N`` results differ from ``--jobs 1`` and breaks the
    cache/parallel equivalence contract (docs/RUNNER.md).  This rule
    flags process-varying calls only where they feed seeding: arguments
    to ``random.Random(...)``, values bound to ``*seed*`` names, and
    ``seed=``-style keyword arguments.
    """

    name = "no-worker-seed-entropy"
    summary = "worker-executed code must not derive seeds from pid/time entropy"
    contract = "docs/RUNNER.md: jobs=N is bit-identical to jobs=1"

    def check(self, src: SourceFile, project: Project, options) -> Iterator[Finding]:
        scoped = options.get("worker-paths", [])
        if not path_matches(src.rel, scoped):
            return
        aliased = self._entropy_aliases(src)
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                if node.value is None or not any(
                    self._seedish_target(target) for target in targets
                ):
                    continue
                culprit = self._entropy_call(node.value, aliased)
                if culprit is not None:
                    yield self.finding(
                        src,
                        culprit,
                        f"seed derived from {self._describe(culprit, aliased)}; workers "
                        f"must take seeds from the cell spec, never invent them",
                    )
            elif isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                is_rng_ctor = bool(chain) and chain[-1] in ("Random", "SystemRandom")
                seed_args = list(node.args) if is_rng_ctor else []
                seed_args += [
                    kw.value
                    for kw in node.keywords
                    if kw.arg is not None and "seed" in kw.arg.lower()
                ]
                for arg in seed_args:
                    culprit = self._entropy_call(arg, aliased)
                    if culprit is not None:
                        yield self.finding(
                            src,
                            culprit,
                            f"seed derived from {self._describe(culprit, aliased)}; workers "
                            f"must take seeds from the cell spec, never invent them",
                        )

    def _seedish_target(self, target: ast.AST) -> bool:
        if isinstance(target, ast.Name):
            return "seed" in target.id.lower()
        if isinstance(target, ast.Attribute):
            return "seed" in target.attr.lower()
        if isinstance(target, (ast.Tuple, ast.List)):
            return any(self._seedish_target(elt) for elt in target.elts)
        return False

    def _entropy_call(self, expr: ast.AST, aliased: Dict[str, Tuple[str, str]]):
        """First process-varying call inside an expression, or None."""
        for sub in ast.walk(expr):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if isinstance(func, ast.Name) and func.id in aliased:
                return sub
            chain = attr_chain(func)
            if chain and len(chain) >= 2 and (chain[0], chain[-1]) in _ENTROPY_CHAINS:
                return sub
        return None

    def _describe(self, call: ast.Call, aliased: Dict[str, Tuple[str, str]]) -> str:
        func = call.func
        if isinstance(func, ast.Name):
            module, name = aliased[func.id]
            return f"{module}.{name}()"
        chain = attr_chain(func)
        return ".".join(chain or ["<call>"]) + "()"

    def _entropy_aliases(self, src: SourceFile) -> Dict[str, Tuple[str, str]]:
        """Names bound by ``from os import getpid``-style imports."""
        aliases: Dict[str, Tuple[str, str]] = {}
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ImportFrom) or node.module is None:
                continue
            for alias in node.names:
                if (node.module, alias.name) in _ENTROPY_CHAINS:
                    aliases[alias.asname or alias.name] = (node.module, alias.name)
        return aliases
