"""persist-reaches-wpq — every NVM line write can reach the WPQ model.

The crash-consistency results (Figures 9-11) are only meaningful if the
write-pending-queue model sees every persistent write: a line written to
the NVM device by code that can never reach a ``WritePendingQueue``
enqueue/drain (or a ``CrashDomain.record``) is invisible to the crash
sweep — it would survive or vanish for free.  The per-file
``persist-through-wpq`` rule checks *where* raw device writes happen;
this rule checks the call graph: for each ``write_line`` call site in
the configured nvm-write-paths, some call path from a function that
*also* leads to WPQ traffic must reach it.

Concretely: let W be the set of functions that can (transitively) call a
WPQ touch point.  The containing function of every NVM line write must
be forward-reachable from W — equivalently, the write shares an ancestor
with a WPQ touch, so a simulation driving that ancestor exercises both.

Deliberately-functional stores (attacker's DIMM view, golden-state
replay) are expected to carry an inline suppression explaining why the
WPQ model must not see them.
"""

from __future__ import annotations

from typing import Iterator, Optional, Set

from ..engine import Finding, Project, SourceFile, path_matches
from .base import Rule, register

#: WPQ/CrashDomain API tails that constitute "the WPQ model saw it".
_WPQ_TAILS = {"accept", "drain_all", "crash_drain", "record"}

#: Receiver spellings accepted when the call does not resolve (the
#: builder wires ``crash_domain`` through an Optional attribute, which
#: the type inference cannot always pierce).
_WPQ_RECEIVERS = {"wpq", "crash_domain", "domain"}

_WPQ_CLASSES = ("WritePendingQueue", "CrashDomain")


@register
class PersistReachesWpq(Rule):
    name = "persist-reaches-wpq"
    summary = "every NVM line write must share a call path with WPQ traffic"
    contract = "PAPER §VI: crash behaviour is modelled by draining the WPQ at fault time"

    def check(self, src: SourceFile, project: Project, options) -> Iterator[Finding]:
        nvm_paths = options.get("nvm-write-paths", [])
        if not path_matches(src.rel, nvm_paths):
            return
        flow = project.flow(options)
        graph = flow.graph
        reachable = self._wpq_reachable(project, graph)
        for fnkey in graph.functions_by_rel.get(src.rel, ()):
            if fnkey in reachable:
                continue
            _summary, fn = graph.functions[fnkey]
            for call in fn.calls:
                if call["chain"][-1] != "write_line":
                    continue
                qualname = fnkey.split(":", 1)[1]
                yield Finding(
                    rule=self.name,
                    path=src.rel,
                    line=call["line"],
                    col=call["col"] + 1,
                    message=(
                        f"NVM line write in {qualname} is unreachable from any "
                        f"code path that touches the write-pending queue; the "
                        f"crash sweep will never see this write"
                    ),
                )

    def _wpq_reachable(self, project: Project, graph) -> Set[str]:
        """Functions sharing a call path with WPQ traffic (cached on the
        project: the set is global, the rule runs per file)."""
        cached = getattr(project, "_wpq_reachable_cache", None)
        if cached is not None and cached[0] is graph:
            return cached[1]
        direct: Set[str] = set()
        for key, (_summary, fn) in graph.functions.items():
            for index, call in enumerate(fn.calls):
                chain = call["chain"]
                if chain[-1] not in _WPQ_TAILS or len(chain) < 2:
                    continue
                resolution = graph.resolutions[key][index]
                if chain[-2] in _WPQ_RECEIVERS or any(
                    cls in target
                    for target in resolution.targets
                    for cls in _WPQ_CLASSES
                ):
                    direct.add(key)
        ancestors = graph.callers_closure(direct)
        reachable = set(graph.forward_reachable(sorted(ancestors)))
        object.__setattr__(project, "_wpq_reachable_cache", (graph, reachable))
        return reachable
