"""Rule registry: importing this package registers every rule."""

from .base import RULES, Rule, register

# Import order fixes the order rules run in (and tie-break ordering of
# findings on the same line); keep alphabetical by module.
from . import bit_width  # noqa: F401  (registration side effect)
from . import builder_owns_wiring  # noqa: F401
from . import config_not_component  # noqa: F401
from . import counter_overflow  # noqa: F401
from . import cycle_accounting  # noqa: F401
from . import determinism  # noqa: F401
from . import key_hygiene  # noqa: F401
from . import key_material_taint  # noqa: F401
from . import persist_reaches_wpq  # noqa: F401
from . import stats_flow  # noqa: F401
from . import stats_registered  # noqa: F401
from . import worker_entropy_reachability  # noqa: F401
from . import wpq_persist  # noqa: F401

__all__ = ["RULES", "Rule", "register"]
