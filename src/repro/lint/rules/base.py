"""Rule protocol, registry, and shared AST helpers."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from ..engine import Finding, Project, SourceFile

__all__ = ["Rule", "RULES", "register", "attr_chain", "contains_float_literal", "is_keyish"]

RULES: Dict[str, "Rule"] = {}


class Rule:
    """One invariant check.  Subclasses set the class attributes and
    implement :meth:`check`, yielding :class:`Finding` objects."""

    name: str = ""
    summary: str = ""
    #: Section of PAPER.md / DESIGN.md whose contract the rule protects.
    contract: str = ""

    def check(self, src: SourceFile, project: Project, options: Dict[str, object]) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, src: SourceFile, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.name,
            path=src.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def register(cls):
    """Class decorator: instantiate and add to the global registry."""
    instance = cls()
    if not instance.name:
        raise ValueError(f"{cls.__name__} has no rule name")
    if instance.name in RULES:
        raise ValueError(f"duplicate rule name: {instance.name}")
    RULES[instance.name] = instance
    return cls


def attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ["a", "b", "c"]; None if the chain has a non-name
    base (a call result, a subscript, ...)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def contains_float_literal(node: ast.AST) -> Optional[ast.AST]:
    """First float constant (or float() cast) inside an expression tree."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return sub
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "float"
        ):
            return sub
    return None


_KEYISH_EXACT = {"key", "fek", "fekek", "file_key", "plaintext_key"}


def is_keyish(name: str) -> bool:
    """Does an identifier plausibly bind raw key material?"""
    lowered = name.lower().lstrip("_")
    return lowered in _KEYISH_EXACT or lowered.endswith("_key")
