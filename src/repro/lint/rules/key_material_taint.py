"""key-material-taint — key bytes never reach an observable surface.

The FsEncr threat model (PAPER §III) assumes file keys exist in
plaintext only inside the memory controller's key registers and the
kernel's wrapped-key metadata; the *simulator* mirrors that contract by
keeping FEKs/FEKEKs out of everything a run externalises.  The per-file
``key-hygiene`` rule catches direct offences (``print(fek)``); this rule
runs on the whole-program taint solution (``repro.lint.flow``), so a key
returned by ``repro/crypto/keys.py``, stashed in an attribute, and
interpolated three modules later still gets flagged.

Sinks, in reporting priority order at one line:

* arguments to an exception constructor in a ``raise``;
* ``StatCounters.add`` arguments (counters end up in every RunResult);
* ``RunResult(...)`` constructor arguments (the persisted payload);
* ``cell_key(...)`` arguments (the exec cache key is written to disk);
* ``print``/``logging`` call arguments;
* f-string interpolations (repr/log strings anywhere).

Declassification points (``sha256(...)``, ``encrypt_block(...)``,
``len(...)``) drop taint at extraction time — a key *fingerprint* or a
*ciphertext* is fine to surface.
"""

from __future__ import annotations

from typing import Dict, Iterator, Set, Tuple

from ..engine import Finding, Project, SourceFile
from .base import Rule, register

#: Logging-ish call chain tails whose arguments become user-visible text.
_LOG_TAILS = {
    "print",
    "debug",
    "info",
    "warning",
    "error",
    "exception",
    "critical",
    "log",
}


@register
class KeyMaterialTaint(Rule):
    name = "key-material-taint"
    summary = "key material must not flow into stats, results, cache keys, logs or errors"
    contract = "PAPER §III: plaintext keys live only in controller registers and the keyring"

    def check(self, src: SourceFile, project: Project, options) -> Iterator[Finding]:
        flow = project.flow(options)
        graph, taint = flow.graph, flow.taint
        for fnkey in graph.functions_by_rel.get(src.rel, ()):
            _summary, fn = graph.functions[fnkey]
            flagged: Set[int] = set()

            def emit(line: int, col: int, provenance: str, sink: str):
                if line in flagged:
                    return None
                flagged.add(line)
                return Finding(
                    rule=self.name,
                    path=src.rel,
                    line=line,
                    col=col + 1,
                    message=f"key material ({provenance}) flows into {sink}",
                )

            # 1. exception messages
            for entry in fn.raises:
                if entry["call"] is None:
                    continue
                call = fn.calls[entry["call"]]
                provenance = self._call_args_taint(taint, fnkey, call)
                if provenance is not None:
                    finding = emit(
                        entry["line"], entry["col"], provenance, "an exception message"
                    )
                    if finding:
                        yield finding

            # 2-5. call-argument sinks
            for index, call in enumerate(fn.calls):
                sink = self._call_sink(graph, fnkey, index, call)
                if sink is None:
                    continue
                provenance = self._call_args_taint(taint, fnkey, call)
                if provenance is not None:
                    finding = emit(call["line"], call["col"], provenance, sink)
                    if finding:
                        yield finding

            # 6. f-string holes (logs, reprs, messages built anywhere)
            for entry in fn.fstrings:
                provenance = taint.expr_taint(fnkey, entry["expr"])
                if provenance is not None:
                    finding = emit(
                        entry["line"], entry["col"], provenance, "a formatted string"
                    )
                    if finding:
                        yield finding

    # -- sink classification --------------------------------------------

    def _call_sink(self, graph, fnkey: str, index: int, call: Dict):
        resolution = graph.resolutions[fnkey][index]
        tail = call["chain"][-1]
        for target in resolution.targets:
            qualname = target.split(":", 1)[1]
            if qualname.endswith("StatCounters.add"):
                return "a StatCounters counter"
            if qualname == "cell_key" or qualname.endswith(".cell_key"):
                return "the exec result-cache key"
        if "RunResult" in resolution.result_types:
            return "a RunResult payload"
        if tail == "add" and len(call["chain"]) >= 2 and "stats" in call["chain"][-2]:
            return "a StatCounters counter"
        if tail == "cell_key":
            return "the exec result-cache key"
        if tail in _LOG_TAILS and (len(call["chain"]) == 1 or not resolution.targets):
            return "log output"
        return None

    @staticmethod
    def _call_args_taint(taint, fnkey: str, call: Dict):
        for arg in call["args"]:
            provenance = taint.expr_taint(fnkey, arg)
            if provenance is not None:
                return provenance
        for name, arg in call["kwargs"].items():
            if name == "**":
                continue
            provenance = taint.expr_taint(fnkey, arg)
            if provenance is not None:
                return provenance
        return None
