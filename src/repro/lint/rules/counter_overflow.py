"""counter-overflow-handled — minor-counter writes go through ``bump``.

The split-counter scheme (PAPER §II-C, §III-D) is only secure while a
minor-counter overflow bumps the major counter, resets every minor, and
re-encrypts the page — otherwise a counter (hence an AES-CTR pad) is
reused and the one-time-pad property collapses.  ``CounterBlock.bump``
is the one sanctioned increment path, so this rule flags:

* direct assignment or augmented assignment to ``.minors`` / counter
  ``.major`` attributes outside ``repro/secmem/counters.py`` (restore
  paths must use ``CounterBlock.load``);
* ``bump()`` calls whose boolean overflow result is discarded — the
  ``True`` return is the "re-encrypt the whole page now" signal.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, Project, SourceFile, path_matches
from .base import Rule, attr_chain, register

_COUNTER_HINTS = ("counter", "blk", "block", "fecb", "mecb")


def _counter_attr_target(node: ast.AST):
    """The flagged attribute node if ``node`` mutates counter state."""
    target = node
    while isinstance(target, ast.Subscript):
        target = target.value
    if not isinstance(target, ast.Attribute):
        return None
    if target.attr == "minors":
        return target
    if target.attr == "major":
        chain = attr_chain(target) or []
        joined = ".".join(chain).lower()
        if any(hint in joined for hint in _COUNTER_HINTS):
            return target
    return None


@register
class CounterOverflowHandled(Rule):
    name = "counter-overflow-handled"
    summary = "minor counters are written only via CounterBlock.bump/load, and bump's overflow result is consumed"
    contract = "PAPER §II-C/§III-D: minor overflow must bump the major and re-encrypt the page"

    def check(self, src: SourceFile, project: Project, options) -> Iterator[Finding]:
        allowed = options.get("counter-modules", ["repro/secmem/counters.py"])
        if path_matches(src.rel, allowed):
            return
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    attr = _counter_attr_target(target)
                    if attr is not None:
                        yield self.finding(
                            src,
                            attr,
                            f"direct write to counter field '.{attr.attr}' bypasses the "
                            f"overflow path; use CounterBlock.bump()/load()/reset()",
                        )
            elif isinstance(node, ast.AugAssign):
                attr = _counter_attr_target(node.target)
                if attr is not None:
                    yield self.finding(
                        src,
                        attr,
                        f"in-place update of counter field '.{attr.attr}' bypasses the "
                        f"overflow path; use CounterBlock.bump()",
                    )
            elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                func = node.value.func
                if isinstance(func, ast.Attribute) and func.attr == "bump":
                    yield self.finding(
                        src,
                        node,
                        "bump() result discarded: True means the minor overflowed and "
                        "the page must be re-encrypted",
                    )
