"""bit-width-bounds — hardware field widths come from ``*_BITS`` constants.

FsEncr's FECB packs an 18-bit Group ID, a 14-bit File ID, a 32-bit major
counter and 64 x 7-bit minors into one 512-bit line (PAPER §III-D).  A
hard-coded ``0x3FFFF`` mask or ``<< 18`` shift that silently disagrees
with ``GROUP_ID_BITS`` corrupts every (group, file) -> key mapping, and
an ID literal wider than its declared field aliases two files onto one
FECB.  This rule makes the declared constants the single source of
truth:

* integer literals equal to ``(1 << B) - 1`` for a declared distinctive
  width ``B`` must be written as the mask expression, not the value;
* shift amounts equal to a declared distinctive width must name the
  constant;
* literal values bound to ``foo_id`` parameters/variables must fit the
  declared ``FOO_ID_BITS`` width.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from ..engine import Finding, Project, SourceFile
from .base import Rule, register

#: Widths too generic to police as literals (byte/word sizes show up
#: everywhere for legitimate reasons).
_GENERIC_WIDTHS = {1, 2, 4, 8, 16, 32, 64}


def _distinctive(project: Project, options: Dict[str, object]) -> Dict[int, str]:
    """width value -> constant name, for widths worth policing."""
    min_bits = int(options.get("mask-min-bits", 14))
    table: Dict[int, str] = {}
    for name, bits in sorted(project.bits_constants.items()):
        if bits >= min_bits and bits not in _GENERIC_WIDTHS:
            table.setdefault(bits, name)
    return table


@register
class BitWidthBounds(Rule):
    name = "bit-width-bounds"
    summary = "bit masks, shifts, and ID literals must agree with *_BITS constants"
    contract = "PAPER §III-D/§III-E: FECB = 18b Group ID + 14b File ID + 32b major + 64x7b minors"

    def check(self, src: SourceFile, project: Project, options) -> Iterator[Finding]:
        widths = _distinctive(project, options)
        masks = {(1 << bits) - 1: name for bits, name in widths.items()}
        for node in ast.walk(src.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.LShift, ast.RShift)):
                amount = node.right
                if (
                    isinstance(amount, ast.Constant)
                    and isinstance(amount.value, int)
                    and amount.value in widths
                ):
                    yield self.finding(
                        src,
                        amount,
                        f"shift by literal {amount.value} duplicates {widths[amount.value]}; "
                        f"use the constant",
                    )
            elif isinstance(node, ast.Constant) and type(node.value) is int:
                if node.value in masks:
                    name = masks[node.value]
                    yield self.finding(
                        src,
                        node,
                        f"literal {node.value:#x} duplicates the {name} mask; "
                        f"write (1 << {name}) - 1",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_bound_kwargs(src, project, node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                yield from self._check_bound_assign(src, project, node)

    # -- declared-width bound checks ------------------------------------

    def _width_for(self, project: Project, ident: str):
        """``group_id`` -> (constant name, width) if GROUP_ID_BITS exists."""
        candidate = f"{ident.upper()}_BITS"
        bits = project.bits_constants.get(candidate)
        return (candidate, bits) if bits is not None else None

    def _bound_violation(self, src: SourceFile, project: Project, ident: str, value: ast.AST):
        info = self._width_for(project, ident)
        if info is None:
            return None
        constant, bits = info
        if isinstance(value, ast.Constant) and type(value.value) is int:
            if not 0 <= value.value < (1 << bits):
                return self.finding(
                    src,
                    value,
                    f"literal {value.value} does not fit {ident} "
                    f"({constant} = {bits} bits)",
                )
        return None

    def _check_bound_kwargs(self, src, project, call: ast.Call):
        for kw in call.keywords:
            if kw.arg is None:
                continue
            finding = self._bound_violation(src, project, kw.arg, kw.value)
            if finding is not None:
                yield finding

    def _check_bound_assign(self, src, project, node):
        if isinstance(node, ast.AnnAssign):
            targets = [node.target]
            value = node.value
        else:
            targets = node.targets
            value = node.value
        if value is None:
            return
        for target in targets:
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name is None:
                continue
            finding = self._bound_violation(src, project, name, value)
            if finding is not None:
                yield finding
