"""stats-flow — incremented counters must surface; consumed counters must exist.

The figures are computed from ``RunResult.stats``, which is a
``StatsRegistry.snapshot()`` — a counter bundle that is incremented but
never *registered* is silently invisible to every analysis, and a
``result.stat("bundle.key")`` lookup against a bundle or key that
nothing produces fails only at run time (or worse, reads zero via a
stale baseline).  The per-file ``stats-registered`` rule checks that
constructors accept a ``stats`` argument; this rule closes the loop
across modules, on the whole-program flow graph:

* **producer side** — every class whose methods call
  ``self.stats.add(...)`` must have a registration path: one of its
  bundle-name literals appears in a ``registry.create/ensure("...")``
  call, or some ``registry.register(x.stats)`` receiver types to it
  (directly or via a subclass).  Classes whose bundle name is dynamic
  (``StatCounters(config.name)``) are exempt — they are registered by
  whoever names them.
* **consumer side** — every dotted ``.stat("bundle.key")`` literal must
  name a registered bundle, and ``key`` must be produced by some class
  associated with that bundle (classes with dynamic ``add`` arguments
  produce a wildcard).

Deliberately-standalone components (exercised only by their unit tests,
never part of a machine) carry an inline suppression at their first
``add`` site.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..engine import Finding, Project, SourceFile
from .base import Rule, register

#: StatsRegistry API tails that register a literal bundle name.
_CREATE_TAILS = {"create", "ensure"}


def _literal(expr: Dict) -> Optional[str]:
    """The string literal an expression *is* (not merely contains)."""
    consts = expr.get("consts", ())
    if (
        len(consts) == 1
        and isinstance(consts[0], str)
        and not expr.get("names")
        and not expr.get("attrs")
        and not expr.get("calls")
    ):
        return consts[0]
    return None


def _class_of(fnkey: str) -> Optional[str]:
    qualname = fnkey.split(":", 1)[1]
    if "." not in qualname:
        return None
    return qualname.rsplit(".", 1)[0].split(".")[-1]


class _StatsModel:
    """The project-wide bundle/counter tables, built once per graph."""

    def __init__(self, graph) -> None:
        self.graph = graph
        #: bare class -> bundle name literals it can be constructed with
        self.bundles: Dict[str, Set[str]] = {}
        #: classes whose bundle name is computed (always registered-by-caller)
        self.dynamic_bundle: Set[str] = set()
        #: literals seen in registry.create/ensure("...") calls
        self.registered: Set[str] = set()
        #: classes registered via registry.register(x.stats)
        self.registered_classes: Set[str] = set()
        #: class -> counter keys its own methods add with literals
        self.adds: Dict[str, Set[str]] = {}
        #: class -> line/col of its first literal-or-not add site, per rel
        self.first_add: Dict[Tuple[str, str], Tuple[int, int]] = {}
        #: classes with a computed add key (produce anything)
        self.dynamic_adds: Set[str] = set()
        self._build()

    # -- construction ---------------------------------------------------

    def _build(self) -> None:
        graph = self.graph
        for fnkey, (summary, fn) in graph.functions.items():
            cls = _class_of(fnkey)
            for index, call in enumerate(fn.calls):
                chain = call["chain"]
                tail = chain[-1]
                resolution = graph.resolutions[fnkey][index]
                if tail == "StatCounters" and cls is not None:
                    self._associate([cls], call["args"])
                if (
                    tail in _CREATE_TAILS
                    and len(chain) >= 2
                    and "registry" in chain[-2].lower()
                ):
                    name = _literal(call["args"][0]) if call["args"] else None
                    if name is not None:
                        self.registered.add(name)
                if (
                    tail == "register"
                    and len(chain) >= 2
                    and "registry" in chain[-2].lower()
                    and call["args"]
                ):
                    for attr_chain in call["args"][0].get("attrs", ()):
                        if attr_chain[-1] == "stats" and len(attr_chain) >= 2:
                            self.registered_classes.update(
                                self._chain_types(summary, fn, attr_chain[:-1])
                            )
                # A constructed object handed a fresh registered bundle
                # (``Thing(stats=registry.create("thing"))``) associates
                # the literal with the object's class.
                result_types = self._result_types(resolution)
                if result_types:
                    for arg in self._all_args(call):
                        for call_index in arg.get("calls", ()):
                            inner = fn.calls[call_index]
                            if (
                                inner["chain"][-1] in _CREATE_TAILS
                                and len(inner["chain"]) >= 2
                                and "registry" in inner["chain"][-2].lower()
                            ):
                                self._associate(result_types, inner["args"])
                if (
                    tail == "add"
                    and len(chain) >= 2
                    and chain[-2] == "stats"
                    and chain[0] == "self"
                    and cls is not None
                ):
                    site = (cls, summary.rel)
                    if site not in self.first_add:
                        self.first_add[site] = (call["line"], call["col"])
                    key = _literal(call["args"][0]) if call["args"] else None
                    if key is not None:
                        self.adds.setdefault(cls, set()).add(key)
                    else:
                        self.dynamic_adds.add(cls)

    def _associate(self, classes, args) -> None:
        name = _literal(args[0]) if args else None
        for cls in classes:
            if name is not None:
                self.bundles.setdefault(cls, set()).add(name)
            else:
                self.dynamic_bundle.add(cls)

    def _result_types(self, resolution) -> List[str]:
        types = list(resolution.result_types)
        for target in resolution.targets:
            types.extend(self.graph.functions[target][1].return_types)
        return [t for t in types if t in self.graph.classes_by_name]

    @staticmethod
    def _all_args(call) -> List[Dict]:
        out = list(call["args"])
        out.extend(v for k, v in call["kwargs"].items() if k != "**")
        return out

    def _chain_types(self, summary, fn, chain) -> List[str]:
        """Type an attribute chain like ``controller.metadata_cache``."""
        graph = self.graph
        if chain[0] == "self" and "." in fn.qualname:
            types = [fn.qualname.rsplit(".", 1)[0].split(".")[-1]]
        else:
            types = graph._receiver_types(summary, fn, chain[0])
        for attr in chain[1:]:
            narrowed: List[str] = []
            for cls in types:
                narrowed.extend(graph.class_attr_types(cls, attr))
            if not narrowed:
                # Unique-attribute fallback: one project class declares it.
                candidates: Set[str] = set()
                for entries in graph.classes_by_name.values():
                    for owner_summary, qual in entries:
                        candidates.update(
                            owner_summary.classes[qual]["attr_types"].get(attr, ())
                        )
                narrowed = sorted(candidates) if len(candidates) == 1 else []
            types = narrowed
        return types

    # -- queries --------------------------------------------------------

    def _family(self, cls: str, seen: Optional[Set[str]] = None) -> Set[str]:
        """``cls`` plus its transitive base classes (by bare name)."""
        seen = seen if seen is not None else set()
        if cls in seen:
            return set()
        seen.add(cls)
        out = {cls}
        for summary, qual in self.graph.classes_by_name.get(cls, ()):
            for base in summary.classes[qual]["bases"]:
                out |= self._family(base, seen)
        return out

    def is_registered(self, cls: str) -> bool:
        """Does some registration path exist for ``cls``'s counters?"""
        if cls in self.dynamic_bundle or cls in self.registered_classes:
            return True
        if self.bundles.get(cls, set()) & self.registered:
            return True
        # A subclass constructed with a registered bundle covers adds
        # inherited from this class.
        for sub, sub_bundles in self.bundles.items():
            if cls in self._family(sub) and (
                sub_bundles & self.registered or sub in self.registered_classes
            ):
                return True
        return any(cls in self._family(sub) for sub in self.dynamic_bundle)

    def produced(self, bundle: str) -> Tuple[Set[str], bool]:
        """(keys, wildcard) produced by classes associated with ``bundle``."""
        keys: Set[str] = set()
        wildcard = False
        for cls, names in self.bundles.items():
            if bundle not in names:
                continue
            for member in self._family(cls):
                keys |= self.adds.get(member, set())
                if member in self.dynamic_adds:
                    wildcard = True
        return keys, wildcard

    def known_bundles(self) -> Set[str]:
        out = set(self.registered)
        for cls in self.registered_classes:
            out |= self.bundles.get(cls, set())
        return out


@register
class StatsFlow(Rule):
    name = "stats-flow"
    summary = "counters incremented must be registered; counters read must be produced"
    contract = "docs/RUNNER.md: figures read RunResult.stats, a registry snapshot"

    def check(self, src: SourceFile, project: Project, options) -> Iterator[Finding]:
        flow = project.flow(options)
        graph = flow.graph
        model = self._model(project, graph)

        # Producer side: report at the class's first add site in this file.
        seen_classes: Set[str] = set()
        for fnkey in graph.functions_by_rel.get(src.rel, ()):
            cls = _class_of(fnkey)
            if cls is None or cls in seen_classes:
                continue
            seen_classes.add(cls)
            site = model.first_add.get((cls, src.rel))
            if site is None or model.is_registered(cls):
                continue
            bundles = sorted(model.bundles.get(cls, ()))
            named = f" ('{bundles[0]}')" if bundles else ""
            yield Finding(
                rule=self.name,
                path=src.rel,
                line=site[0],
                col=site[1] + 1,
                message=(
                    f"{cls} increments its stats bundle{named} but no "
                    f"registry.create/ensure/register path surfaces it; these "
                    f"counters can never appear in a RunResult"
                ),
            )

        # Consumer side: dotted .stat("bundle.key") literals.
        known = model.known_bundles()
        for fnkey in graph.functions_by_rel.get(src.rel, ()):
            _summary, fn = graph.functions[fnkey]
            for call in fn.calls:
                if call["chain"][-1] != "stat" or not call["args"]:
                    continue
                literal = _literal(call["args"][0])
                if literal is None or "." not in literal:
                    continue
                bundle, key = literal.split(".", 1)
                if bundle not in known:
                    yield Finding(
                        rule=self.name,
                        path=src.rel,
                        line=call["line"],
                        col=call["col"] + 1,
                        message=(
                            f"stat('{literal}') reads bundle '{bundle}', which "
                            f"no registry.create/ensure/register call produces"
                        ),
                    )
                    continue
                keys, wildcard = model.produced(bundle)
                if key not in keys and not wildcard:
                    yield Finding(
                        rule=self.name,
                        path=src.rel,
                        line=call["line"],
                        col=call["col"] + 1,
                        message=(
                            f"stat('{literal}') reads counter '{key}', which no "
                            f"class associated with bundle '{bundle}' increments"
                        ),
                    )

    @staticmethod
    def _model(project: Project, graph) -> _StatsModel:
        cached = getattr(project, "_stats_flow_model", None)
        if cached is not None and cached.graph is graph:
            return cached
        model = _StatsModel(graph)
        object.__setattr__(project, "_stats_flow_model", model)
        return model
