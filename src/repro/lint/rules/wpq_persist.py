"""persist-through-wpq — NVM state mutates only inside the controllers.

Durability in the model, as on real hardware, is a property of the
memory controller's persist path: stores reach the PCM array through the
Write Pending Queue / ADR domain and — for secure schemes — through the
encryption engine that advances counters and reseals lines (PAPER §II,
DESIGN.md).  A workload or filesystem poking ciphertext directly into
the backing store bypasses counters, Merkle updates, wear tracking and
timing at once, producing results that silently disagree with the
crash-consistency model.  Outside the controller layers this rule flags:

* calls to ``*.write_line(...)`` (the ``NVMStore`` raw write);
* calls to ``*.read_line(...)`` — a raw ciphertext read outside the
  controllers bypasses decryption, Merkle verification and the read
  timing path, so "read" results silently skip the model's latency and
  integrity machinery (legitimate attacker-view reads carry an inline
  suppression);
* subscript assignment into a ``._lines`` backing dict;
* direct ``device.write(...)`` / ``nvm.write(...)`` timing calls that
  skip the controller.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, Project, SourceFile, path_matches
from .base import Rule, attr_chain, register

_DEVICE_NAMES = {"device", "nvm", "dimm"}


@register
class PersistThroughWpq(Rule):
    name = "persist-through-wpq"
    summary = "NVM-backed state is written only via the controller persist path"
    contract = "PAPER §II / DESIGN.md: persists flow store -> WPQ/encryption engine -> PCM"

    def check(self, src: SourceFile, project: Project, options) -> Iterator[Finding]:
        allowed = options.get("nvm-write-paths", [])
        if path_matches(src.rel, allowed):
            return
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                if attr == "write_line":
                    yield self.finding(
                        src,
                        node,
                        "raw NVMStore.write_line outside the controller layer bypasses "
                        "encryption counters and the WPQ; go through the memory controller",
                    )
                elif attr == "read_line":
                    yield self.finding(
                        src,
                        node,
                        "raw NVMStore.read_line outside the controller layer bypasses "
                        "decryption, integrity verification and read timing; use "
                        "controller.read_data or Machine.load",
                    )
                elif attr == "write":
                    chain = attr_chain(node.func) or []
                    if len(chain) >= 2 and chain[-2] in _DEVICE_NAMES:
                        yield self.finding(
                            src,
                            node,
                            "direct NVM device write bypasses the controller persist path; "
                            "use Machine.store/persist or the controller API",
                        )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Attribute)
                        and target.value.attr == "_lines"
                    ):
                        yield self.finding(
                            src,
                            target,
                            "mutating a '._lines' NVM backing dict directly bypasses the "
                            "persist path; use the owning component's API",
                        )
