"""worker-entropy-reachability — cell execution is hermetic, transitively.

``repro.exec`` promises that a cell's result is a pure function of
(CellSpec, source fingerprint): that is what makes the on-disk result
cache and ``--jobs N`` parallelism sound (docs/RUNNER.md).  The per-file
determinism rules police the model layers by *location*; this rule
polices the same contract by *reachability* — starting from the worker
entry points (default ``repro.exec.spec:execute_cell``), it walks the
whole-program call graph and flags any reachable call that reads host
time, process identity, or ambient randomness, wherever it lives.

The runner's timing wrapper (``_execute_timed``) reads the host clock
*around* ``execute_cell`` by design; it is not reachable *from* the
entry point, so it never trips this rule.  Seeded ``random.Random(x)``
construction is fine; argument-less ``random.Random()`` falls back to
OS entropy and is flagged.
"""

from __future__ import annotations

from typing import Iterator, List

from ..engine import Finding, Project, SourceFile
from .base import Rule, register
from .determinism import _TIME_FNS

#: (head, tail) attribute-chain origins that vary per host/process/run.
_ENTROPY_ORIGINS = {("os", "urandom"), ("os", "getpid"), ("os", "getrandom")}
_UUID_TAILS = {"uuid1", "uuid4"}
_DATETIME_TAILS = {"now", "utcnow", "today"}

#: Module-level random.* API (process-global, unseeded).
_RANDOM_GLOBAL_BANNED = True


@register
class WorkerEntropyReachability(Rule):
    name = "worker-entropy-reachability"
    summary = "no call path from cell execution entry points to host time or entropy"
    contract = "docs/RUNNER.md: a cell result is a pure function of (spec, source fingerprint)"

    def check(self, src: SourceFile, project: Project, options) -> Iterator[Finding]:
        flow = project.flow(options)
        graph = flow.graph
        entries = [
            str(e) for e in options.get("flow-entry-points", []) if str(e) in graph.functions
        ]
        if not entries:
            return
        parents = graph.forward_reachable(entries)
        for fnkey in graph.functions_by_rel.get(src.rel, ()):
            if fnkey not in parents:
                continue
            _summary, fn = graph.functions[fnkey]
            for index, call in enumerate(fn.calls):
                origin = self._entropy_origin(graph, fnkey, index, call)
                if origin is None:
                    continue
                chain = " -> ".join(
                    key.split(":", 1)[1] for key in graph.chain_to(parents, fnkey)
                )
                yield Finding(
                    rule=self.name,
                    path=src.rel,
                    line=call["line"],
                    col=call["col"] + 1,
                    message=(
                        f"{origin} is reachable from cell execution "
                        f"(via {chain}); worker results must be a pure "
                        f"function of the cell spec"
                    ),
                )

    def _entropy_origin(self, graph, fnkey: str, index: int, call) -> str:
        resolution = graph.resolutions[fnkey][index]
        dotted = resolution.origin or ".".join(call["chain"])
        parts: List[str] = dotted.split(".")
        head, tail = parts[0], parts[-1]
        if head == "time" and tail in _TIME_FNS:
            return f"{dotted}() (host clock)"
        if (head, tail) in _ENTROPY_ORIGINS:
            return f"{dotted}() (process entropy)"
        if head == "uuid" and tail in _UUID_TAILS:
            return f"{dotted}() (ambient entropy)"
        if head == "secrets":
            return f"{dotted}() (ambient entropy)"
        if tail in _DATETIME_TAILS and "datetime" in parts:
            return f"{dotted}() (host clock)"
        if head == "random" and len(parts) == 2:
            if tail == "Random":
                if not call["args"] and not call["kwargs"]:
                    return "random.Random() without a seed (OS entropy)"
                return None
            if tail == "SystemRandom":
                return "random.SystemRandom() (OS entropy)"
            if tail[0].islower():
                return f"{dotted}() (process-global RNG)"
        return None
