"""key-hygiene — key material never reaches reprs, logs, or weak hashes.

The whole point of FsEncr is that plaintext file keys exist only inside
the memory controller (PAPER §III-E: the OTT "never leaves the chip";
§VI: even revealing the memory encryption key must not expose file
keys).  The simulator mirrors that contract: key bytes must not leak
through debugging surfaces, which in Python means reprs, f-strings and
log/print calls — an ``OTTEntry`` in a traceback must not print its key.
Within the configured crypto paths this rule flags:

* dataclass fields with key-like names missing ``field(repr=False)``
  (the auto-generated ``__repr__`` would print the key bytes);
* key-like names formatted directly into f-strings, or passed directly
  to ``print``/logging calls (``len(key)`` and other derived metadata
  are fine);
* any key-like attribute referenced inside a hand-written ``__repr__``
  or ``__str__``;
* ``hashlib.md5`` / ``hashlib.sha1`` (including via ``hashlib.new`` or
  ``pbkdf2_hmac``) — broken primitives have no place in crypto paths.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, Project, SourceFile, path_matches
from .base import Rule, attr_chain, is_keyish, register

_WEAK_HASHES = {"md5", "sha1"}
_LOG_NAMES = {"log", "logger", "logging"}
_LOG_METHODS = {"debug", "info", "warning", "error", "critical", "exception", "log"}


def _direct_keyish(node: ast.AST) -> bool:
    """True when the expression *is* key material (not derived metadata)."""
    if isinstance(node, ast.Name):
        return is_keyish(node.id)
    if isinstance(node, ast.Attribute):
        return is_keyish(node.attr)
    if isinstance(node, ast.Call):
        # hex()/repr()/str()/bytes() of a key is still the key.
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        if name in {"hex", "repr", "str", "bytes", "format"} and node.args:
            return _direct_keyish(node.args[0])
        if isinstance(func, ast.Attribute) and func.attr == "hex":
            return _direct_keyish(func.value)
    if isinstance(node, ast.FormattedValue):
        return _direct_keyish(node.value)
    if isinstance(node, ast.Subscript):
        return _direct_keyish(node.value)
    return False


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        node = deco.func if isinstance(deco, ast.Call) else deco
        name = node.attr if isinstance(node, ast.Attribute) else getattr(node, "id", "")
        if name == "dataclass":
            return True
    return False


def _field_hides_repr(value) -> bool:
    if not (isinstance(value, ast.Call) and getattr(value.func, "id", getattr(value.func, "attr", "")) == "field"):
        return False
    for kw in value.keywords:
        if kw.arg == "repr" and isinstance(kw.value, ast.Constant) and kw.value.value is False:
            return True
    return False


@register
class KeyHygiene(Rule):
    name = "key-hygiene"
    summary = "key bytes stay out of reprs/f-strings/logs; md5/sha1 banned in crypto paths"
    contract = "PAPER §III-E/§VI: plaintext file keys never leave the controller"

    def check(self, src: SourceFile, project: Project, options) -> Iterator[Finding]:
        scoped = options.get("crypto-paths", [])
        if not path_matches(src.rel, scoped):
            return
        yield from self._check_weak_hashes(src)
        yield from self._check_dataclass_reprs(src)
        yield from self._check_output_surfaces(src)

    # -- weak hash primitives -------------------------------------------

    def _check_weak_hashes(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                chain = attr_chain(node.func) or []
                if len(chain) == 2 and chain[0] == "hashlib" and chain[1] in _WEAK_HASHES:
                    yield self.finding(
                        src, node, f"hashlib.{chain[1]} is cryptographically broken; use sha256"
                    )
                elif chain[-1:] == ["new"] and chain[:1] == ["hashlib"] and node.args:
                    first = node.args[0]
                    if isinstance(first, ast.Constant) and first.value in _WEAK_HASHES:
                        yield self.finding(
                            src, node, f"hashlib.new({first.value!r}) is broken; use sha256"
                        )
                elif chain[-1:] == ["pbkdf2_hmac"] and node.args:
                    first = node.args[0]
                    if isinstance(first, ast.Constant) and first.value in _WEAK_HASHES:
                        yield self.finding(
                            src, node, f"pbkdf2_hmac over {first.value!r} is too weak; use sha256"
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "hashlib":
                for alias in node.names:
                    if alias.name in _WEAK_HASHES:
                        yield self.finding(
                            src, node, f"importing hashlib.{alias.name} into a crypto path is banned"
                        )

    # -- repr leaks ------------------------------------------------------

    def _check_dataclass_reprs(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not (isinstance(node, ast.ClassDef) and _is_dataclass(node)):
                continue
            for item in node.body:
                if not (isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name)):
                    continue
                if is_keyish(item.target.id) and not _field_hides_repr(item.value):
                    yield self.finding(
                        src,
                        item,
                        f"dataclass field '{item.target.id}' holds key material but the "
                        f"auto-repr would print it; use field(repr=False)",
                    )

    def _check_output_surfaces(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.FormattedValue) and _direct_keyish(node.value):
                yield self.finding(
                    src, node, "key material formatted into an f-string; never render key bytes"
                )
            elif isinstance(node, ast.Call) and self._is_output_call(node):
                for arg in node.args:
                    if _direct_keyish(arg):
                        yield self.finding(
                            src, arg, "key material passed to a print/log call; never log key bytes"
                        )
            elif isinstance(node, ast.FunctionDef) and node.name in ("__repr__", "__str__"):
                for sub in ast.walk(node):
                    if (
                        isinstance(sub, ast.Attribute)
                        and isinstance(sub.ctx, ast.Load)
                        and is_keyish(sub.attr)
                    ):
                        yield self.finding(
                            src,
                            sub,
                            f"{node.name} references key field '.{sub.attr}'; reprs must "
                            f"not expose key material",
                        )

    @staticmethod
    def _is_output_call(node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "print"
        if isinstance(func, ast.Attribute) and func.attr in _LOG_METHODS:
            chain = attr_chain(func) or []
            return bool(chain) and (chain[0] in _LOG_NAMES or chain[0].endswith("log"))
        return False
