"""repro.lint — AST-based invariant linter for the FsEncr simulator.

The simulator encodes hardware contracts that ordinary tests cannot see
being violated: 7-bit minor counters, 18/14-bit Group/File IDs, on-chip
keys that must never be printed, cycle accounting that must stay
integer-exact, persistence that must flow through the controller.  This
package walks every source file, checks those contracts statically, and
fails CI on regressions.

Usage::

    python -m repro.lint src benchmarks --strict
    python -m repro.lint --format json
    repro-lint --list-rules

See ``docs/LINT.md`` for the rule catalogue and the invariant each rule
protects.
"""

from .engine import Finding, LintError, Project, SourceFile, lint_paths
from .rules import RULES

__all__ = [
    "Finding",
    "LintError",
    "Project",
    "SourceFile",
    "lint_paths",
    "RULES",
]
