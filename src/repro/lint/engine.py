"""Core machinery: source loading, project-wide collection, rule dispatch.

The engine runs in two passes.  Pass one parses every file and builds a
:class:`Project` index — the ``*_BITS`` constant table, the set of
classes that accept an injectable ``stats`` bundle, and the component
classes benchmarks must not construct.  Pass two runs each registered
rule over each file with the index in hand, then filters findings
through inline ``# repro-lint: disable=<rule>`` suppressions.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "LintError",
    "SourceFile",
    "Project",
    "collect_files",
    "lint_paths",
    "lint_sources",
    "path_matches",
]

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+)")

#: Directory fragments never worth parsing.
_SKIP_FRAGMENTS = ("__pycache__", ".egg-info", ".git", ".tox", ".venv")

#: Component layers (used by the project index): classes defined here are
#: hardware/kernel components that benchmarks must reach only through
#: :class:`~repro.sim.config.MachineConfig`.
COMPONENT_LAYERS = (
    "repro/mem/",
    "repro/secmem/",
    "repro/core/",
    "repro/kernel/",
    "repro/fs/",
)

#: Class-name suffixes that mark passive value/config types, not
#: components (constructing these anywhere is fine).
_VALUE_SUFFIXES = (
    "Config",
    "Timing",
    "Costs",
    "Error",
    "Exception",
    "Request",
    "Result",
    "Results",
    "Entry",
    "Eviction",
    "Record",
    "Layout",
    "Key",
    "Table3",
)

_VALUE_BASES = {"Enum", "IntEnum", "Flag", "IntFlag", "Protocol", "Exception", "NamedTuple"}


class LintError(Exception):
    """Configuration or I/O problem (exit code 2, not a finding)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-root-relative, posix separators
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-number-independent identity used for baseline matching,
        so unrelated edits above a baselined finding do not unbaseline it."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


@dataclass
class SourceFile:
    """One parsed module plus its suppression table."""

    path: Path
    rel: str
    text: str
    tree: ast.Module
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, root: Path) -> "SourceFile":
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:  # pragma: no cover - racy filesystem
            raise LintError(f"cannot read {path}: {exc}") from exc
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            raise LintError(f"{rel}: syntax error at line {exc.lineno}: {exc.msg}") from exc
        return cls(
            path=path,
            rel=rel,
            text=text,
            tree=tree,
            suppressions=_scan_suppressions(text),
        )

    def suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line, ())
        return "all" in rules or finding.rule in rules


def _scan_suppressions(text: str) -> Dict[int, Set[str]]:
    """Map line number -> rule names disabled on that line.

    ``# repro-lint: disable=rule-a,rule-b`` at the end of a statement
    suppresses findings reported on that physical line; on a line of its
    own it suppresses the *next* line (handy above multi-line calls).
    ``disable=all`` disables every rule.
    """
    table: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        before = line[: match.start()]
        target = lineno if before.strip(" \t#") else lineno + 1
        table.setdefault(target, set()).update(rules)
        if target != lineno:
            # A standalone comment also covers itself, so a suppression
            # directly on a flagged decorator/comment line still works.
            table.setdefault(lineno, set()).update(rules)
    return table


@dataclass
class Project:
    """Cross-file index built before any rule runs."""

    root: Path
    files: List[SourceFile] = field(default_factory=list)
    #: ``NAME_BITS`` -> declared width, e.g. {"GROUP_ID_BITS": 18}.
    bits_constants: Dict[str, int] = field(default_factory=dict)
    #: alias ``*_BITS`` name -> source ``*_BITS`` name, from cross-module
    #: imports (``from x import FOO_BITS as BAR_BITS``) and re-binding
    #: assignments (``BAR_BITS = pkg.FOO_BITS``); resolved into
    #: :attr:`bits_constants` at the end of :meth:`index`.
    bits_aliases: Dict[str, str] = field(default_factory=dict)
    #: class name -> positional index (self excluded) of its ``stats``
    #: parameter, for classes that accept an injectable StatCounters.
    stats_classes: Dict[str, int] = field(default_factory=dict)
    #: classes defined in component layers that benchmarks must not build.
    component_classes: Dict[str, str] = field(default_factory=dict)  # name -> defining rel path
    #: lazily-built whole-program analysis (repro.lint.flow.FlowAnalysis),
    #: shared by every flow rule in one lint pass.
    _flow: Optional[object] = field(default=None, repr=False, compare=False)

    def flow(self, options: Dict[str, object]):
        """The whole-program :class:`~repro.lint.flow.FlowAnalysis`.

        Built on first use from the *configured* lint paths (unioned with
        the files in this project), so flow rules reason about the whole
        program even when only a subset of files is being linted.
        """
        if self._flow is None:
            from .flow import build_flow  # local import: flow imports engine

            self._flow = build_flow(self.root, options, self.files)
        return self._flow

    def index(self) -> None:
        for src in self.files:
            self._index_file(src)
        self._resolve_bits_aliases()

    def _resolve_bits_aliases(self) -> None:
        """Fixpoint-resolve alias chains into :attr:`bits_constants`.

        ``A_BITS -> B_BITS -> 18`` may need two passes when ``A_BITS`` is
        indexed before ``B_BITS``; iterate until no alias resolves, so
        chain order and file order never matter.
        """
        pending = dict(self.bits_aliases)
        while pending:
            progressed = False
            for alias, source in list(pending.items()):
                width = self.bits_constants.get(source)
                if width is not None:
                    self.bits_constants.setdefault(alias, width)
                    del pending[alias]
                    progressed = True
            if not progressed:  # unresolvable (or circular) aliases remain
                break

    def _index_file(self, src: SourceFile) -> None:
        in_component_layer = path_matches(src.rel, COMPONENT_LAYERS)
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and target.id.lstrip("_").endswith("_BITS")
                ):
                    name = target.id.lstrip("_")
                    if isinstance(node.value, ast.Constant) and isinstance(node.value.value, int):
                        self.bits_constants.setdefault(name, node.value.value)
                    else:
                        source = _bits_source_name(node.value)
                        if source is not None and source != name:
                            self.bits_aliases.setdefault(name, source)
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    bound = (alias.asname or alias.name).lstrip("_")
                    original = alias.name.lstrip("_")
                    if bound.endswith("_BITS") and original.endswith("_BITS") and bound != original:
                        self.bits_aliases.setdefault(bound, original)
            elif isinstance(node, ast.ClassDef):
                stats_index = _stats_param_index(node)
                if stats_index is not None:
                    self.stats_classes.setdefault(node.name, stats_index)
                if in_component_layer and _is_component_class(node):
                    self.component_classes.setdefault(node.name, src.rel)


def _bits_source_name(value: ast.AST) -> Optional[str]:
    """Terminal ``*_BITS`` identifier of an alias RHS, if it is one.

    Accepts a bare name (``FOO_BITS``) or a dotted reference whose last
    attribute is a ``*_BITS`` constant (``ott.FOO_BITS``).
    """
    if isinstance(value, ast.Name):
        name = value.id.lstrip("_")
    elif isinstance(value, ast.Attribute):
        name = value.attr.lstrip("_")
    else:
        return None
    return name if name.endswith("_BITS") else None


def _stats_param_index(cls: ast.ClassDef) -> Optional[int]:
    """Positional index of an optional ``stats`` parameter, if the class
    has one — either in an explicit ``__init__`` or as a dataclass field."""
    for item in cls.body:
        if isinstance(item, ast.FunctionDef) and item.name == "__init__":
            names = [arg.arg for arg in item.args.args[1:]]  # drop self
            if "stats" in names:
                return names.index("stats")
            return None
    if not _has_dataclass_decorator(cls):
        return None
    fields = [
        item.target.id
        for item in cls.body
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name)
    ]
    if "stats" in fields:
        return fields.index("stats")
    return None


def _has_dataclass_decorator(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        node = deco.func if isinstance(deco, ast.Call) else deco
        name = node.attr if isinstance(node, ast.Attribute) else getattr(node, "id", "")
        if name == "dataclass":
            return True
    return False


def _is_component_class(cls: ast.ClassDef) -> bool:
    if cls.name.startswith("_"):
        return False
    if any(cls.name.endswith(suffix) for suffix in _VALUE_SUFFIXES):
        return False
    for base in cls.bases:
        name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
        if name in _VALUE_BASES or name.endswith(("Error", "Exception")):
            return False
    return True


def path_matches(rel: str, patterns: Iterable[str]) -> bool:
    """True if any pattern occurs as a path fragment of ``rel``.

    Patterns are plain posix fragments ("repro/sim/", "benchmarks/"); a
    trailing slash anchors on directory boundaries.  This deliberately
    matches both "src/repro/sim/x.py" and "repro/sim/x.py" layouts.
    """
    probe = "/" + rel
    for pattern in patterns:
        if not pattern:
            continue
        if pattern in probe or probe.endswith("/" + pattern.rstrip("/")):
            return True
    return False


def collect_files(paths: Sequence[Path], root: Path) -> List[Path]:
    """Expand files/directories into the sorted list of lintable modules."""
    seen: Set[Path] = set()
    out: List[Path] = []
    for path in paths:
        if not path.exists():
            raise LintError(f"path does not exist: {path}")
        candidates = [path] if path.is_file() else sorted(path.rglob("*.py"))
        for candidate in candidates:
            posix = candidate.as_posix()
            if any(fragment in posix for fragment in _SKIP_FRAGMENTS):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out


def lint_sources(
    sources: List[SourceFile],
    root: Path,
    rules: Iterable,
    options: Dict[str, object],
    only: Optional[Set[str]] = None,
    project: Optional[Project] = None,
) -> Tuple[List[Finding], int]:
    """Run ``rules`` over parsed sources.

    Returns ``(active_findings, suppressed_count)`` — suppressed findings
    are dropped, everything else is sorted by location.

    ``only`` restricts which files findings are *reported* for while the
    cross-file index (and the flow graph) still sees every source — the
    ``--changed`` contract: narrow output, whole-program analysis.
    """
    if project is None:
        project = Project(root=root, files=sources)
        project.index()
    active: List[Finding] = []
    suppressed = 0
    for src in sources:
        if only is not None and src.rel not in only:
            continue
        for rule in rules:
            for finding in rule.check(src, project, options):
                if src.suppressed(finding):
                    suppressed += 1
                else:
                    active.append(finding)
    active.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return active, suppressed


def lint_paths(
    paths: Sequence[Path],
    root: Path,
    rules: Iterable,
    options: Dict[str, object],
) -> Tuple[List[Finding], int, int]:
    """Convenience wrapper: collect, parse, lint.

    Returns ``(findings, suppressed_count, file_count)``.
    """
    files = collect_files(paths, root)
    sources = [SourceFile.parse(path, root) for path in files]
    findings, suppressed = lint_sources(sources, root, rules, options)
    return findings, suppressed, len(sources)
