"""Command-line front end: ``python -m repro.lint`` / ``repro-lint``.

Exit codes:

* 0 — clean (every finding suppressed inline or matched by the baseline;
  with ``--strict``, additionally no stale baseline entries)
* 1 — new findings (or, under ``--strict``, stale baseline entries)
* 2 — usage, configuration, or parse error
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from .baseline import Baseline, split_findings
from .config import load_config
from .engine import LintError, lint_paths
from .rules import RULES

__all__ = ["main", "run"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant linter for the FsEncr simulator "
        "(see docs/LINT.md for the rule catalogue).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: [tool.repro-lint] paths)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root (pyproject.toml and baseline live here; default: cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json is what CI consumes)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on stale baseline entries (debt that has been paid off)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: [tool.repro-lint] baseline; '-' disables)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _pick_rules(select: Optional[str], ignore: Optional[str]) -> List[object]:
    names = list(RULES)
    if select:
        wanted = [part.strip() for part in select.split(",") if part.strip()]
        unknown = [name for name in wanted if name not in RULES]
        if unknown:
            raise LintError(f"unknown rule(s): {', '.join(unknown)}")
        names = [name for name in names if name in wanted]
    if ignore:
        dropped = {part.strip() for part in ignore.split(",") if part.strip()}
        unknown = [name for name in dropped if name not in RULES]
        if unknown:
            raise LintError(f"unknown rule(s): {', '.join(unknown)}")
        names = [name for name in names if name not in dropped]
    return [RULES[name] for name in names]


def _list_rules(fmt: str) -> int:
    if fmt == "json":
        payload = {
            name: {"summary": rule.summary, "contract": rule.contract}
            for name, rule in sorted(RULES.items())
        }
        print(json.dumps(payload, indent=2))
    else:
        for name, rule in sorted(RULES.items()):
            print(f"{name}: {rule.summary}")
            if rule.contract:
                print(f"    protects: {rule.contract}")
    return 0


def run(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        return _list_rules(args.format)

    root = Path(args.root)
    if not root.exists():
        raise LintError(f"root does not exist: {root}")
    options = load_config(root)
    rules = _pick_rules(args.select, args.ignore)

    raw_paths = args.paths or options.get("paths", ["."])
    paths = [Path(p) if Path(p).is_absolute() else root / p for p in raw_paths]
    findings, suppressed, file_count = lint_paths(paths, root, rules, options)

    baseline_arg = args.baseline if args.baseline is not None else str(options.get("baseline", ""))
    baseline_path: Optional[Path] = None
    if baseline_arg and baseline_arg != "-":
        candidate = Path(baseline_arg)
        baseline_path = candidate if candidate.is_absolute() else root / candidate

    if args.write_baseline:
        if baseline_path is None:
            raise LintError("--write-baseline needs a baseline path (config or --baseline)")
        Baseline.from_findings(findings).write(baseline_path)
        print(f"repro-lint: wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    baseline = Baseline.load(baseline_path) if baseline_path is not None else Baseline()
    new, baselined, stale = split_findings(findings, baseline)

    exit_code = 1 if new or (args.strict and stale) else 0
    summary = {
        "new": len(new),
        "baselined": len(baselined),
        "suppressed": suppressed,
        "stale_baseline": len(stale),
        "files": file_count,
    }

    if args.format == "json":
        payload = {
            "version": 1,
            "findings": [dict(f.to_dict(), status="new") for f in new]
            + [dict(f.to_dict(), status="baselined") for f in baselined],
            "stale_baseline": stale,
            "summary": summary,
            "exit_code": exit_code,
        }
        print(json.dumps(payload, indent=2))
        return exit_code

    for finding in new:
        print(finding.render())
    if stale:
        for entry in stale:
            print(
                f"stale baseline entry: {entry['rule']} in {entry['path']} "
                f"(x{entry['count']}) no longer occurs — remove it"
            )
    status = "FAILED" if exit_code else "ok"
    print(
        f"repro-lint: {status} — {summary['new']} new, {summary['baselined']} baselined, "
        f"{summary['suppressed']} suppressed, {summary['stale_baseline']} stale baseline "
        f"entr{'y' if summary['stale_baseline'] == 1 else 'ies'} across {file_count} files"
    )
    return exit_code


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return run(argv)
    except LintError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
