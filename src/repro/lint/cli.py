"""Command-line front end: ``python -m repro.lint`` / ``repro-lint``.

Exit codes:

* 0 — clean (every finding suppressed inline or matched by the baseline;
  with ``--strict``, additionally no stale baseline entries)
* 1 — new findings (or, under ``--strict``, stale baseline entries)
* 2 — usage, configuration, or parse error
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from .baseline import Baseline, split_findings
from .config import load_config
from .engine import LintError, Project, SourceFile, collect_files, lint_sources
from .rules import RULES
from .sarif import to_sarif

__all__ = ["main", "run"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant linter for the FsEncr simulator "
        "(see docs/LINT.md for the rule catalogue).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: [tool.repro-lint] paths)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root (pyproject.toml and baseline live here; default: cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (json for scripts, sarif for code-scanning upload)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only files changed per git (plus their reverse-import "
        "dependents via the flow graph); analysis stays whole-program",
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help="dump the whole-program flow graph (imports, call edges, stats) "
        "as JSON and exit",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help="rewrite the baseline file without stale (paid-off) entries and exit",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on stale baseline entries (debt that has been paid off)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: [tool.repro-lint] baseline; '-' disables)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _pick_rules(select: Optional[str], ignore: Optional[str]) -> List[object]:
    names = list(RULES)
    if select:
        wanted = [part.strip() for part in select.split(",") if part.strip()]
        unknown = [name for name in wanted if name not in RULES]
        if unknown:
            raise LintError(f"unknown rule(s): {', '.join(unknown)}")
        names = [name for name in names if name in wanted]
    if ignore:
        dropped = {part.strip() for part in ignore.split(",") if part.strip()}
        unknown = [name for name in dropped if name not in RULES]
        if unknown:
            raise LintError(f"unknown rule(s): {', '.join(unknown)}")
        names = [name for name in names if name not in dropped]
    return [RULES[name] for name in names]


def _list_rules(fmt: str) -> int:
    if fmt == "json":
        payload = {
            name: {"summary": rule.summary, "contract": rule.contract}
            for name, rule in sorted(RULES.items())
        }
        print(json.dumps(payload, indent=2))
    else:
        for name, rule in sorted(RULES.items()):
            print(f"{name}: {rule.summary}")
            if rule.contract:
                print(f"    protects: {rule.contract}")
    return 0


def _git_changed_rels(root: Path) -> List[str]:
    """Repo-relative paths git considers changed: worktree + staged +
    untracked (the files a developer is about to commit)."""
    import subprocess

    rels: List[str] = []
    commands = [
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ]
    for command in commands:
        try:
            proc = subprocess.run(
                command,
                cwd=root,
                capture_output=True,
                text=True,
                check=True,
            )
        except (OSError, subprocess.CalledProcessError) as exc:
            raise LintError(f"--changed needs a git checkout: {exc}")
        rels.extend(line.strip() for line in proc.stdout.splitlines() if line.strip())
    return sorted(set(rels))


def run(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        return _list_rules(args.format)

    root = Path(args.root)
    if not root.exists():
        raise LintError(f"root does not exist: {root}")
    options = load_config(root)
    rules = _pick_rules(args.select, args.ignore)

    raw_paths = args.paths or options.get("paths", ["."])
    paths = [Path(p) if Path(p).is_absolute() else root / p for p in raw_paths]
    files = collect_files(paths, root)
    sources = [SourceFile.parse(path, root) for path in files]
    project = Project(root=root, files=sources)
    project.index()

    if args.graph:
        flow = project.flow(options)
        payload = dict(flow.graph.graph_dump(), index_cache=flow.cache_stats.to_dict())
        print(json.dumps(payload, indent=2))
        return 0

    only: Optional[set] = None
    if args.changed:
        changed = set(_git_changed_rels(root))
        known = {src.rel for src in sources}
        changed &= known
        if changed:
            # Expand to reverse-import dependents so a touched leaf
            # re-checks whoever depends on it; any flow failure falls
            # back to the changed files alone.
            try:
                flow = project.flow(options)
                only = set(flow.graph.dependents_of(sorted(changed))) & known
                only |= changed
            except LintError:
                only = changed
        else:
            only = set()

    findings, suppressed = lint_sources(
        sources, root, rules, options, only=only, project=project
    )
    file_count = len(sources) if only is None else len(only)

    baseline_arg = args.baseline if args.baseline is not None else str(options.get("baseline", ""))
    baseline_path: Optional[Path] = None
    if baseline_arg and baseline_arg != "-":
        candidate = Path(baseline_arg)
        baseline_path = candidate if candidate.is_absolute() else root / candidate

    if args.write_baseline or args.prune_baseline:
        if baseline_path is None:
            raise LintError(
                "--write-baseline/--prune-baseline need a baseline path "
                "(config or --baseline)"
            )
        if only is not None:
            raise LintError("--changed cannot rewrite the baseline (partial view)")
        previous = Baseline.load(baseline_path)
        if args.write_baseline:
            Baseline.from_findings(findings, previous).write(baseline_path)
            print(f"repro-lint: wrote {len(findings)} finding(s) to {baseline_path}")
            return 0
        pruned = previous.pruned(findings)
        dropped = sum(previous.entries.values()) - sum(pruned.entries.values())
        pruned.write(baseline_path)
        print(
            f"repro-lint: pruned {dropped} stale entr"
            f"{'y' if dropped == 1 else 'ies'} from {baseline_path}"
        )
        return 0

    baseline = Baseline.load(baseline_path) if baseline_path is not None else Baseline()
    new, baselined, stale = split_findings(findings, baseline)
    if only is not None:
        # A partial lint cannot tell paid-off debt from unvisited files.
        stale = []

    exit_code = 1 if new or (args.strict and stale) else 0
    summary = {
        "new": len(new),
        "baselined": len(baselined),
        "suppressed": suppressed,
        "stale_baseline": len(stale),
        "files": file_count,
    }
    if project._flow is not None:
        summary["flow"] = project._flow.summary_stats()

    if args.format == "sarif":
        print(json.dumps(to_sarif(new, baselined), indent=2))
        return exit_code

    if args.format == "json":
        payload = {
            "version": 1,
            "findings": [dict(f.to_dict(), status="new") for f in new]
            + [dict(f.to_dict(), status="baselined") for f in baselined],
            "stale_baseline": stale,
            "summary": summary,
            "exit_code": exit_code,
        }
        print(json.dumps(payload, indent=2))
        return exit_code

    for finding in new:
        print(finding.render())
    if stale:
        for entry in stale:
            print(
                f"warning: stale-baseline: {entry['rule']} in {entry['path']} "
                f"(x{entry['count']}) no longer occurs — run --prune-baseline"
            )
    status = "FAILED" if exit_code else "ok"
    print(
        f"repro-lint: {status} — {summary['new']} new, {summary['baselined']} baselined, "
        f"{summary['suppressed']} suppressed, {summary['stale_baseline']} stale baseline "
        f"entr{'y' if summary['stale_baseline'] == 1 else 'ies'} across {file_count} files"
    )
    return exit_code


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return run(argv)
    except LintError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
