"""Moving an encrypted filesystem to a new machine (§VI).

Hardware-rooted encryption normally pins a DIMM to its processor: the
memory key, OTT key, and Merkle root live on-chip, so a module plugged
into another socket is unreadable cipher-soup.  The paper's escape hatch
is an *authorised transport*: flush the OTT to its encrypted region,
seal {memory key, OTT key, integrity root} under a passphrase-derived
transport key, carry the package out-of-band, and have the destination
authenticate it before adopting the keys.

Two artefacts model that flow:

* :class:`DimmImage` — everything that physically travels on the module:
  the ciphertext store, both counter stores, the sealed OTT region
  lines, and the Merkle node array.
* :class:`TransportPackage` — the sealed on-chip secrets.

``export_machine`` produces both from a live controller;
``import_machine`` builds a new controller around them, verifying the
package tag (wrong passphrase => refusal) and the integrity root
(tampered DIMM => refusal).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Optional

from ..crypto.aes import AES128
from ..crypto.keys import KEY_SIZE, KeyHierarchy, derive_fekek
from ..crypto.otp import xor_bytes
from ..secmem.layout import MetadataLayout
from ..secmem.secure_controller import SecureControllerConfig
from .fsencr import FsEncrController

__all__ = ["TransportError", "TransportPackage", "DimmImage", "export_machine", "import_machine"]

_TRANSPORT_SALT = b"fsencr-transport-salt"


class TransportError(Exception):
    """Transport authentication or integrity verification failed."""


@dataclass(frozen=True)
class TransportPackage:
    """The sealed on-chip secrets: 2 keys + the root, under one pad.

    Sealed as ``(keys XOR pad, root, tag)`` where the pad derives from
    the transport passphrase and the tag authenticates everything; the
    root itself is not secret (it is a hash), only binding.
    """

    sealed_keys: bytes  # 32 bytes: memory key || ott key, padded
    merkle_root: bytes
    tag: bytes


@dataclass
class DimmImage:
    """References to the state that physically moves with the module."""

    store: object  # NVMStore
    mecb: object  # CounterStore
    fecb: object  # FECBStore
    ott_region_lines: dict
    ott_region_occupancy: dict
    merkle_nodes: dict
    merkle_touched: set


def _transport_pad(passphrase: str) -> bytes:
    """Two AES blocks of pad from the passphrase-derived transport key."""
    tkey = derive_fekek(passphrase, _TRANSPORT_SALT)
    cipher = AES128(tkey)
    return cipher.encrypt_block(b"fsencr-transprt0") + cipher.encrypt_block(
        b"fsencr-transprt1"
    )


def _tag(passphrase: str, sealed: bytes, root: bytes) -> bytes:
    tkey = derive_fekek(passphrase, _TRANSPORT_SALT)
    return hmac.new(tkey, b"fsencr-transport" + sealed + root, hashlib.sha256).digest()


def export_machine(
    controller: FsEncrController, passphrase: str
) -> "tuple[TransportPackage, DimmImage]":
    """Prepare a controller's filesystem for transport.

    Flushes the on-chip OTT into the encrypted region (so no key exists
    only in volatile on-chip state), then seals the chip secrets.
    """
    controller.crash_flush_ott()
    plaintext = controller.keys.memory_key + controller.keys.ott_key
    pad = _transport_pad(passphrase)
    sealed = xor_bytes(plaintext, pad)
    root = controller.merkle.root
    package = TransportPackage(
        sealed_keys=sealed, merkle_root=root, tag=_tag(passphrase, sealed, root)
    )
    dimm = DimmImage(
        store=controller.store,
        mecb=controller.mecb,
        fecb=controller.fecb,
        ott_region_lines=dict(controller.ott_region._lines),
        ott_region_occupancy=dict(controller.ott_region._occupancy),
        merkle_nodes=dict(controller.merkle._nodes),
        merkle_touched=set(controller.merkle._touched),
    )
    controller.stats.add("transports_exported")
    return package, dimm


def import_machine(
    layout: MetadataLayout,
    package: TransportPackage,
    dimm: DimmImage,
    passphrase: str,
    config: Optional[SecureControllerConfig] = None,
) -> FsEncrController:
    """Adopt a transported filesystem on a new processor.

    Raises :class:`TransportError` on a wrong passphrase (tag mismatch)
    or a DIMM whose metadata no longer matches the transported root.
    """
    expected = _tag(passphrase, package.sealed_keys, package.merkle_root)
    if not hmac.compare_digest(expected, package.tag):
        raise TransportError("transport authentication failed (wrong passphrase?)")

    pad = _transport_pad(passphrase)
    plaintext = xor_bytes(package.sealed_keys, pad)
    keys = KeyHierarchy(plaintext[:KEY_SIZE], plaintext[KEY_SIZE:])

    # Throwaway functional controller for the receiving machine; no
    # results registry exists here and no machine is being wired.
    # repro-lint: disable=stats-registered,builder-owns-wiring
    controller = FsEncrController(
        layout=layout,
        keys=keys,
        config=config or SecureControllerConfig(functional=True),
        store=dimm.store,
    )
    controller.mecb = dimm.mecb
    controller.fecb = dimm.fecb
    controller.ott_region._lines = dict(dimm.ott_region_lines)
    controller.ott_region._occupancy = dict(dimm.ott_region_occupancy)
    controller.merkle._nodes = dict(dimm.merkle_nodes)
    controller.merkle._touched = set(dimm.merkle_touched)
    controller.merkle._root = controller.merkle._node_digest(
        controller.merkle.num_levels - 1, 0
    )

    # Authenticate the module: its metadata must hash to the root the
    # authorised transport carried.
    if controller.merkle.rebuild_root() != package.merkle_root:
        raise TransportError("DIMM integrity root mismatch: module was tampered")

    recovered = controller.recover_ott_after_crash()
    controller.stats.add("transports_imported")
    controller.stats.add("transport_keys_recovered", recovered)
    return controller
