"""File Encryption Counter Blocks (FECB).

§III-D: a FECB accompanies every MECB, covering the same 4 KB page, but
with the layout 18-bit Group ID + 14-bit File ID + 32-bit major counter
+ 64 x 7-bit minor counters.  The embedded IDs are how the memory
controller maps a DAX request to its file key: extract (group, file)
from the page's FECB, look the key up in the OTT.

FECBs are stamped at DAX fault time (MMIO ``UPDATE_FECB``) and
re-initialised when the page changes hands — footnote 4: file counters
only need to survive the file's lifetime, so re-stamping for a new file
resets them, and deletion invalidates them (the Silent-Shredder-style
secure delete: old ciphertext becomes undecryptable even with the old
key, because the pad depended on counters that are gone).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..secmem.counters import CounterBlock, FECB_MAJOR_BITS
from .ott import FILE_ID_BITS, GROUP_ID_BITS

__all__ = ["FECBlock", "FECBStore"]


@dataclass
class FECBlock:
    """One FECB line: owning-file identity + a split-counter block."""

    group_id: int = 0
    file_id: int = 0
    counters: CounterBlock = field(
        default_factory=lambda: CounterBlock(major_bits=FECB_MAJOR_BITS)
    )

    @property
    def stamped(self) -> bool:
        """Whether this page currently belongs to an encrypted file."""
        return self.file_id != 0 or self.group_id != 0

    @property
    def ident(self) -> Tuple[int, int]:
        return (self.group_id, self.file_id)

    def stamp(self, group_id: int, file_id: int) -> bool:
        """Bind the page to a file.  Returns True if counters were reset
        (page recycled from a different file — fresh counters both for
        security hygiene and because the old file's versions are dead)."""
        if not 0 <= group_id < (1 << GROUP_ID_BITS):
            raise ValueError(f"group_id {group_id} exceeds {GROUP_ID_BITS} bits")
        if not 0 <= file_id < (1 << FILE_ID_BITS):
            raise ValueError(f"file_id {file_id} exceeds {FILE_ID_BITS} bits")
        reset = self.stamped and (group_id, file_id) != self.ident
        if reset:
            self.counters.reset()
        self.group_id = group_id
        self.file_id = file_id
        return reset

    def invalidate(self) -> None:
        """Unbind (file deleted): secure-delete semantics for the page."""
        self.group_id = 0
        self.file_id = 0
        self.counters.reset()

    def serialize(self) -> bytes:
        """Canonical bytes for Merkle hashing: IDs + counters.

        The paper stresses that the ID fields must be integrity-protected
        along with the counters (§VI) — including them here is that
        protection: the BMT hashes this serialisation.
        """
        ids = (self.group_id << FILE_ID_BITS) | self.file_id
        return ids.to_bytes(4, "big") + self.counters.serialize()


class FECBStore:
    """Sparse page -> FECB map (the memory-resident truth)."""

    def __init__(self) -> None:
        self._blocks: Dict[int, FECBlock] = {}

    def block(self, page: int) -> FECBlock:
        existing = self._blocks.get(page)
        if existing is None:
            existing = FECBlock()
            self._blocks[page] = existing
        return existing

    def peek(self, page: int) -> Optional[FECBlock]:
        return self._blocks.get(page)

    def stamped_pages(self, group_id: int, file_id: int) -> "list[int]":
        """Every page currently bound to a file (delete/re-key walks)."""
        return [
            page
            for page, blk in self._blocks.items()
            if blk.ident == (group_id, file_id) and blk.stamped
        ]

    def snapshot(self) -> Dict[int, Tuple[int, int, int, Tuple[int, ...]]]:
        return {
            page: (blk.group_id, blk.file_id, blk.counters.major, tuple(blk.counters.minors))
            for page, blk in self._blocks.items()
        }

    def restore(self, snapshot: Dict[int, Tuple[int, int, int, Tuple[int, ...]]]) -> None:
        self._blocks.clear()
        for page, (group_id, file_id, major, minors) in snapshot.items():
            blk = FECBlock(group_id=group_id, file_id=file_id)
            blk.counters.load(major, minors)
            self._blocks[page] = blk
