"""FsEncr core: the paper's hardware-assisted filesystem encryption.

Public surface of the contribution: the DF-bit address tagging, the
File Encryption Counter Blocks, the Open Tunnel Table (+ its encrypted
spill region), and the FsEncr memory controller that composes the
memory and file one-time pads.
"""

from ..mem.dfbit import (
    DF_BIT_POSITION,
    DF_MASK,
    PHYSICAL_ADDRESS_BITS,
    clear_df,
    has_df,
    set_df,
    strip,
)
from .enclave import AttestationError, Enclave, EnclaveManager, EnclaveOwnershipError
from .fecb import FECBlock, FECBStore
from .fsencr import FsEncrController
from .transport import (
    DimmImage,
    TransportError,
    TransportPackage,
    export_machine,
    import_machine,
)
from .ott import (
    FILE_ID_BITS,
    GROUP_ID_BITS,
    EncryptedOTTRegion,
    KeyUnavailableError,
    OpenTunnelTable,
    OTTEntry,
)

__all__ = [
    "DF_BIT_POSITION",
    "DF_MASK",
    "PHYSICAL_ADDRESS_BITS",
    "set_df",
    "clear_df",
    "has_df",
    "strip",
    "FECBlock",
    "Enclave",
    "EnclaveManager",
    "AttestationError",
    "EnclaveOwnershipError",
    "FECBStore",
    "FsEncrController",
    "TransportError",
    "TransportPackage",
    "DimmImage",
    "export_machine",
    "import_machine",
    "OpenTunnelTable",
    "OTTEntry",
    "EncryptedOTTRegion",
    "KeyUnavailableError",
    "GROUP_ID_BITS",
    "FILE_ID_BITS",
]
