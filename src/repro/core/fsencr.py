"""The FsEncr memory controller — the paper's contribution.

Extends the baseline secure controller (counter-mode memory encryption +
BMT) with the per-file layer:

* **Recognition** — the DF-bit in the physical address routes the
  request through the file path (Figure 5).
* **Key mapping** — the page's FECB names (Group ID, File ID); the OTT
  maps that to the 128-bit file key, spilling to / refilling from the
  encrypted OTT region in memory.
* **Dual OTP** — OTP_file (file key + FECB counters) XOR OTP_mem
  (memory key + MECB counters) is the final pad for DAX lines
  (Figure 7); non-DAX lines use OTP_mem alone, unchanged.
* **Integrity** — FECBs and the OTT region are additional Merkle leaves.
* **Management** — MMIO verbs from the kernel (install/revoke/stamp/
  admin-login), counter-overflow re-keying, secure deletion, and OTT
  crash logging (§III-H option 1: every OTT update is logged through to
  the encrypted region immediately, so the on-chip table is recoverable).

Timing: for a DAX read the two pads are generated in parallel, so the
added cost over the baseline is the *file-metadata path* — FECB fetch
(concurrent with the MECB fetch) plus the serial OTT lookup — which is
invisible when the metadata cache hits and is exactly the Figure 12-15
sensitivity when it does not.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from ..crypto.iv import FILE_DOMAIN, CounterIV
from ..crypto.keys import KeyHierarchy
from ..crypto.otp import OTPEngine, xor_bytes
from ..mem import dfbit
from ..mem.address import LINE_SIZE, page_number, page_offset_lines
from ..mem.controller import MemoryRequest
from ..mem.nvm import NVMDevice, NVMStore
from ..mem.stats import StatCounters
from ..secmem.layout import MetadataLayout
from ..secmem.metadata_cache import MetadataKind
from ..secmem.secure_controller import BaselineSecureController, SecureControllerConfig
from .fecb import FECBStore
from .ott import EncryptedOTTRegion, KeyUnavailableError, OpenTunnelTable, OTTEntry

__all__ = ["FsEncrController"]


class FsEncrController(BaselineSecureController):
    """Baseline security + hardware-assisted filesystem encryption."""

    def __init__(
        self,
        layout: Optional[MetadataLayout] = None,
        keys: Optional[KeyHierarchy] = None,
        config: Optional[SecureControllerConfig] = None,
        device: Optional[NVMDevice] = None,
        store: Optional[NVMStore] = None,
        stats: Optional[StatCounters] = None,
        ott: Optional[OpenTunnelTable] = None,
    ) -> None:
        super().__init__(
            layout=layout,
            keys=keys,
            config=config,
            device=device,
            store=store,
            stats=stats or StatCounters("fsencr_controller"),
        )
        # `ott or ...` would discard an injected *empty* table (it has
        # __len__); compare against None explicitly.  Machine injects a
        # registered table; the region's bundle is registered
        # post-construction.
        self.ott = ott if ott is not None else OpenTunnelTable()  # repro-lint: disable=stats-registered,builder-owns-wiring
        self.ott_region = EncryptedOTTRegion(  # repro-lint: disable=stats-registered
            slots=self.layout.ott_slots, ott_key=self.keys.ott_key
        )
        self.fecb = FECBStore()
        # One pooled file engine: re-keyed per request in functional mode.
        # Hardware would pipeline one AES datapath the same way.
        self._file_engine = OTPEngine(bytes(16)) if self.config.functional else None
        self._locked = False  # admin_login failure locks file decryption
        # Persisted-FECB journal, the file-layer sibling of the MECB
        # journal: {page: (group_id, file_id, major, minors)} as a
        # post-crash reader of the FECB region would see it.
        self._persisted_fecb: Dict[int, Tuple[int, int, int, Tuple[int, ...]]] = {}
        # Slots whose sealed record failed its tag during the last OTT
        # recovery scan — media faults detected, keys *not* trusted.
        self.ott_rejected_slots = 0
        for key in (
            "osiris_fecb_persists",
            "overflow_fecb_persists",
            "ott_refills",
            "ott_spills",
            "fecb_stamps",
            "keys_installed",
            "ott_recovery_rejects",
        ):
            self.stats.add(key, 0)

    # ==================================================================
    # MMIOTarget — the kernel-facing management verbs (§III-F-1)
    # ==================================================================

    def install_file_key(self, group_id: int, file_id: int, key: bytes) -> None:
        """File created/opened: key into the OTT, logged to the region.

        Write-through logging is the paper's first crash-consistency
        option for the OTT; it also means an OTT *eviction* needs no
        extra memory write (the region copy is already current).
        """
        entry = OTTEntry(group_id=group_id, file_id=file_id, key=key)
        victim = self.ott.insert(entry)
        slot = self.ott_region.store(entry)
        self._ott_slot_written(slot)
        if victim is not None:
            # The victim was already logged at install time; nothing to
            # write back.  Count it for the ablation study.
            self.stats.add("ott_spills")
        self.stats.add("keys_installed")

    def revoke_file_key(self, group_id: int, file_id: int) -> None:
        """File deleted: drop both copies and shred the file's counters.

        Invalidating every stamped FECB is the Silent-Shredder-style
        secure delete (§VI): even a process that kept the old key cannot
        decrypt recycled pages, because the pads' counters are gone.
        """
        self.ott.remove(group_id, file_id)
        slot = self.ott_region.remove(group_id, file_id)
        if slot is not None:
            self._ott_slot_written(slot)
        for page in self.fecb.stamped_pages(group_id, file_id):
            self.fecb.block(page).invalidate()
            if self.config.functional:
                self.merkle.update_leaf(self.layout.fecb_addr(page))
            # Secure delete is only secure if it survives a crash: the
            # shredded FECB is durable immediately.
            self._journal_protected_persist(self.layout.fecb_addr(page))
        self.stats.add("keys_revoked")

    def update_fecb(self, page: int, group_id: int, file_id: int) -> None:
        """DAX fault: stamp the page's FECB (§III-C / Figure 5).

        If the FECB line is cached it is updated in place and dirtied;
        the in-memory truth is the FECBStore either way.
        """
        block = self.fecb.block(page)
        reset = block.stamp(group_id, file_id)
        fecb_addr = self.layout.fecb_addr(page)
        _, evictions = self.metadata_cache.access(
            fecb_addr, MetadataKind.FECB, is_write=True
        )
        self._handle_metadata_evictions(evictions)
        if self.config.functional:
            self.merkle.update_leaf(fecb_addr)
        # The stamp rides the kernel's synchronous DAX-fault path, so the
        # identity binding (and a recycle's counter reset — the Silent-
        # Shredder property) is durable at fault return; only subsequent
        # counter bumps ride the Osiris stop-loss window.
        self._journal_protected_persist(fecb_addr)
        self.stats.add("fecb_stamps")
        if reset:
            self.stats.add("fecb_recycles")

    def admin_login(self, credential_digest: bytes) -> bool:
        """Boot-time admin check (§VI "Protecting Files from Internal
        Attacks").  A wrong credential locks the file-decryption engine:
        memory encryption keeps working, file contents stay sealed."""
        expected = getattr(self, "_admin_digest", None)
        if expected is None:
            # First boot enrolls the credential.
            self._admin_digest = bytes(credential_digest)
            self._locked = False
            return True
        self._locked = not self._constant_time_eq(expected, credential_digest)
        if self._locked:
            self.stats.add("failed_admin_logins")
        return not self._locked

    @staticmethod
    def _constant_time_eq(a: bytes, b: bytes) -> bool:
        if len(a) != len(b):
            return False
        diff = 0
        for x, y in zip(a, b):
            diff |= x ^ y
        return diff == 0

    @property
    def locked(self) -> bool:
        return self._locked

    # ==================================================================
    # OTT region <-> Merkle plumbing
    # ==================================================================

    def _ott_slot_written(self, slot: int) -> None:
        addr = self.layout.ott_slot_addr(slot)
        self.device.write(addr)
        self.stats.add("ott_region_writes")
        if self.config.functional:
            self.merkle.update_leaf(addr)

    def _journal_protected_persist(self, addr: int) -> None:
        """FECB-range persists land in the file-layer journal."""
        if not self.layout.fecb_base <= addr < self.layout.ott_base:
            return
        page = (addr - self.layout.fecb_base) // LINE_SIZE
        block = self.fecb.peek(page)
        if block is not None:
            self._persisted_fecb[page] = (
                block.group_id,
                block.file_id,
                block.counters.major,
                tuple(block.counters.minors),
            )

    def _integrity_leaf_addrs(self):
        """Adds the file layer's leaves: FECBs and occupied OTT slots."""
        yield from super()._integrity_leaf_addrs()
        for page in sorted(self.fecb.snapshot()):
            yield self.layout.fecb_addr(page)
        for slot in range(self.layout.ott_slots):
            if self.ott_region.slot_bytes(slot) != bytes(LINE_SIZE):
                yield self.layout.ott_slot_addr(slot)

    def _protected_leaf_bytes(self, addr: int) -> bytes:
        """Merkle leaf content for FECB lines and OTT-region slots."""
        if self.layout.fecb_base <= addr < self.layout.ott_base:
            page = (addr - self.layout.fecb_base) // LINE_SIZE
            block = self.fecb.peek(page)
            if block is None:
                return bytes(LINE_SIZE)
            raw = block.serialize()
            return raw + bytes(LINE_SIZE - len(raw))
        if self.layout.ott_base <= addr < self.layout.merkle_base:
            slot = (addr - self.layout.ott_base) // LINE_SIZE
            return self.ott_region.slot_bytes(slot)
        return bytes(LINE_SIZE)

    # ==================================================================
    # Key lookup on the access path
    # ==================================================================

    def _lookup_key(self, group_id: int, file_id: int) -> "tuple[bytes, float]":
        """OTT lookup with region fallback; returns (key, latency)."""
        latency = self.ott.lookup_latency_ns
        entry = self.ott.lookup(group_id, file_id)
        if entry is not None:
            return entry.key, latency
        # Miss: probe the encrypted region (each probe = one memory read).
        found, probed = self.ott_region.fetch(group_id, file_id)
        for slot in probed:
            latency += self.device.read(self.layout.ott_slot_addr(slot))
        self.stats.add("ott_refills")
        if found is None:
            raise KeyUnavailableError(
                f"no key for group={group_id} file={file_id} (file never opened?)"
            )
        victim = self.ott.insert(found)
        if victim is not None:
            self.stats.add("ott_spills")
        return found.key, latency

    # ==================================================================
    # The dual-OTP pad path (overrides of the baseline hooks)
    # ==================================================================

    def _pad_fetch_latency(self, request: MemoryRequest, raw_addr: int, is_write: bool) -> float:
        """Counter-material latency; for DAX lines, both engines' inputs.

        MECB and FECB fetches proceed in parallel (independent metadata
        lines); the OTT lookup serialises *after* the FECB because the
        IDs come out of the FECB.  The slower branch bounds the pad path.
        """
        page = page_number(raw_addr)
        mecb_latency = self._fetch_metadata_line(
            self.layout.mecb_addr(page), MetadataKind.MECB, is_write
        )
        if not dfbit.has_df(request.addr):
            return mecb_latency
        self.stats.add("dax_requests")
        fecb_addr = self.layout.fecb_addr(page)
        fecb_was_cached = self.metadata_cache.lookup_only(fecb_addr, MetadataKind.FECB)
        fecb_latency = self._fetch_metadata_line(fecb_addr, MetadataKind.FECB, is_write)
        block = self.fecb.block(page)
        if block.stamped and not fecb_was_cached:
            # The OTT is only consulted when the FECB line arrives on
            # chip; once resolved, the cached line carries a pointer to
            # its OTT entry, so hits pay no key-lookup latency.
            _, key_latency = self._lookup_key(block.group_id, block.file_id)
            fecb_latency += key_latency
        return max(mecb_latency, fecb_latency)

    def _extra_write_path(self, request: MemoryRequest, raw_addr: int) -> float:
        """DAX write: bump the FECB minor counter and dirty its BMT path."""
        if not dfbit.has_df(request.addr):
            return 0.0
        page = page_number(raw_addr)
        line_index = page_offset_lines(raw_addr)
        block = self.fecb.block(page)
        if not block.stamped:
            # Page written through a non-file mapping of file memory —
            # treat as plain memory (kernel guarantees DF only on file
            # PTEs, so this is belt-and-braces).
            return 0.0
        latency = 0.0
        persisted = False
        fecb_addr = self.layout.fecb_addr(page)
        if block.counters.bump(line_index):
            self.stats.add("fecb_minor_overflows")
            latency += self._reencrypt_page(page)
            # Persist the FECB with the re-encrypted page, mirroring the
            # MECB overflow rule: the new major must be recoverable.
            self.device.write(fecb_addr)
            self.stats.add("overflow_fecb_persists")
            self.osiris.note_persisted(fecb_addr)
            self.metadata_cache.clean_line(fecb_addr, MetadataKind.FECB)
            self._journal_protected_persist(fecb_addr)
            persisted = True
        if self.osiris.note_update(fecb_addr):
            # Posted write-through, like the MECB case: bandwidth, not
            # write-path latency.
            self.device.write(fecb_addr)
            self.stats.add("osiris_fecb_persists")
            self.metadata_cache.clean_line(fecb_addr, MetadataKind.FECB)
            self._journal_protected_persist(fecb_addr)
            persisted = True
        self._anubis_note_update(fecb_addr, persisted)
        self._update_merkle_path(fecb_addr)
        return latency

    def _anubis_snapshot(self, addr: int):
        """Adds the file layer: FECB lines shadow their full identity
        (IDs + counters), everything else falls back to the MECB rule."""
        if self.layout.fecb_base <= addr < self.layout.ott_base:
            page = (addr - self.layout.fecb_base) // LINE_SIZE
            block = self.fecb.peek(page)
            if block is not None:
                return (
                    "fecb",
                    page,
                    block.group_id,
                    block.file_id,
                    block.counters.major,
                    tuple(block.counters.minors),
                )
            return None
        return super()._anubis_snapshot(addr)

    def _functional_pad(self, raw_addr: int) -> bytes:
        """OTP_mem, XORed with OTP_file when the page belongs to a file.

        Pad composition keys off the FECB stamp — the same information
        the hardware uses — so a stamped page's data is always sealed
        under both layers regardless of which mapping wrote it.
        """
        memory_pad = super()._functional_pad(raw_addr)
        page = page_number(raw_addr)
        block = self.fecb.peek(page)
        if block is None or not block.stamped:
            return memory_pad
        if self._locked:
            # Locked engine: the file pad is unavailable; decryption with
            # only the memory pad yields sealed bytes — the §VI attacker
            # view.  (Writes are refused outright.)
            return memory_pad
        key, _ = self._lookup_key(block.group_id, block.file_id)
        line_index = page_offset_lines(raw_addr)
        major, minor = block.counters.value_for(line_index)
        iv = CounterIV(
            domain=FILE_DOMAIN,
            page_id=page,
            page_offset=line_index,
            major=major,
            minor=minor,
        )
        assert self._file_engine is not None
        self._file_engine.rekey(key)
        file_pad = self._file_engine.pad_for(iv)
        return xor_bytes(memory_pad, file_pad)

    def read_data(self, addr: int) -> bytes:
        """Functional read: both integrity trees legs verified for DAX."""
        raw_addr = dfbit.strip(addr)
        page = page_number(raw_addr)
        block = self.fecb.peek(page)
        if self.config.functional and block is not None and block.stamped:
            self.merkle.verify_leaf(self.layout.fecb_addr(page))
        return super().read_data(addr)

    # ==================================================================
    # Re-keying and counter hygiene (§VI)
    # ==================================================================

    def rekey_file(self, group_id: int, file_id: int) -> bytes:
        """Rotate a file's key (FECB major-counter saturation response).

        The paper's lazy scheme keeps both keys and re-encrypts on
        access; the model takes the simple eager route — re-seal every
        stamped page under the new key — because the *state transition*
        (new key, reset counters, old pads dead) is what tests need to
        observe, and eagerness does not change it.
        """
        old_entry = self.ott.lookup(group_id, file_id)
        if old_entry is None:
            found, _ = self.ott_region.fetch(group_id, file_id)
            if found is None:
                raise KeyUnavailableError(f"no key for group={group_id} file={file_id}")
            old_entry = found
        new_key = self.keys.rotated_file_key(old_entry.key)
        pages = self.fecb.stamped_pages(group_id, file_id)
        # Decrypt every line under the old state *before* switching.
        plaintexts = {}
        if self.config.functional:
            for page in pages:
                for line_index in range(64):
                    addr = page * 4096 + line_index * LINE_SIZE
                    if addr in self.store:
                        plaintexts[addr] = self.read_data(addr)
        if self.crash_domain is not None:
            # Eager re-keying rewrites every stamped line synchronously;
            # like page re-encryption, model it as draining the ADR
            # domain so staged pre-rekey pairs do not go stale.
            self.crash_domain.drain_all()
        self.install_file_key(group_id, file_id, new_key)
        for page in pages:
            self.fecb.block(page).counters.reset()
            if self.config.functional:
                self.merkle.update_leaf(self.layout.fecb_addr(page))
            self._journal_protected_persist(self.layout.fecb_addr(page))
        if self.config.functional:
            for addr, plaintext in plaintexts.items():
                self.store.write_line(addr, self._seal(addr, plaintext))
                self.merkle.update_leaf(self.layout.mecb_addr(page_number(addr)))
        self.stats.add("rekeys")
        return new_key

    # ==================================================================
    # Crash consistency for the OTT (§III-H)
    # ==================================================================

    def crash_flush_ott(self) -> int:
        """Backup-power drain (§III-H option 2): flush the whole OTT.

        With write-through logging this is a no-op for correctness, but
        it is modelled so the logging ablation (log-on-update vs
        flush-on-crash) can measure both designs.  Returns lines written.
        """
        written = 0
        for entry in self.ott.entries():
            slot = self.ott_region.store(entry)
            self._ott_slot_written(slot)
            written += 1
        self.stats.add("crash_flush_lines", written)
        return written

    def recover_ott_after_crash(self) -> int:
        """Rebuild the on-chip OTT from the encrypted region.

        Returns the number of keys recovered.  Tag-failing records
        (a flipped bit anywhere in the sealed record trips the tag) are
        skipped and counted in ``ott_rejected_slots`` rather than
        trusted — a poisoned slot means the key is *unavailable*, which
        downstream turns every dependent line into an explicit failure.
        """
        recovered = 0
        self.ott_rejected_slots = 0
        # The table object survives (its geometry and stats are hardware
        # properties); only the volatile SRAM contents are rebuilt.
        self.ott.reset()
        for slot in range(self.layout.ott_slots):
            raw = self.ott_region.slot_bytes(slot)
            if raw == bytes(LINE_SIZE):
                continue
            entry = self.ott_region._unseal(slot, raw[: EncryptedOTTRegion.RECORD_BYTES])
            if entry is not None:
                self.ott.insert(entry)
                recovered += 1
            else:
                self.ott_rejected_slots += 1
                self.stats.add("ott_recovery_rejects")
        self.stats.add("ott_recoveries")
        return recovered
