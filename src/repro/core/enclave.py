"""Untrusted-OS extension: enclave-managed file keys (§VI future work).

The paper's threat model trusts the OS; §VI sketches the harder setting
— an SGX-like world where "applications need to only trust the
processor chip" and must "directly communicate their key, file ID, and
encryption mode to the hardware, which otherwise should have been done
by the OS".  This module prototypes that sketch:

* an :class:`Enclave` is a measured application context; its identity is
  a hash of its (simulated) code measurement, attested by the processor;
* an attested enclave obtains an :class:`EnclaveChannel` — a direct,
  kernel-invisible path to the controller's key-management verbs;
* keys installed through a channel are *owner-tagged*: the controller
  remembers which enclave installed each (group, file) binding and
  refuses management requests for it from other enclaves or from the
  (now untrusted) kernel MMIO path.

The OS still faults pages and schedules — it just can never inject,
replace, or revoke an enclave's file keys, which is precisely the
capability the untrusted-OS model must remove from ring 0.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..mem.stats import StatCounters
from .fsencr import FsEncrController

__all__ = ["AttestationError", "EnclaveOwnershipError", "Enclave", "EnclaveManager"]


class AttestationError(Exception):
    """The enclave's measurement did not verify."""


class EnclaveOwnershipError(Exception):
    """A party other than the owning enclave touched a protected key."""


@dataclass(frozen=True)
class Enclave:
    """A measured application context.

    ``measurement`` stands in for the hash of the enclave's initial
    memory; the processor's launch check compares it against the value
    the application's developer signed.
    """

    enclave_id: int
    measurement: bytes

    @staticmethod
    def measure(code: bytes) -> bytes:
        return hashlib.sha256(b"enclave-measurement" + code).digest()


class EnclaveChannel:
    """A direct enclave -> controller key-management channel."""

    def __init__(self, manager: "EnclaveManager", enclave: Enclave) -> None:
        self._manager = manager
        self._enclave = enclave

    def install_file_key(self, group_id: int, file_id: int, key: bytes) -> None:
        self._manager._install(self._enclave, group_id, file_id, key)

    def revoke_file_key(self, group_id: int, file_id: int) -> None:
        self._manager._revoke(self._enclave, group_id, file_id)

    def rekey_file(self, group_id: int, file_id: int) -> bytes:
        manager = self._manager
        manager._check_owner(self._enclave, group_id, file_id)
        # The controller's re-key path re-installs the new key through
        # the (guarded) install verb; the owner's authorisation extends
        # to that inner call.
        manager._authorized += 1
        try:
            return manager.controller.rekey_file(group_id, file_id)
        finally:
            manager._authorized -= 1


class EnclaveManager:
    """The processor-side launch/attestation and ownership registry.

    Wraps an :class:`FsEncrController`; once any enclave owns a key, the
    kernel-facing MMIO verbs for that key are rejected (the manager
    installs itself in front of the controller's verbs).
    """

    def __init__(self, controller: FsEncrController, stats: Optional[StatCounters] = None) -> None:
        self.controller = controller
        self.stats = stats or StatCounters("enclaves")
        self._expected: Dict[int, bytes] = {}
        self._owners: Dict[Tuple[int, int], int] = {}
        self._next_id = 1
        self._authorized = 0  # reentrancy depth of owner-authorised ops
        # Interpose on the kernel path so ring 0 cannot touch owned keys.
        self._kernel_install = controller.install_file_key
        self._kernel_revoke = controller.revoke_file_key
        controller.install_file_key = self._guarded_kernel_install  # type: ignore[assignment]
        controller.revoke_file_key = self._guarded_kernel_revoke  # type: ignore[assignment]

    # -- launch / attestation -------------------------------------------------

    def enroll(self, code: bytes) -> int:
        """Developer-side: register the expected measurement; returns the
        enclave id the application will launch under."""
        enclave_id = self._next_id
        self._next_id += 1
        self._expected[enclave_id] = Enclave.measure(code)
        return enclave_id

    def launch(self, enclave_id: int, code: bytes) -> EnclaveChannel:
        """Processor launch check: measure the code, compare, attest."""
        expected = self._expected.get(enclave_id)
        measured = Enclave.measure(code)
        if expected is None or measured != expected:
            # Standalone attestation model: its counters are asserted on
            # directly by its unit tests, never through a machine registry.
            self.stats.add("failed_attestations")  # repro-lint: disable=stats-flow (standalone component)
            raise AttestationError(f"enclave {enclave_id}: measurement mismatch")
        self.stats.add("launches")
        return EnclaveChannel(self, Enclave(enclave_id=enclave_id, measurement=measured))

    # -- guarded key management -------------------------------------------------

    def _check_owner(self, enclave: Enclave, group_id: int, file_id: int) -> None:
        owner = self._owners.get((group_id, file_id))
        if owner is not None and owner != enclave.enclave_id:
            self.stats.add("ownership_violations")
            raise EnclaveOwnershipError(
                f"(group={group_id}, file={file_id}) is owned by enclave {owner}"
            )

    def _install(self, enclave: Enclave, group_id: int, file_id: int, key: bytes) -> None:
        self._check_owner(enclave, group_id, file_id)
        self._kernel_install(group_id, file_id, key)
        self._owners[(group_id, file_id)] = enclave.enclave_id
        self.stats.add("enclave_installs")

    def _revoke(self, enclave: Enclave, group_id: int, file_id: int) -> None:
        self._check_owner(enclave, group_id, file_id)
        self._kernel_revoke(group_id, file_id)
        self._owners.pop((group_id, file_id), None)
        self.stats.add("enclave_revokes")

    # -- the untrusted kernel's residual verbs ------------------------------

    def _guarded_kernel_install(self, group_id: int, file_id: int, key: bytes) -> None:
        if (group_id, file_id) in self._owners and not self._authorized:
            self.stats.add("kernel_rejections")
            raise EnclaveOwnershipError(
                "untrusted kernel may not replace an enclave-owned key"
            )
        self._kernel_install(group_id, file_id, key)

    def _guarded_kernel_revoke(self, group_id: int, file_id: int) -> None:
        if (group_id, file_id) in self._owners and not self._authorized:
            self.stats.add("kernel_rejections")
            raise EnclaveOwnershipError(
                "untrusted kernel may not revoke an enclave-owned key"
            )
        self._kernel_revoke(group_id, file_id)

    def owner_of(self, group_id: int, file_id: int) -> Optional[int]:
        return self._owners.get((group_id, file_id))
