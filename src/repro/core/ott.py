"""The Open Tunnel Table (OTT) and its encrypted memory spill region.

§III-E: the OTT is the on-chip home of plaintext file keys — eight
fully-associative banks of 128 entries, searched in parallel in 20
cycles (deliberately slower than a TLB to save power).  Each entry is
(Group ID 18 b, File ID 14 b, key 128 b).

When the OTT overflows, least-recently-used entries spill to a dedicated
memory region *encrypted under the on-chip OTT key* and organised as a
set-associative hash table; a lookup that misses the OTT fetches from
there.  The region is covered by the Merkle tree, and — because the OTT
key never leaves the processor — stealing the DIMM or even breaking the
memory encryption key does not expose file keys (§VI "Memory Encryption
Key Revealed").
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..crypto.aes import AES128
from ..crypto.otp import xor_bytes
from ..mem.address import LINE_SIZE
from ..mem.controller import ServiceQueue
from ..mem.stats import StatCounters

__all__ = [
    "GROUP_ID_BITS",
    "FILE_ID_BITS",
    "OTTEntry",
    "OpenTunnelTable",
    "OTTPortQueue",
    "EncryptedOTTRegion",
    "KeyUnavailableError",
]

GROUP_ID_BITS = 18
FILE_ID_BITS = 14
OTT_BANKS = 8
OTT_ENTRIES_PER_BANK = 128
OTT_LOOKUP_CYCLES = 20  # == ns at the 1 GHz clock


class KeyUnavailableError(Exception):
    """No key for (group, file) in the OTT or the spill region."""


@dataclass(frozen=True)
class OTTEntry:
    """One file-key binding.

    ``key`` is excluded from the auto-repr: entries surface in
    tracebacks and debug dumps, and plaintext file keys must never be
    rendered (§III-E — key-hygiene lint rule).
    """

    group_id: int
    file_id: int
    key: bytes = field(repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.group_id < (1 << GROUP_ID_BITS):
            raise ValueError(f"group_id {self.group_id} exceeds {GROUP_ID_BITS} bits")
        if not 0 <= self.file_id < (1 << FILE_ID_BITS):
            raise ValueError(f"file_id {self.file_id} exceeds {FILE_ID_BITS} bits")
        if len(self.key) != 16:
            raise ValueError("file key must be 128 bits")

    @property
    def ident(self) -> Tuple[int, int]:
        return (self.group_id, self.file_id)


class OpenTunnelTable:
    """On-chip key store: LRU over ``banks * entries_per_bank`` slots.

    The banked organisation only affects capacity and power in the paper;
    lookups search all banks in parallel, so one LRU pool models it.
    """

    def __init__(
        self,
        banks: int = OTT_BANKS,
        entries_per_bank: int = OTT_ENTRIES_PER_BANK,
        lookup_latency_ns: float = float(OTT_LOOKUP_CYCLES),
        stats: Optional[StatCounters] = None,
    ) -> None:
        self.capacity = banks * entries_per_bank
        self.lookup_latency_ns = lookup_latency_ns
        self.stats = stats or StatCounters("ott")
        self._entries: "OrderedDict[Tuple[int, int], OTTEntry]" = OrderedDict()

    def lookup(self, group_id: int, file_id: int) -> Optional[OTTEntry]:
        entry = self._entries.get((group_id, file_id))
        if entry is not None:
            self._entries.move_to_end((group_id, file_id))
            self.stats.add("hits")
        else:
            self.stats.add("misses")
        return entry

    def insert(self, entry: OTTEntry) -> Optional[OTTEntry]:
        """Install a key; returns the LRU victim if the table was full."""
        victim: Optional[OTTEntry] = None
        if entry.ident in self._entries:
            self._entries.move_to_end(entry.ident)
            self._entries[entry.ident] = entry
            return None
        if len(self._entries) >= self.capacity:
            _, victim = self._entries.popitem(last=False)
            self.stats.add("evictions")
        self._entries[entry.ident] = entry
        self.stats.add("inserts")
        return victim

    def remove(self, group_id: int, file_id: int) -> bool:
        if self._entries.pop((group_id, file_id), None) is not None:
            self.stats.add("removals")
            return True
        return False

    def entries(self) -> List[OTTEntry]:
        """Snapshot (crash-flush support: §III-H backup-power drain)."""
        return list(self._entries.values())

    def reset(self) -> None:
        """Power loss: the on-chip table is volatile and comes up empty.

        Capacity and stats survive — they belong to the hardware and its
        observer, not to the lost SRAM contents.
        """
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class OTTPortQueue(ServiceQueue):
    """The OTT's single lookup port as a shared contention point.

    §III-E sizes the table for capacity, not bandwidth: all eight banks
    are searched in parallel but there is *one* 20-cycle lookup port in
    front of them.  One stream never notices; N streams resolving file
    keys concurrently serialise here.  The service model counts the OTT
    lookups each controller access performs and holds this queue for
    their port time (capped at the access's own charged latency, so the
    port is never modelled busier than the access that used it)."""

    def __init__(self, stats: Optional[StatCounters] = None) -> None:
        super().__init__(name="ott_queue", stats=stats)


class EncryptedOTTRegion:
    """The set-associative spill hash table in protected memory.

    Each 64 B line holds one sealed entry.  (group, file) hashes to a
    set of ``ways`` consecutive lines; insertion takes the first free or
    matching way and fails over to eviction-free replacement of a random
    way is *not* modelled — the region is sized so sets do not overflow
    in practice, and an overflow raises loudly instead of silently
    dropping a key.

    Sealing is authenticated: AES-CTR-style pad keyed by the OTT key and
    the slot index, plus a truncated SHA-256 tag binding (slot, payload)
    — a moved or bit-flipped record fails its tag even before the Merkle
    tree (which also covers this region) catches it.
    """

    RECORD_BYTES = 48  # 4 (ids) + 16 (key) + 16 (tag) + padding

    def __init__(
        self,
        slots: int,
        ott_key: bytes,
        ways: int = 8,
        stats: Optional[StatCounters] = None,
    ) -> None:
        if slots < ways or slots % ways:
            raise ValueError("slots must be a positive multiple of ways")
        self.slots = slots
        self.ways = ways
        self.stats = stats or StatCounters("ott_region")
        self._cipher = AES128(ott_key)
        self._lines: Dict[int, bytes] = {}  # slot -> sealed record
        self._occupancy: Dict[int, Tuple[int, int]] = {}  # slot -> ident

    # -- sealing ------------------------------------------------------------

    def _pad(self, slot: int) -> bytes:
        blocks = []
        for i in range(3):  # 48-byte record
            block = slot.to_bytes(8, "big") + b"fsencr-ott" + bytes([i, 0, 0, 0, 0, 0])
            blocks.append(self._cipher.encrypt_block(block[:16]))
        return b"".join(blocks)

    def _seal(self, slot: int, entry: OTTEntry) -> bytes:
        ident = (entry.group_id << FILE_ID_BITS) | entry.file_id
        payload = ident.to_bytes(4, "big") + entry.key
        tag = hashlib.sha256(
            self._cipher.key + slot.to_bytes(8, "big") + payload
        ).digest()[:16]
        record = payload + tag + bytes(self.RECORD_BYTES - len(payload) - len(tag))
        return xor_bytes(record, self._pad(slot))

    def _unseal(self, slot: int, sealed: bytes) -> Optional[OTTEntry]:
        record = xor_bytes(sealed, self._pad(slot))
        payload, tag = record[:20], record[20:36]
        expected = hashlib.sha256(
            self._cipher.key + slot.to_bytes(8, "big") + payload
        ).digest()[:16]
        if tag != expected:
            self.stats.add("tag_failures")
            return None
        ident = int.from_bytes(payload[:4], "big")
        return OTTEntry(
            group_id=ident >> FILE_ID_BITS,
            file_id=ident & ((1 << FILE_ID_BITS) - 1),
            key=payload[4:20],
        )

    # -- hash-table operations ----------------------------------------------

    def _set_base(self, group_id: int, file_id: int) -> int:
        digest = hashlib.sha256(
            b"ott-set" + group_id.to_bytes(4, "big") + file_id.to_bytes(4, "big")
        ).digest()
        num_sets = self.slots // self.ways
        return (int.from_bytes(digest[:8], "big") % num_sets) * self.ways

    def store(self, entry: OTTEntry) -> int:
        """Write a sealed entry; returns the slot used.

        Raises if the set is full of *other* files' keys — by design a
        loud failure rather than silent key loss.
        """
        base = self._set_base(entry.group_id, entry.file_id)
        free_slot: Optional[int] = None
        for slot in range(base, base + self.ways):
            occupant = self._occupancy.get(slot)
            if occupant == entry.ident:
                free_slot = slot
                break
            if occupant is None and free_slot is None:
                free_slot = slot
        if free_slot is None:
            raise KeyUnavailableError(
                f"OTT spill set full for group={entry.group_id} file={entry.file_id}"
            )
        self._lines[free_slot] = self._seal(free_slot, entry)
        self._occupancy[free_slot] = entry.ident
        self.stats.add("stores")
        return free_slot

    def fetch(self, group_id: int, file_id: int) -> Tuple[Optional[OTTEntry], List[int]]:
        """Probe the set; returns (entry_or_None, slots_probed).

        The probed slot list lets the controller charge real memory
        reads for each probe.
        """
        base = self._set_base(group_id, file_id)
        probed: List[int] = []
        for slot in range(base, base + self.ways):
            probed.append(slot)
            if self._occupancy.get(slot) == (group_id, file_id):
                sealed = self._lines.get(slot)
                entry = self._unseal(slot, sealed) if sealed is not None else None
                self.stats.add("fetch_hits" if entry else "fetch_corrupt")
                return entry, probed
        self.stats.add("fetch_misses")
        return None, probed

    def remove(self, group_id: int, file_id: int) -> Optional[int]:
        """Erase the sealed record (file deletion); returns its slot."""
        base = self._set_base(group_id, file_id)
        for slot in range(base, base + self.ways):
            if self._occupancy.get(slot) == (group_id, file_id):
                del self._lines[slot]
                del self._occupancy[slot]
                self.stats.add("removals")
                return slot
        return None

    def slot_bytes(self, slot: int) -> bytes:
        """Raw sealed line (Merkle leaf content / attacker's view)."""
        sealed = self._lines.get(slot)
        if sealed is None:
            return bytes(LINE_SIZE)
        return sealed + bytes(LINE_SIZE - len(sealed))

    def tamper(self, slot: int, flip_byte: int = 0) -> None:
        """Test hook: corrupt one sealed byte in place."""
        sealed = bytearray(self._lines[slot])
        sealed[flip_byte] ^= 0xFF
        self._lines[slot] = bytes(sealed)

    def flip_bit(self, slot: int, bit: int) -> None:
        """Media fault: flip one bit of a sealed record in place.

        The record's tag then fails on the next unseal — the fault is
        *detected*, the key is reported unavailable, never garbage.
        """
        sealed = bytearray(self._lines[slot])
        sealed[bit // 8] ^= 1 << (bit % 8)
        self._lines[slot] = bytes(sealed)

    def occupied_slots(self) -> "List[int]":
        """Slots currently holding a sealed record (media-fault targets)."""
        return sorted(self._lines)

    def __len__(self) -> int:
        return len(self._lines)
