"""FsEncr: hardware-assisted filesystem encryption for DAX NVM filesystems.

A from-scratch Python reproduction of *"Filesystem Encryption or
Direct-Access for NVM Filesystems? Let's Have Both!"* (HPCA 2022):
counter-mode secure memory, the FsEncr per-file encryption layer
(DF-bit, FECB, OTT, dual OTP), a simulated kernel + DAX filesystem, a
trace-driven performance model, and the paper's full benchmark suite.

Quick start::

    from repro import Machine, MachineConfig, Scheme

    machine = Machine(MachineConfig(scheme=Scheme.FSENCR, functional=True))
    machine.add_user(uid=1000, gid=100, passphrase="s3cret")
    handle = machine.create_file("/pmem/diary.txt", uid=1000, encrypted=True)
    base = machine.mmap(handle, pages=1)
    machine.store_bytes(base, b"dear diary...")
    assert machine.load_bytes(base, 13) == b"dear diary..."

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
figure-by-figure reproduction harness.
"""

from .core import FsEncrController, OpenTunnelTable, OTTEntry
from .sim import Comparison, Machine, MachineConfig, ResultTable, RunResult, Scheme

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "MachineConfig",
    "Scheme",
    "RunResult",
    "Comparison",
    "ResultTable",
    "FsEncrController",
    "OpenTunnelTable",
    "OTTEntry",
    "__version__",
]
