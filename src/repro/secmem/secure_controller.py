"""The paper's "Baseline Security" memory controller.

Counter-mode memory encryption with split counters (MECB), an 8-ary
Bonsai Merkle tree over the metadata, a shared on-chip metadata cache,
and Osiris stop-loss counter persistence.  Every scheme in the
evaluation — including FsEncr itself — builds on this controller;
FsEncr overrides the two hook methods that source encryption pads.

Timing model for one request (1 GHz clock, latencies in ns):

* **Read**: the data fetch and the counter fetch proceed in parallel.
  The line is released at
  ``max(data_latency, counter_path + AES) + XOR`` where ``counter_path``
  is the metadata-cache hit latency on a hit, or the NVM counter fetch
  plus the Merkle verification walk on a miss.  With a counter hit the
  40 ns pad generation hides entirely under the 60+ ns PCM read — the
  "only XOR latency is added" property of Figure 2.
* **Write**: the counter must be fetched (if absent) and bumped before
  the pad can encrypt the line; persist-path writes then pay the PCM
  array write.  Merkle path nodes are updated write-back in the metadata
  cache; Osiris forces the counter line to NVM every ``stop_loss``-th
  update.  A minor-counter overflow re-encrypts the whole 4 KB page
  (64 line reads + 64 line writes of traffic).

Functional model (``functional=True``): lines really are encrypted with
AES-CTR pads derived from the live counters, ciphertext really lands in
the :class:`~repro.mem.nvm.NVMStore`, and the Merkle tree really hashes
— so confidentiality/integrity tests observe the honest mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..crypto.iv import MEMORY_DOMAIN, CounterIV
from ..crypto.keys import KeyHierarchy
from ..crypto.otp import OTPEngine, compose_pads, xor_bytes
from ..mem import dfbit
from ..mem.address import LINE_SIZE, LINES_PER_PAGE, page_number, page_offset_lines
from ..mem.controller import MemoryControllerBase, MemoryRequest
from ..mem.nvm import NVMDevice, NVMStore
from ..mem.stats import StatCounters
from .counters import CounterStore
from .ecc import encode_line
from .layout import MetadataLayout
from .merkle import BonsaiMerkleTree
from .metadata_cache import MetadataCache, MetadataCacheConfig, MetadataKind
from .osiris import OsirisTracker

__all__ = ["SecureControllerConfig", "BaselineSecureController"]


@dataclass(frozen=True)
class SecureControllerConfig:
    """Knobs shared by the baseline and FsEncr controllers."""

    aes_latency_ns: float = 40.0  # Table III
    xor_latency_ns: float = 1.0
    stop_loss: int = 4
    functional: bool = False
    metadata_cache: MetadataCacheConfig = MetadataCacheConfig()
    # Charge full device traffic for page re-encryption on minor-counter
    # overflow; can be disabled to ablate its contribution.
    model_counter_overflow: bool = True


class BaselineSecureController(MemoryControllerBase):
    """Counter-mode encryption + BMT integrity, no per-file layer."""

    def __init__(
        self,
        layout: Optional[MetadataLayout] = None,
        keys: Optional[KeyHierarchy] = None,
        config: Optional[SecureControllerConfig] = None,
        device: Optional[NVMDevice] = None,
        store: Optional[NVMStore] = None,
        stats: Optional[StatCounters] = None,
    ) -> None:
        super().__init__(device=device, store=store, stats=stats or StatCounters("secure_controller"))
        self.layout = layout or MetadataLayout()
        self.keys = keys or KeyHierarchy.from_seed(b"default-machine")
        self.config = config or SecureControllerConfig()
        # These bundles are registered post-construction by Machine
        # (registry.register(controller.<x>.stats)); the AST rule cannot
        # see that wiring.
        self.metadata_cache = MetadataCache(self.config.metadata_cache)  # repro-lint: disable=stats-registered
        self.mecb = CounterStore()
        self.merkle = BonsaiMerkleTree(self.layout, leaf_reader=self._merkle_leaf_bytes)  # repro-lint: disable=stats-registered
        self.osiris = OsirisTracker(stop_loss=self.config.stop_loss)  # repro-lint: disable=stats-registered
        self._memory_engine = (
            OTPEngine(self.keys.memory_key) if self.config.functional else None
        )
        # Plaintext shadow: what the CPU believes each line holds.  Used by
        # functional page re-encryption (old-pad ciphertext would otherwise
        # be orphaned by a major-counter bump).
        self._plaintext_shadow: dict = {}
        # Fault injection: when a CrashDomain is attached (Machine does
        # this in functional mode), every functional line write is staged
        # through it so a crash can tear or drop the in-flight tail.
        self.crash_domain = None
        # Anubis wiring (attached by the builder for "+anubis" scheme
        # columns): the shadow table mirrors counter lines whose latest
        # update has not reached NVM, and _anubis_counters journals the
        # exact values a recovery reading the shadow region would find.
        self.anubis_shadow = None
        self._anubis_counters: Dict[int, tuple] = {}
        # Persisted-counter journal: the values a post-crash reader would
        # find in the NVM counter lines.  Updated on every counter-line
        # NVM write (stop-loss, eviction, drain, overflow); recovery
        # starts its trial-decryption window from exactly these values.
        self._persisted_mecb: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
        # Counters read by benchmarks/analyses are declared up front:
        # strict stat accessors (RunResult.stat / StatCounters.stat)
        # raise on unknown keys, so a declared-but-zero counter is a
        # legitimate 0 while a renamed key fails loudly.
        for key in (
            "osiris_counter_persists",
            "overflow_counter_persists",
            "minor_overflows",
            "page_reencryptions",
            "metadata_writebacks",
            "merkle_poisoned_nodes",
        ):
            self.stats.add(key, 0)

    # ------------------------------------------------------------------
    # Merkle leaf serialisation (functional integrity)
    # ------------------------------------------------------------------

    def _merkle_leaf_bytes(self, leaf_index: int) -> bytes:
        """Canonical bytes of protected metadata line ``leaf_index``."""
        addr = self.layout.mecb_base + leaf_index * LINE_SIZE
        if addr < self.layout.fecb_base:
            page = (addr - self.layout.mecb_base) // LINE_SIZE
            block = self.mecb.peek(page)
            return block.serialize() if block is not None else bytes(LINE_SIZE)
        return self._protected_leaf_bytes(addr)

    def _protected_leaf_bytes(self, addr: int) -> bytes:
        """Hook: FECB/OTT leaf content (FsEncr overrides)."""
        return bytes(LINE_SIZE)

    # ------------------------------------------------------------------
    # Metadata path helpers (shared with FsEncr)
    # ------------------------------------------------------------------

    def _handle_metadata_evictions(self, evictions: List) -> None:
        """Dirty metadata pushed out of the on-chip cache -> NVM writes."""
        for eviction in evictions:
            self.device.write(eviction.addr)
            self.stats.add("metadata_writebacks")
            self.osiris.note_persisted(eviction.addr)
            self._journal_counter_persist(eviction.addr)
            self._anubis_forget(eviction.addr)

    def _journal_counter_persist(self, addr: int) -> None:
        """Record what a counter-line NVM write makes durable.

        The journal stands in for reading the persisted line back after
        a crash; Merkle-node addresses fall through both range checks
        (node digests are recomputed at reboot, not recovered).
        """
        if self.layout.mecb_base <= addr < self.layout.fecb_base:
            page = (addr - self.layout.mecb_base) // LINE_SIZE
            block = self.mecb.peek(page)
            if block is not None:
                self._persisted_mecb[page] = (block.major, tuple(block.minors))
        else:
            self._journal_protected_persist(addr)

    def _journal_protected_persist(self, addr: int) -> None:
        """Hook: journal FECB-range persists (FsEncr overrides)."""

    def _fetch_metadata_line(self, addr: int, kind: str, is_write: bool) -> float:
        """Bring one metadata line on-chip; returns latency of the fetch.

        On a metadata-cache miss the line is read from NVM and its Merkle
        path verified (each path node itself goes through the metadata
        cache; node misses are more NVM reads).  On a hit the latency is
        just the cache's SRAM access.
        """
        hit, evictions = self.metadata_cache.access(addr, kind, is_write)
        self._handle_metadata_evictions(evictions)
        if hit:
            return self.metadata_cache.hit_latency
        latency = self.device.read(addr)
        self.stats.add(f"{kind}_fetches")
        latency += self._verify_merkle_path(addr)
        return latency

    def _verify_merkle_path(self, metadata_addr: int) -> float:
        """Walk the BMT path for a just-fetched metadata line.

        Bonsai semantics: the walk stops at the first path node already
        present in the metadata cache (cached nodes are roots of trust);
        only the nodes below it need fetching.
        """
        latency = 0.0
        for node_addr in self.merkle.path_to_root(metadata_addr):
            hit, evictions = self.metadata_cache.access(
                node_addr, MetadataKind.MERKLE, is_write=False
            )
            self._handle_metadata_evictions(evictions)
            if hit:
                latency += self.metadata_cache.hit_latency
                break
            latency += self.device.read(node_addr)
            self.stats.add("merkle_fetches")
        if self.config.functional:
            self.merkle.verify_leaf(metadata_addr)
        return latency

    def _update_merkle_path(self, metadata_addr: int) -> None:
        """Mark the BMT path dirty after a counter update (write-back).

        Same early-stop rule as verification: once a path node is cached
        (and now dirtied), ancestors are updated lazily on its eviction.
        """
        for node_addr in self.merkle.path_to_root(metadata_addr):
            hit, evictions = self.metadata_cache.access(
                node_addr, MetadataKind.MERKLE, is_write=True
            )
            self._handle_metadata_evictions(evictions)
            if hit:
                break
            self.device.read(node_addr)
            self.stats.add("merkle_fetches")
        if self.config.functional:
            self.merkle.update_leaf(metadata_addr)

    # ------------------------------------------------------------------
    # Counter management
    # ------------------------------------------------------------------

    def _bump_counter(self, page: int, line_index: int, counter_addr: int) -> float:
        """Write-path counter increment, overflow, and Osiris persistence."""
        block = self.mecb.block(page)
        overflowed = block.bump(line_index)
        latency = 0.0
        persisted = False
        if overflowed:
            self.stats.add("minor_overflows")
            latency += self._reencrypt_page(page)
            # Osiris persists the counter line together with the
            # re-encrypted page: a crash between the major bump and the
            # next stop-loss write-through must not strand ciphertext
            # sealed under a counter outside the recovery window.
            self.device.write(counter_addr)
            self.stats.add("overflow_counter_persists")
            self.osiris.note_persisted(counter_addr)
            self.metadata_cache.clean_line(counter_addr, self._kind_for(counter_addr))
            self._journal_counter_persist(counter_addr)
            persisted = True
        if self.osiris.note_update(counter_addr):
            # Stop-loss write-through of the counter line.  Posted: it
            # consumes device bandwidth (and shows up in the write
            # counts) but does not stall the write that triggered it.
            self.device.write(counter_addr)
            self.stats.add("osiris_counter_persists")
            self.metadata_cache.clean_line(counter_addr, self._kind_for(counter_addr))
            self._journal_counter_persist(counter_addr)
            persisted = True
        self._anubis_note_update(counter_addr, persisted)
        return latency

    # ------------------------------------------------------------------
    # Anubis shadow tracking (wired by the builder for "+anubis" columns)
    # ------------------------------------------------------------------

    def _anubis_note_update(self, counter_addr: int, persisted: bool) -> None:
        """Mirror one counter update into the shadow table.

        A persisted update (overflow or stop-loss write-through) makes
        the NVM home copy current, so the shadow entry retires; an
        unpersisted one (re-)records the line with its live values —
        Anubis updates the shadow entry in place on every counter write,
        which is exactly the runtime-writes-for-recovery-time trade.
        """
        if self.anubis_shadow is None:
            return
        if persisted:
            self._anubis_forget(counter_addr)
            return
        snapshot = self._anubis_snapshot(counter_addr)
        if snapshot is None:
            return
        self.anubis_shadow.note_insert(counter_addr)
        self._anubis_counters[counter_addr] = snapshot

    def _anubis_forget(self, counter_addr: int) -> None:
        """The NVM home copy is current again: drop the shadow entry."""
        if self.anubis_shadow is None:
            return
        self.anubis_shadow.note_evict(counter_addr)
        self._anubis_counters.pop(counter_addr, None)

    def _anubis_snapshot(self, addr: int):
        """Shadow-entry payload for a counter line (None = not shadowed;
        Merkle nodes are rebuilt at reboot, not shadow-restored)."""
        if self.layout.mecb_base <= addr < self.layout.fecb_base:
            page = (addr - self.layout.mecb_base) // LINE_SIZE
            block = self.mecb.peek(page)
            if block is not None:
                return ("mecb", page, block.major, tuple(block.minors))
        return None

    def _kind_for(self, counter_addr: int) -> str:
        return (
            MetadataKind.MECB
            if counter_addr < self.layout.fecb_base
            else MetadataKind.FECB
        )

    def _reencrypt_page(self, page: int) -> float:
        """Minor overflow: the whole 4 KB page is re-encrypted.

        64 line reads + 64 line writes of device traffic.  Functional
        mode re-encrypts for real so ciphertext stays decryptable.
        """
        if not self.config.model_counter_overflow:
            return 0.0
        if self.crash_domain is not None:
            # Re-encryption is a long synchronous controller operation;
            # the model treats it as flushing the ADR domain first so the
            # staged old/new line pairs are not invalidated mid-rewrite.
            self.crash_domain.drain_all()
        latency = 0.0
        base = page * 4096
        for line_index in range(LINES_PER_PAGE):
            addr = base + line_index * LINE_SIZE
            if self.config.functional:
                # The bump already reset minors and advanced the major;
                # ciphertext in the store was sealed under the old values.
                # Re-seal from the retained plaintext.
                plaintext = self._plaintext_shadow.get(addr)
                if plaintext is not None:
                    self.store.write_line(addr, self._seal(addr, plaintext))
            latency += self.device.read(addr)
            latency += self.device.write(addr)
        self.stats.add("page_reencryptions")
        return latency

    # ------------------------------------------------------------------
    # Pad generation hooks (FsEncr overrides these two)
    # ------------------------------------------------------------------

    def _pad_fetch_latency(self, request: MemoryRequest, raw_addr: int, is_write: bool) -> float:
        """Latency until the counter material for the pad is available."""
        page = page_number(raw_addr)
        counter_addr = self.layout.mecb_addr(page)
        return self._fetch_metadata_line(counter_addr, MetadataKind.MECB, is_write)

    def _extra_write_path(self, request: MemoryRequest, raw_addr: int) -> float:
        """Hook: scheme-specific write-path work (FsEncr bumps the FECB)."""
        return 0.0

    def _functional_pad(self, raw_addr: int) -> bytes:
        """The actual pad bytes for a line (functional mode only)."""
        page = page_number(raw_addr)
        line_index = page_offset_lines(raw_addr)
        major, minor = self.mecb.block(page).value_for(line_index)
        iv = CounterIV(
            domain=MEMORY_DOMAIN,
            page_id=page,
            page_offset=line_index,
            major=major % (1 << 64),
            minor=minor,
        )
        assert self._memory_engine is not None
        return self._memory_engine.pad_for(iv)

    # ------------------------------------------------------------------
    # The request path
    # ------------------------------------------------------------------

    def access(self, request: MemoryRequest) -> float:
        raw_addr = dfbit.strip(request.addr)
        if request.is_write:
            return self._write(request, raw_addr)
        return self._read(request, raw_addr)

    def _read(self, request: MemoryRequest, raw_addr: int) -> float:
        self.stats.add("read_requests")
        data_latency = self.device.read(raw_addr)
        pad_latency = self._pad_fetch_latency(request, raw_addr, is_write=False)
        # Pad generation overlaps the data fetch (Figure 2); only the XOR
        # is unconditionally serial.
        total = max(data_latency, pad_latency + self.config.aes_latency_ns)
        return total + self.config.xor_latency_ns

    def _write(self, request: MemoryRequest, raw_addr: int) -> float:
        self.stats.add("write_requests")
        page = page_number(raw_addr)
        line_index = page_offset_lines(raw_addr)
        counter_addr = self.layout.mecb_addr(page)
        latency = self._pad_fetch_latency(request, raw_addr, is_write=True)
        latency += self._bump_counter(page, line_index, counter_addr)
        latency += self._extra_write_path(request, raw_addr)
        if self.config.functional:
            # Seal with the *post-bump* counter, the value a later read
            # will reconstruct — this ordering is what keeps counter-mode
            # functionally consistent.
            plaintext = (
                request.data
                if request.data is not None
                else self._plaintext_shadow.get(raw_addr, bytes(LINE_SIZE))
            )
            sealed = self._seal(request.addr, plaintext)
            ecc = encode_line(bytes(plaintext))
            if self.crash_domain is not None:
                # Stage before mutating: a crash may need the pre-write
                # line back (dropped persist) or a mix (torn write).
                self.crash_domain.record(
                    raw_addr,
                    old_cipher=self.store.read_line(raw_addr),
                    old_ecc=self.store.read_ecc(raw_addr),
                    old_plain=self._plaintext_shadow.get(raw_addr),
                    new_cipher=sealed,
                    new_ecc=ecc,
                    new_plain=bytes(plaintext),
                )
            self._plaintext_shadow[raw_addr] = bytes(plaintext)
            self.store.write_line(raw_addr, sealed)
            self.store.write_ecc(raw_addr, ecc)
        self._update_merkle_path(counter_addr)
        latency += self.config.aes_latency_ns + self.config.xor_latency_ns
        latency += self.device.write(raw_addr, persist=request.persist)
        return latency

    # ------------------------------------------------------------------
    # Functional data movement
    # ------------------------------------------------------------------

    def _seal(self, addr: int, plaintext_line: bytes) -> bytes:
        """Encrypt one line with the current pad for its address.

        ``addr`` keeps its DF-bit here: the FsEncr subclass derives the
        pad composition from it.  The baseline pad ignores the bit.
        """
        if len(plaintext_line) != LINE_SIZE:
            raise ValueError(f"line must be {LINE_SIZE} bytes")
        return xor_bytes(plaintext_line, self._functional_pad(dfbit.strip(addr)))

    def write_data(self, addr: int, plaintext_line: bytes) -> None:
        """Functional write: full write path (counters bump, pads rotate)."""
        self.access(MemoryRequest(addr=addr, is_write=True, data=plaintext_line))

    def read_data(self, addr: int) -> bytes:
        """Functionally load-and-decrypt one line (NVM -> CPU)."""
        if not self.config.functional:
            raise RuntimeError("read_data requires functional=True")
        raw_addr = dfbit.strip(addr)
        page = page_number(raw_addr)
        self.merkle.verify_leaf(self.layout.mecb_addr(page))
        ciphertext = self.store.read_line(raw_addr)
        return xor_bytes(ciphertext, self._functional_pad(raw_addr))

    # ------------------------------------------------------------------
    # Crash / shutdown support
    # ------------------------------------------------------------------

    def drain_metadata(self) -> int:
        """Clean shutdown: persist every dirty metadata line.

        Returns the number of NVM writes issued.
        """
        victims = self.metadata_cache.flush_all()
        for victim in victims:
            self.device.write(victim.addr)
            self.osiris.note_persisted(victim.addr)
            self._journal_counter_persist(victim.addr)
            self._anubis_forget(victim.addr)
        self.stats.add("drain_writes", len(victims))
        return len(victims)

    def _integrity_leaf_addrs(self):
        """Metadata addresses whose leaves carry state worth rehashing
        after a crash (FsEncr extends with FECBs and OTT slots)."""
        for page in sorted(self.mecb.blocks):
            yield self.layout.mecb_addr(page)

    def rebuild_integrity_tree(self) -> int:
        """Reboot: recompute the BMT from recovered metadata.

        The on-chip tree state is volatile; after recovery installs the
        surviving counters, every populated leaf is rehashed bottom-up so
        subsequent reads verify against the *recovered* state.  Returns
        the number of leaves rebuilt.
        """
        self.merkle = BonsaiMerkleTree(
            self.layout, leaf_reader=self._merkle_leaf_bytes, stats=self.merkle.stats
        )
        leaves = 0
        for addr in self._integrity_leaf_addrs():
            self.merkle.update_leaf(addr)
            leaves += 1
        self.stats.add("merkle_rebuild_leaves", leaves)
        return leaves
