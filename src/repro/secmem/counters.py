"""Split-counter blocks: MECB (memory) and the counter core reused by FECB.

The split-counter scheme (§II-C) packs, into one 64-byte line, a shared
major counter plus 64 per-line minor counters covering a whole 4 KB page.
Every write bumps the line's minor counter; a minor overflow bumps the
major counter, resets all minors, and forces a page re-encryption (every
line's pad changes when the major changes).

MECB layout:  64-bit major + 64 x 7-bit minors            = 512 bits
FECB layout:  18-bit Group ID + 14-bit File ID +
              32-bit major + 64 x 7-bit minors            = 512 bits

Both are modelled by :class:`CounterBlock` parameterised with field
widths; FECB's extra ID fields live in ``repro.core.fecb``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..mem.address import LINES_PER_PAGE

__all__ = ["CounterBlock", "CounterStore", "MECB_MAJOR_BITS", "FECB_MAJOR_BITS", "MINOR_BITS"]

MECB_MAJOR_BITS = 64
FECB_MAJOR_BITS = 32
MINOR_BITS = 7


class CounterBlock:
    """One split-counter line covering a 4 KB page.

    ``bump`` is the write-path operation: increment the minor counter of
    one cache line, handling minor overflow by bumping the major and
    resetting every minor (the caller must then re-encrypt the page).
    ``value_for`` is the read-path operation: the (major, minor) pair
    that parameterises the line's IV.
    """

    __slots__ = ("major", "minors", "major_bits", "minor_bits")

    def __init__(
        self,
        major_bits: int = MECB_MAJOR_BITS,
        minor_bits: int = MINOR_BITS,
        lines: int = LINES_PER_PAGE,
    ) -> None:
        self.major = 0
        self.minors: List[int] = [0] * lines
        self.major_bits = major_bits
        self.minor_bits = minor_bits

    @property
    def minor_limit(self) -> int:
        return 1 << self.minor_bits

    @property
    def major_limit(self) -> int:
        return 1 << self.major_bits

    def value_for(self, line_index: int) -> "tuple[int, int]":
        """(major, minor) for the IV of one cache line in the page."""
        return self.major, self.minors[line_index]

    def bump(self, line_index: int) -> bool:
        """Increment the minor counter for a write.

        Returns True when the minor overflowed — the major was bumped,
        all minors reset, and the whole page must be re-encrypted.
        Raises :class:`OverflowError` if the *major* overflows; callers
        handle that with the re-key path (§VI), never by wrapping.
        """
        new_minor = self.minors[line_index] + 1
        if new_minor < self.minor_limit:
            self.minors[line_index] = new_minor
            return False
        if self.major + 1 >= self.major_limit:
            raise OverflowError("major counter exhausted; re-key required")
        self.major += 1
        self.minors = [0] * len(self.minors)
        return True

    def reset(self) -> None:
        """Zero everything (file deletion / re-key re-initialises FECBs)."""
        self.major = 0
        self.minors = [0] * len(self.minors)

    def load(self, major: int, minors) -> None:
        """Restore persisted state wholesale (snapshots / crash recovery).

        This is the one sanctioned write path besides :meth:`bump` —
        restore sites must not poke ``major``/``minors`` directly, so
        width validation stays in one place (repro-lint enforces this via
        the counter-overflow-handled rule).
        """
        minors = list(minors)
        if not 0 <= major < self.major_limit:
            raise ValueError(f"major {major} exceeds {self.major_bits} bits")
        if any(not 0 <= minor < self.minor_limit for minor in minors):
            raise ValueError(f"minor counter exceeds {self.minor_bits} bits")
        self.major = major
        self.minors = minors

    def serialize(self) -> bytes:
        """Canonical byte encoding (hashed by the Merkle tree)."""
        packed = self.major
        for minor in self.minors:
            packed = (packed << self.minor_bits) | minor
        total_bits = self.major_bits + self.minor_bits * len(self.minors)
        return packed.to_bytes((total_bits + 7) // 8, "big")

    def copy_from(self, other: "CounterBlock") -> None:
        self.major = other.major
        self.minors = list(other.minors)


@dataclass
class CounterStore:
    """Sparse functional home of counter blocks, one per data page.

    The store *is* the memory-resident truth; the metadata cache is only
    a tag filter in front of it.  Crash simulations snapshot/restore this
    dict (see ``repro.secmem.osiris``).
    """

    major_bits: int = MECB_MAJOR_BITS
    blocks: Dict[int, CounterBlock] = field(default_factory=dict)

    def block(self, page: int) -> CounterBlock:
        existing = self.blocks.get(page)
        if existing is None:
            existing = CounterBlock(major_bits=self.major_bits)
            self.blocks[page] = existing
        return existing

    def peek(self, page: int) -> Optional[CounterBlock]:
        """Look up without materialising a zero block."""
        return self.blocks.get(page)

    def snapshot(self) -> Dict[int, "tuple[int, tuple]"]:
        """Cheap copy for crash tests: {page: (major, minors)}."""
        return {
            page: (blk.major, tuple(blk.minors)) for page, blk in self.blocks.items()
        }

    def restore(self, snapshot: Dict[int, "tuple[int, tuple]"]) -> None:
        self.blocks.clear()
        for page, (major, minors) in snapshot.items():
            blk = CounterBlock(major_bits=self.major_bits)
            blk.load(major, minors)
            self.blocks[page] = blk
