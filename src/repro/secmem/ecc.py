"""SEC-DED Hamming ECC over 64-bit words, as Osiris repurposes it.

Osiris (§II-D, [36]) stores each data line's ECC *computed over the
plaintext* but written alongside the ciphertext.  Because the ciphertext
only decrypts to the correct plaintext under the correct counter value,
the ECC doubles as a counter-correctness oracle: after a crash, candidate
counter values are tried in order and the one whose decryption satisfies
the ECC is the counter that encrypted the line.

This module implements the classic Hamming(72,64) SEC-DED code per
64-bit word (8 words per cache line => 64 ECC bits per line), with
single-bit correction and double-bit detection — enough structure that a
*wrong* counter's decryption fails the check with overwhelming
probability, which is exactly the property Osiris recovery leans on.
"""

from __future__ import annotations

from typing import List

__all__ = ["encode_word", "check_word", "encode_line", "check_line", "EccMismatch"]

_DATA_BITS = 64
# Parity positions are the powers of two inside a 72-bit codeword laid out
# 1-indexed (positions 1..71), plus an overall parity bit for DED.
_PARITY_POSITIONS = [1, 2, 4, 8, 16, 32, 64]


class EccMismatch(Exception):
    """Raised when a line fails its ECC check (uncorrectable)."""


def _data_positions() -> List[int]:
    """Codeword positions (1-indexed) that carry data bits."""
    positions = []
    pos = 1
    while len(positions) < _DATA_BITS:
        if pos not in _PARITY_POSITIONS:
            positions.append(pos)
        pos += 1
    return positions


_DATA_POSITIONS = _data_positions()
_CODEWORD_BITS = _DATA_POSITIONS[-1]  # highest used position


def encode_word(word: int) -> int:
    """Compute the 8-bit ECC (7 Hamming parity bits + overall parity)."""
    if word < 0 or word >= (1 << _DATA_BITS):
        raise ValueError(f"word out of 64-bit range: {word:#x}")
    # Scatter data bits into codeword positions.
    codeword = 0
    for bit_index, pos in enumerate(_DATA_POSITIONS):
        if (word >> bit_index) & 1:
            codeword |= 1 << pos
    # Each parity bit covers positions whose index has that bit set.
    parity = 0
    for p_index, p_pos in enumerate(_PARITY_POSITIONS):
        covered = 0
        for pos in range(1, _CODEWORD_BITS + 1):
            if pos & p_pos and (codeword >> pos) & 1:
                covered ^= 1
        parity |= covered << p_index
        if covered:
            codeword |= 1 << p_pos
    # Overall parity over the full codeword for double-error detection.
    overall = bin(codeword).count("1") & 1
    return parity | (overall << 7)


def check_word(word: int, ecc: int) -> bool:
    """True when ``word`` is consistent with ``ecc`` (no error syndrome)."""
    return encode_word(word) == (ecc & 0xFF)


def encode_line(line: bytes) -> bytes:
    """ECC for a 64-byte line: one byte per 64-bit word."""
    if len(line) != 64:
        raise ValueError(f"line must be 64 bytes, got {len(line)}")
    return bytes(
        encode_word(int.from_bytes(line[i : i + 8], "little")) for i in range(0, 64, 8)
    )


def check_line(line: bytes, ecc: bytes) -> bool:
    """Check all 8 words of a line against its 8 ECC bytes."""
    if len(line) != 64 or len(ecc) != 8:
        raise ValueError("line must be 64 bytes and ecc 8 bytes")
    return all(
        check_word(int.from_bytes(line[i : i + 8], "little"), ecc[i // 8])
        for i in range(0, 64, 8)
    )
