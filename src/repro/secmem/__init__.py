"""Secure-memory substrate: counter-mode encryption, BMT integrity, Osiris.

This package implements the paper's "Baseline Security" scheme — the
state-of-the-art secure NVM stack FsEncr layers on top of: split-counter
MECBs, an 8-ary Bonsai Merkle tree, the on-chip metadata cache, SEC-DED
ECC, and Osiris stop-loss counter crash consistency.
"""

from .anubis import AnubisRecovery, AnubisRecoveryResult, ShadowTable
from .counters import CounterBlock, CounterStore, FECB_MAJOR_BITS, MECB_MAJOR_BITS, MINOR_BITS
from .ecc import EccMismatch, check_line, check_word, encode_line, encode_word
from .layout import MetadataLayout
from .merkle import BonsaiMerkleTree, IntegrityError
from .metadata_cache import MetadataCache, MetadataCacheConfig, MetadataKind
from .osiris import CounterRecoveryError, OsirisRecovery, OsirisTracker, RecoveryResult
from .secure_controller import BaselineSecureController, SecureControllerConfig

__all__ = [
    "ShadowTable",
    "AnubisRecovery",
    "AnubisRecoveryResult",
    "CounterBlock",
    "CounterStore",
    "MECB_MAJOR_BITS",
    "FECB_MAJOR_BITS",
    "MINOR_BITS",
    "EccMismatch",
    "encode_word",
    "check_word",
    "encode_line",
    "check_line",
    "MetadataLayout",
    "BonsaiMerkleTree",
    "IntegrityError",
    "MetadataCache",
    "MetadataCacheConfig",
    "MetadataKind",
    "OsirisTracker",
    "OsirisRecovery",
    "RecoveryResult",
    "CounterRecoveryError",
    "BaselineSecureController",
    "SecureControllerConfig",
]
