"""Physical layout of the security-metadata region.

Counter-mode encryption keeps its metadata *in memory* (§II-C): MECBs,
FECBs, Merkle-tree nodes, and FsEncr's encrypted-OTT spill region all
occupy reserved physical ranges above the data region.  Their addresses
matter to the timing model — a metadata-cache miss turns into a real NVM
access at that address, with its own row-buffer behaviour — so the layout
is computed once here and shared by every component.

Layout (one line = 64 B):

    [0, data_bytes)                        data (memory + DAX files)
    [mecb_base, +lines_of(pages))          one MECB line per 4 KB data page
    [fecb_base, +lines_of(pages))          one FECB line per 4 KB data page
                                           ("a file encryption counter
                                           block follows each memory
                                           encryption counter block" —
                                           modelled as a parallel array,
                                           which keeps indexing trivial
                                           and preserves the 1:1 pairing)
    [ott_base, +ott_region_bytes)          encrypted OTT hash table
    [mt_base(level), ...)                  Merkle-tree levels, leaves up
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mem.address import LINE_SIZE, PAGE_SIZE

__all__ = ["MetadataLayout"]


@dataclass(frozen=True)
class MetadataLayout:
    """Address carving for a machine with ``data_bytes`` of protected data."""

    data_bytes: int = 16 * 1024 * 1024 * 1024  # Table III: 16 GB
    ott_region_bytes: int = 256 * 1024  # spill area for evicted OTT entries
    merkle_arity: int = 8

    def __post_init__(self) -> None:
        if self.data_bytes % PAGE_SIZE:
            raise ValueError("data_bytes must be page aligned")
        if self.ott_region_bytes % LINE_SIZE:
            raise ValueError("ott_region_bytes must be line aligned")
        if self.merkle_arity < 2:
            raise ValueError("merkle arity must be >= 2")

    # -- region sizes -------------------------------------------------------

    @property
    def num_pages(self) -> int:
        return self.data_bytes // PAGE_SIZE

    @property
    def counter_region_bytes(self) -> int:
        """Bytes of one counter array (MECB or FECB): one line per page."""
        return self.num_pages * LINE_SIZE

    # -- region bases -------------------------------------------------------

    @property
    def mecb_base(self) -> int:
        return self.data_bytes

    @property
    def fecb_base(self) -> int:
        return self.mecb_base + self.counter_region_bytes

    @property
    def ott_base(self) -> int:
        return self.fecb_base + self.counter_region_bytes

    @property
    def merkle_base(self) -> int:
        return self.ott_base + self.ott_region_bytes

    # -- per-page metadata addresses -----------------------------------------

    def mecb_addr(self, page: int) -> int:
        self._check_page(page)
        return self.mecb_base + page * LINE_SIZE

    def fecb_addr(self, page: int) -> int:
        self._check_page(page)
        return self.fecb_base + page * LINE_SIZE

    def ott_slot_addr(self, slot: int) -> int:
        addr = self.ott_base + slot * LINE_SIZE
        if addr >= self.merkle_base:
            raise ValueError(f"OTT slot {slot} outside the OTT region")
        return addr

    @property
    def ott_slots(self) -> int:
        return self.ott_region_bytes // LINE_SIZE

    def _check_page(self, page: int) -> None:
        if page < 0 or page >= self.num_pages:
            raise ValueError(f"page {page} outside data region ({self.num_pages} pages)")

    # -- Merkle-tree geometry --------------------------------------------------

    @property
    def merkle_leaves(self) -> int:
        """Leaf count: every protected metadata line is a leaf.

        The tree covers MECBs + FECBs + the encrypted OTT region (§VI
        "Integrity of Filesystem Encryption Counters and OTT").
        """
        protected_bytes = 2 * self.counter_region_bytes + self.ott_region_bytes
        return protected_bytes // LINE_SIZE

    @property
    def merkle_levels(self) -> int:
        """Number of levels including the leaf level (root excluded —
        the root never lives in memory)."""
        levels = 1
        nodes = self.merkle_leaves
        while nodes > self.merkle_arity:
            nodes = -(-nodes // self.merkle_arity)  # ceil division
            levels += 1
        return levels

    def merkle_leaf_index(self, metadata_addr: int) -> int:
        """Leaf index of a protected metadata line address."""
        if not self.mecb_base <= metadata_addr < self.merkle_base:
            raise ValueError(f"{metadata_addr:#x} is not a protected metadata address")
        return (metadata_addr - self.mecb_base) // LINE_SIZE

    def merkle_node_addr(self, level: int, index: int) -> int:
        """Memory address of a tree node (level 0 = parents of leaves).

        Leaves themselves are the metadata lines; internal levels are
        packed arrays laid out end to end above ``merkle_base``.
        """
        if level < 0:
            raise ValueError("level must be >= 0")
        base = self.merkle_base
        nodes = -(-self.merkle_leaves // self.merkle_arity)
        for _ in range(level):
            base += nodes * LINE_SIZE
            nodes = -(-nodes // self.merkle_arity)
        if index >= nodes:
            raise ValueError(f"node index {index} out of range at level {level}")
        return base + index * LINE_SIZE

    @property
    def total_bytes(self) -> int:
        """Upper bound of the whole layout (for address-space checks)."""
        base = self.merkle_base
        nodes = -(-self.merkle_leaves // self.merkle_arity)
        while True:
            base += nodes * LINE_SIZE
            if nodes == 1:
                return base
            nodes = -(-nodes // self.merkle_arity)
