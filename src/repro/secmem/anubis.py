"""Anubis-style shadow tracking: the paper's other recovery citation.

§III-H offers two crash-consistency strategies for metadata: Osiris
(bounded staleness + ECC trial decryption, implemented in
``osiris.py``) and Anubis [6] — "a shadow table that tracks the most
recently updated counters and Merkle tree for faster recovery".

The trade they make is recovery *time* vs runtime *writes*:

* Osiris pays ~nothing at runtime beyond the stop-loss write-throughs,
  but recovery must trial-decrypt up to ``stop_loss + 1`` candidates per
  *potentially stale* line — and without a record of which lines were
  dirty, that means every line ever written.
* Anubis writes one shadow-table entry per metadata-cache *insertion*
  (a bounded, cache-sized region), and recovery touches exactly the
  lines the shadow names: recovery time proportional to the metadata
  cache size, not the memory size — Anubis's headline property.

:class:`ShadowTable` models the region and its runtime write stream;
:class:`AnubisRecovery` replays it.  The ablation benchmark races the
two schemes' recovery work on identical crash states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from ..mem.address import LINE_SIZE
from ..mem.stats import StatCounters

__all__ = ["ShadowTable", "AnubisRecovery", "AnubisRecoveryResult"]


class ShadowTable:
    """The in-memory shadow of the metadata cache's current contents.

    One shadow slot per metadata-cache line; ``note_insert`` mirrors a
    cache fill (one extra NVM write to the shadow region), and
    ``note_evict`` clears the slot (the line's home copy is now
    current, or will be via its own write-back).
    """

    def __init__(
        self,
        capacity_lines: int,
        base_addr: int,
        write_hook: Optional[Callable[[int], None]] = None,
        stats: Optional[StatCounters] = None,
    ) -> None:
        if capacity_lines < 1:
            raise ValueError("shadow table needs capacity")
        self.capacity = capacity_lines
        self.base_addr = base_addr
        self.stats = stats or StatCounters("anubis")
        self._write_hook = write_hook
        self._slots: Dict[int, int] = {}  # metadata line addr -> slot
        self._free: List[int] = list(range(capacity_lines - 1, -1, -1))

    def _emit_write(self, slot: int) -> None:
        self.stats.add("shadow_writes")
        if self._write_hook is not None:
            self._write_hook(self.base_addr + slot * LINE_SIZE)

    def note_insert(self, metadata_addr: int) -> None:
        """A metadata line entered the on-chip cache (it may go stale
        in memory from now on): record it in the shadow region."""
        if metadata_addr in self._slots:
            # Re-reference: shadow entry already covers it; Anubis
            # updates the entry in place on each counter write.
            self._emit_write(self._slots[metadata_addr])
            return
        if not self._free:
            raise RuntimeError(
                "shadow table overflow: size it to the metadata cache"
            )
        slot = self._free.pop()
        self._slots[metadata_addr] = slot
        self._emit_write(slot)

    def note_evict(self, metadata_addr: int) -> None:
        """The line left the cache (written back): slot recycles."""
        slot = self._slots.pop(metadata_addr, None)
        if slot is not None:
            self._free.append(slot)
            self._emit_write(slot)  # mark-invalid write

    def slot_addr(self, metadata_addr: int) -> int:
        """NVM address of the shadow slot covering a tracked line
        (recovery reads it back from here)."""
        return self.base_addr + self._slots[metadata_addr] * LINE_SIZE

    def reset(self) -> None:
        """Post-recovery: every tracked line was restored and re-
        journalled, so the shadow region starts empty (no writes — the
        invalid marks are subsumed by recovery's own persists)."""
        self._slots.clear()
        self._free = list(range(self.capacity - 1, -1, -1))

    def tracked_lines(self) -> Set[int]:
        """What a crash would need to recover — exactly the dirty set."""
        return set(self._slots)

    @property
    def occupancy(self) -> int:
        return len(self._slots)


@dataclass(frozen=True)
class AnubisRecoveryResult:
    recovered_lines: int
    shadow_reads: int


class AnubisRecovery:
    """Post-crash: walk the shadow table, restore exactly those lines.

    ``restore_line(addr)`` is supplied by the caller (re-derive the
    counter via one ECC trial window, or take Anubis's logged value);
    the point measured here is *how many lines* recovery must touch.
    """

    def __init__(self, stats: Optional[StatCounters] = None) -> None:
        self.stats = stats or StatCounters("anubis_recovery")

    def recover(
        self,
        shadow: ShadowTable,
        restore_line: Callable[[int], None],
    ) -> AnubisRecoveryResult:
        tracked = shadow.tracked_lines()
        for addr in sorted(tracked):
            restore_line(addr)
            self.stats.add("lines_restored")
        self.stats.add("recoveries")
        return AnubisRecoveryResult(
            recovered_lines=len(tracked), shadow_reads=len(tracked)
        )
