"""Osiris-style crash consistency for encryption counters.

The problem (§II-D): counters are cached on-chip and written back lazily;
a crash loses the in-cache increments, and decrypting with a stale
counter yields garbage (or worse, re-encrypting with a reused counter
value breaks counter-mode security).

Osiris's fix: bound the staleness.  A counter line may absorb at most
``stop_loss`` updates before being forced out to NVM ("stop-loss"); after
a crash the persisted value is therefore within ``stop_loss`` increments
of the true value, and the true value is found by trying each candidate
and testing the decryption against the line's plaintext ECC.

Two classes:

* :class:`OsirisTracker` — the run-time half: per-counter-line update
  distances, deciding when a counter write-through must be issued (the
  extra NVM writes the paper charges to both schemes).
* :class:`OsirisRecovery` — the post-crash half: candidate enumeration +
  ECC test, returning the recovered counter value and the number of
  trials (the recovery-latency figure of merit in the Osiris paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..mem.stats import StatCounters

__all__ = ["OsirisTracker", "OsirisRecovery", "RecoveryResult", "CounterRecoveryError"]

DEFAULT_STOP_LOSS = 4


class CounterRecoveryError(Exception):
    """No candidate counter within the stop-loss window fit the ECC."""


class OsirisTracker:
    """Stop-loss bookkeeping for counter-line persistence.

    ``note_update(line_addr)`` is called on every counter increment;
    it returns True when the accumulated distance hits the stop-loss
    bound and the counter line must be persisted *now*.  The caller
    (secure controller) then issues the NVM write and the tracker
    resets the distance.
    """

    def __init__(self, stop_loss: int = DEFAULT_STOP_LOSS, stats: Optional[StatCounters] = None) -> None:
        if stop_loss < 1:
            raise ValueError("stop_loss must be >= 1")
        self.stop_loss = stop_loss
        self.stats = stats or StatCounters("osiris")
        self._distance: Dict[int, int] = {}

    def note_update(self, line_addr: int) -> bool:
        """Record one counter update; True => persist the counter line."""
        distance = self._distance.get(line_addr, 0) + 1
        self.stats.add("updates")
        if distance >= self.stop_loss:
            self._distance[line_addr] = 0
            self.stats.add("forced_persists")
            return True
        self._distance[line_addr] = distance
        return False

    def note_persisted(self, line_addr: int) -> None:
        """A counter line reached NVM for another reason (eviction)."""
        self._distance[line_addr] = 0

    def distance(self, line_addr: int) -> int:
        return self._distance.get(line_addr, 0)

    def pending_lines(self) -> Dict[int, int]:
        """Lines with un-persisted updates — what a crash would lose."""
        return {addr: d for addr, d in self._distance.items() if d > 0}

    def reset(self) -> None:
        """Post-recovery: every counter line just got re-persisted."""
        self._distance.clear()


@dataclass(frozen=True)
class RecoveryResult:
    """Outcome of recovering one counter after a crash."""

    recovered_value: int
    trials: int


class OsirisRecovery:
    """Post-crash counter recovery via ECC trial decryption.

    ``decrypt_with(candidate) -> bytes`` and ``ecc_ok(plaintext) -> bool``
    are supplied by the caller, keeping this class independent of the
    encryption engine's wiring.  Candidates are tried from the persisted
    value upward, matching Osiris's observation that the true counter is
    *ahead of* (never behind) the persisted one.
    """

    def __init__(self, stop_loss: int = DEFAULT_STOP_LOSS, stats: Optional[StatCounters] = None) -> None:
        self.stop_loss = stop_loss
        self.stats = stats or StatCounters("osiris_recovery")

    def recover_counter(
        self,
        persisted_value: int,
        decrypt_with: Callable[[int], bytes],
        ecc_ok: Callable[[bytes], bool],
        ceiling: Optional[int] = None,
    ) -> RecoveryResult:
        """Find the true counter within [persisted, persisted + stop_loss].

        ``ceiling`` clips the window to the counter field's width: a
        candidate above it can never be a real counter value (the minor
        would have overflowed and re-encrypted the page first), so the
        search stops there.  This is what makes a *flipped* persisted
        counter safe — a flip landing near the top of the field leaves
        few (or zero) legal candidates, and an exhausted window is an
        explicit :class:`CounterRecoveryError`, never a silent accept.
        """
        trials = 0
        for offset in range(self.stop_loss + 1):
            candidate = persisted_value + offset
            if ceiling is not None and candidate > ceiling:
                break
            trials += 1
            plaintext = decrypt_with(candidate)
            self.stats.add("trials")
            if ecc_ok(plaintext):
                self.stats.add("recovered")
                return RecoveryResult(recovered_value=candidate, trials=trials)
        self.stats.add("failures")
        raise CounterRecoveryError(
            f"no counter in [{persisted_value}, {persisted_value + self.stop_loss}] "
            f"{'(clipped to ' + str(ceiling) + ') ' if ceiling is not None else ''}"
            "satisfied the ECC check"
        )
