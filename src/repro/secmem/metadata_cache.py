"""The on-chip Metadata Cache for MECB / FECB / Merkle-tree lines.

Table III gives the default: 512 KB, 8-way, 64 B blocks — swept from
128 KB to 2 MB in Figure 15.  The paper notes (§III-D) that the cache
*may* be partitioned per metadata kind "to equitably distribute the
cache capacity"; both organisations are supported here and compared by
an ablation benchmark.

Evictions of dirty metadata lines become NVM writes at the line's real
metadata address — this is the dominant source of FsEncr's extra write
traffic in Figures 9 and 13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..mem.cache import CacheConfig, Eviction, SetAssociativeCache
from ..mem.stats import StatCounters

__all__ = ["MetadataKind", "MetadataCacheConfig", "MetadataCache"]


class MetadataKind:
    """Symbolic names for what a metadata line holds (stats keys)."""

    MECB = "mecb"
    FECB = "fecb"
    MERKLE = "merkle"
    OTT = "ott"

    ALL = (MECB, FECB, MERKLE, OTT)


@dataclass(frozen=True)
class MetadataCacheConfig:
    """Geometry of the metadata cache.

    ``partitioned`` splits capacity equally across the four kinds;
    the default is the paper's single shared structure.
    """

    size_bytes: int = 512 * 1024
    ways: int = 8
    line_size: int = 64
    hit_latency: float = 3.0  # ns; small on-chip SRAM
    partitioned: bool = False


class MetadataCache:
    """Address-tagged cache front for the in-memory metadata region."""

    def __init__(
        self,
        config: Optional[MetadataCacheConfig] = None,
        stats: Optional[StatCounters] = None,
    ) -> None:
        self.config = config or MetadataCacheConfig()
        self.stats = stats or StatCounters("metadata_cache")
        if self.config.partitioned:
            slice_bytes = self.config.size_bytes // len(MetadataKind.ALL)
            # Internal structural caches: hits/misses/evictions are
            # accounted per-kind on this MetadataCache's own bundle.
            self._caches: Dict[str, SetAssociativeCache] = {
                # repro-lint: disable=stats-registered
                kind: SetAssociativeCache(
                    CacheConfig(
                        name=f"metadata_{kind}",
                        size_bytes=slice_bytes,
                        ways=self.config.ways,
                        line_size=self.config.line_size,
                        hit_latency=self.config.hit_latency,
                    )
                )
                for kind in MetadataKind.ALL
            }
        else:
            # Internal structural cache — same accounting as above.
            # repro-lint: disable=stats-registered
            shared = SetAssociativeCache(
                CacheConfig(
                    name="metadata_shared",
                    size_bytes=self.config.size_bytes,
                    ways=self.config.ways,
                    line_size=self.config.line_size,
                    hit_latency=self.config.hit_latency,
                )
            )
            self._caches = {kind: shared for kind in MetadataKind.ALL}

    def access(self, addr: int, kind: str, is_write: bool) -> Tuple[bool, List[Eviction]]:
        """Probe/allocate a metadata line.  Returns (hit, dirty_evictions).

        Clean evictions are dropped silently (the in-memory copy is
        current); dirty ones must be written back by the controller.
        """
        if kind not in self._caches:
            raise ValueError(f"unknown metadata kind {kind!r}")
        hit, eviction = self._caches[kind].access(addr, is_write)
        self.stats.add(f"{kind}_{'hits' if hit else 'misses'}")
        if is_write:
            self.stats.add(f"{kind}_writes")
        dirty_evictions: List[Eviction] = []
        if eviction is not None and eviction.dirty:
            self.stats.add("dirty_evictions")
            dirty_evictions.append(eviction)
        return hit, dirty_evictions

    def lookup_only(self, addr: int, kind: str) -> bool:
        """Presence probe with no allocation and no hit/miss accounting.

        Used by the controller to ask "was this line already on chip?"
        before running the fetch path (e.g. the OTT short-circuit for
        already-resolved FECB lines).
        """
        return self._caches[kind].lookup(addr)

    def clean_line(self, addr: int, kind: str) -> bool:
        """Mark a cached metadata line clean (it was just persisted)."""
        return self._caches[kind].writeback_line(addr)

    def flush_all(self) -> List[Eviction]:
        """Crash/drain: every dirty line across all partitions (deduped)."""
        seen = set()
        dirty: List[Eviction] = []
        distinct = {id(c): c for c in self._caches.values()}.values()
        for cache in distinct:
            for eviction in cache.drain():
                if eviction.addr not in seen:
                    seen.add(eviction.addr)
                    dirty.append(eviction)
        return dirty

    @property
    def hit_latency(self) -> float:
        return self.config.hit_latency

    def hit_rate(self, kind: str) -> float:
        hits = self.stats.get(f"{kind}_hits")
        total = hits + self.stats.get(f"{kind}_misses")
        return hits / total if total else 0.0
