"""8-ary Bonsai Merkle tree over the security-metadata region.

The tree authenticates every protected metadata line (MECBs, FECBs, the
encrypted-OTT region).  Its root lives on-chip and never touches memory;
internal nodes live in the metadata region and are cached in the metadata
cache like counters are.

Two faces, matching the rest of the simulator:

* *Timing face* — :meth:`path_to_root` enumerates the node addresses a
  verification/update must touch; the secure controller feeds them
  through the metadata cache and charges NVM traffic for misses.
* *Functional face* — real SHA-256 hashing: :meth:`update_leaf` rehashes
  the path after a counter change, :meth:`verify_leaf` recomputes up to
  the root and compares.  Tamper tests flip bits in the counter store and
  assert the root mismatch fires.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Iterable, List, Optional

from ..mem.stats import StatCounters
from .layout import MetadataLayout

__all__ = ["IntegrityError", "BonsaiMerkleTree"]

_ZERO_DIGEST = hashlib.sha256(b"fsencr-empty-node").digest()


class IntegrityError(Exception):
    """Raised when a Merkle verification detects tampering or replay."""


class BonsaiMerkleTree:
    """Sparse functional + geometric model of the metadata integrity tree.

    Node digests are stored sparsely; an absent node means "subtree of
    all-default leaves" and hashes to a level-dependent default, so the
    tree never materialises its multi-million-node full shape.
    """

    def __init__(
        self,
        layout: MetadataLayout,
        leaf_reader: Optional[Callable[[int], bytes]] = None,
        stats: Optional[StatCounters] = None,
    ) -> None:
        """``leaf_reader(leaf_index) -> bytes`` returns the canonical bytes
        of the protected metadata line (counter serialisation / OTT slot
        ciphertext); the tree itself stores no leaf data."""
        self.layout = layout
        self.arity = layout.merkle_arity
        self._leaf_reader = leaf_reader
        self.stats = stats or StatCounters("merkle")
        self._nodes: Dict["tuple[int, int]", bytes] = {}
        self._touched: set = set()
        self._default_digests = self._compute_default_digests()
        self._root = self._default_digests[-1]

    # -- geometry -----------------------------------------------------------

    @property
    def num_levels(self) -> int:
        """Internal levels stored in memory (root excluded)."""
        levels = 0
        nodes = self.layout.merkle_leaves
        while nodes > 1:
            nodes = -(-nodes // self.arity)
            levels += 1
        return levels

    def path_to_root(self, metadata_addr: int) -> List[int]:
        """Memory addresses of the internal nodes covering a leaf.

        Ordered leaf-side first.  The last level's single node is the
        root's only child; the root itself has no address.
        """
        index = self.layout.merkle_leaf_index(metadata_addr)
        addrs: List[int] = []
        nodes = self.layout.merkle_leaves
        for level in range(self.num_levels):
            index //= self.arity
            nodes = -(-nodes // self.arity)
            addrs.append(self.layout.merkle_node_addr(level, index))
        return addrs

    # -- functional hashing ----------------------------------------------------

    def _compute_default_digests(self) -> List[bytes]:
        """Digest of an all-default subtree at each level (leaf level = 0)."""
        digests = [_ZERO_DIGEST]
        nodes = self.layout.merkle_leaves
        while nodes > 1:
            digests.append(
                hashlib.sha256(digests[-1] * self.arity).digest()
            )
            nodes = -(-nodes // self.arity)
        return digests

    def _leaf_digest(self, leaf_index: int) -> bytes:
        """Digest of the leaf's *actual* content.

        All-zero content maps to the default digest so the sparse
        default-subtree arithmetic stays exact — and so tampering with a
        never-updated leaf (whose content is then no longer zero) is
        still caught.
        """
        if self._leaf_reader is None:
            raise RuntimeError("functional hashing requires a leaf_reader")
        data = self._leaf_reader(leaf_index)
        if not any(data):
            return _ZERO_DIGEST
        return hashlib.sha256(data).digest()

    def _node_digest(self, level: int, index: int) -> bytes:
        """Digest of node (level, index); level 0 nodes hash leaf digests."""
        stored = self._nodes.get((level, index))
        if stored is not None:
            return stored
        return self._default_digests[level + 1]

    def _child_digests(self, level: int, index: int) -> Iterable[bytes]:
        base = index * self.arity
        if level == 0:
            max_leaf = self.layout.merkle_leaves
            for child in range(base, base + self.arity):
                if child < max_leaf and self._leaf_reader is not None:
                    yield self._leaf_digest(child)
                else:
                    yield _ZERO_DIGEST
        else:
            for child in range(base, base + self.arity):
                yield self._node_digest(level - 1, child)

    # -- public functional API ---------------------------------------------------

    @property
    def root(self) -> bytes:
        return self._root

    def update_leaf(self, metadata_addr: int) -> None:
        """Re-hash the path after the leaf's content changed."""
        index = self.layout.merkle_leaf_index(metadata_addr)
        self._touched.add(index)
        self.stats.add("leaf_updates")
        for level in range(self.num_levels):
            index //= self.arity
            digest = hashlib.sha256(
                b"".join(self._child_digests(level, index))
            ).digest()
            self._nodes[(level, index)] = digest
        self._root = self._node_digest(self.num_levels - 1, 0)

    def verify_leaf(self, metadata_addr: int) -> None:
        """Recompute the path and compare against the on-chip root.

        Raises :class:`IntegrityError` on mismatch (tamper/replay).
        """
        index = self.layout.merkle_leaf_index(metadata_addr)
        self.stats.add("verifications")
        child_digest = self._leaf_digest(index)
        for level in range(self.num_levels):
            slot = index % self.arity
            index //= self.arity
            children = list(self._child_digests(level, index))
            if children[slot] != child_digest:
                self.stats.add("mismatches")
                raise IntegrityError(
                    f"merkle mismatch at level {level} for {metadata_addr:#x}"
                )
            child_digest = hashlib.sha256(b"".join(children)).digest()
        if child_digest != self._root:
            self.stats.add("mismatches")
            raise IntegrityError(f"root mismatch verifying {metadata_addr:#x}")

    # -- fault injection and post-crash integrity scan --------------------------

    def stored_nodes(self) -> List["tuple[int, int]"]:
        """(level, index) of every materialised internal node — the
        node digests that live in the NVM metadata region and therefore
        survive a crash (and are exposed to media faults)."""
        return sorted(self._nodes)

    def flip_node_bit(self, level: int, index: int, bit: int) -> None:
        """Media fault: flip one bit of a stored node digest in place."""
        digest = self._nodes.get((level, index))
        if digest is None:
            raise KeyError(f"no stored node at level={level} index={index}")
        corrupted = bytearray(digest)
        corrupted[bit // 8] ^= 1 << (bit % 8)
        self._nodes[(level, index)] = bytes(corrupted)

    def flag_poisoned_nodes(self) -> List["tuple[int, int]"]:
        """Scan every stored node against a recompute from its children.

        The reboot path calls this *before* recovered counters are
        installed, while leaf content still matches what the stored
        level-0 digests were computed over — so any mismatch is media
        damage (or tampering) in the node storage itself, never a
        legitimate recovery delta.  The top stored node is additionally
        checked against the on-chip root, which survives power loss
        inside the processor.  Returns the poisoned (level, index) list.
        """
        poisoned: List["tuple[int, int]"] = []
        for (level, index) in self.stored_nodes():
            recomputed = hashlib.sha256(
                b"".join(self._child_digests(level, index))
            ).digest()
            if recomputed != self._nodes[(level, index)]:
                poisoned.append((level, index))
        top = (self.num_levels - 1, 0)
        if top in self._nodes and self._nodes[top] != self._root and top not in poisoned:
            poisoned.append(top)
        if poisoned:
            self.stats.add("poisoned_nodes", len(poisoned))
        return poisoned

    def rebuild_root(self) -> bytes:
        """Recompute every stored node bottom-up (crash recovery path).

        Osiris recovers counters first, then "the Merkle tree can be
        regenerated and verified through the root stored inside the
        processor" — this is that regeneration.
        """
        parents = {index // self.arity for index in self._touched}
        for level in range(self.num_levels):
            next_parents = set()
            for index in parents:
                digest = hashlib.sha256(
                    b"".join(self._child_digests(level, index))
                ).digest()
                self._nodes[(level, index)] = digest
                next_parents.add(index // self.arity)
            parents = next_parents
        self._root = self._node_digest(self.num_levels - 1, 0)
        self.stats.add("rebuilds")
        return self._root
