"""A DAX-enabled ext4-like filesystem over a reserved PMEM region.

This is the simulation's stand-in for ``memmap=4G!12G`` + ``mkfs.ext4 &&
mount -o dax`` (§IV): a physical page allocator over the persistent
region, a flat namespace of inodes, Unix permissions, and per-file
encryption contexts.  What makes it "DAX" is what it does *not* do —
file pages are handed to the MMU as direct physical mappings; there is
no page cache and no copy on the access path.

The co-design hooks fire from here:

* ``create``  -> MMIO ``INSTALL_KEY``  (fresh FEK into the OTT)
* ``open``    -> unwrap FEK with the caller's FEKEK (wrong passphrase =>
                 open refused), then re-INSTALL (idempotent; the OTT may
                 have spilled the entry)
* ``unlink``  -> MMIO ``REVOKE_KEY`` + secure shredding of the extents
* DAX fault   -> :meth:`fault_in` returns (pfn, df) and fires
                 MMIO ``UPDATE_FECB`` for encrypted files
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..crypto.keys import generate_fek
from ..kernel.costs import SoftwareCosts
from ..kernel.keyring import Keyring, KeyringError
from ..kernel.mmio import MMIORegisters
from ..mem.address import PAGE_SIZE
from ..mem.stats import StatCounters
from .inode import EncryptionContext, Inode
from .permissions import AccessDenied, User, UserDatabase, check_access

__all__ = ["FsError", "FileHandle", "DaxFilesystem"]


class FsError(Exception):
    """Filesystem-level failure (ENOENT, EEXIST, ENOSPC...)."""


@dataclass(frozen=True)
class FileHandle:
    """An open file descriptor: the inode plus the opener's identity.

    For encrypted files the handle existing at all proves the opener's
    passphrase unwrapped the FEK — the paper's last line of defence when
    mode bits have been botched.
    """

    inode: Inode
    user: User
    writable: bool


class DaxFilesystem:
    """The mounted persistent filesystem.

    ``mmio`` is the kernel->controller channel; pass ``None`` to mount
    without hardware filesystem encryption (plain ext4-dax, or the
    software-encryption comparison where crypto happens above the fs).
    """

    def __init__(
        self,
        pmem_base: int,
        pmem_bytes: int,
        users: Optional[UserDatabase] = None,
        keyring: Optional[Keyring] = None,
        mmio: Optional[MMIORegisters] = None,
        costs: Optional[SoftwareCosts] = None,
        stats: Optional[StatCounters] = None,
        entropy_source: Optional[Callable[[], bytes]] = None,
    ) -> None:
        if pmem_base % PAGE_SIZE or pmem_bytes % PAGE_SIZE:
            raise ValueError("PMEM region must be page aligned")
        if pmem_bytes <= 0:
            raise ValueError("PMEM region must be non-empty")
        self.pmem_base = pmem_base
        self.pmem_bytes = pmem_bytes
        self.users = users or UserDatabase()
        self.keyring = keyring or Keyring()
        self.mmio = mmio
        self.costs = costs or SoftwareCosts()
        self.stats = stats or StatCounters("fs")
        self._entropy_source = entropy_source or self._default_entropy
        first_page = pmem_base // PAGE_SIZE
        self._free_pages: List[int] = list(
            range(first_page + pmem_bytes // PAGE_SIZE - 1, first_page - 1, -1)
        )
        self._namespace: Dict[str, int] = {}
        self._inodes: Dict[int, Inode] = {}
        self._dirs: set = {"/"}
        self._next_ino = 2  # ino 1 is the root directory by convention
        self._entropy_counter = 0

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def _default_entropy(self) -> bytes:
        self._entropy_counter += 1
        return hashlib.sha256(b"fs-entropy" + self._entropy_counter.to_bytes(8, "big")).digest()

    def _allocate_page(self) -> int:
        if not self._free_pages:
            raise FsError("ENOSPC: persistent region exhausted")
        return self._free_pages.pop()

    def _release_page(self, pfn: int) -> None:
        self._free_pages.append(pfn)

    @property
    def free_bytes(self) -> int:
        return len(self._free_pages) * PAGE_SIZE

    # ------------------------------------------------------------------
    # Namespace operations
    # ------------------------------------------------------------------

    def create(
        self,
        path: str,
        uid: int,
        mode: int = 0o644,
        encrypted: bool = False,
    ) -> Tuple[FileHandle, float]:
        """creat(2).  Returns the handle and the software latency spent.

        Creating an encrypted file requires the owner to have a keyring
        session (their passphrase-derived FEKEK wraps the fresh FEK).
        """
        if path in self._namespace:
            raise FsError(f"EEXIST: {path}")
        if self.is_dir(path):
            raise FsError(f"EISDIR: {path}")
        user = self.users.user(uid)
        latency = self.costs.syscall_ns + self.costs.fs_layer_ns
        self._materialise_parents(path)
        inode = Inode(i_ino=self._next_ino, i_uid=uid, i_gid=user.gid, mode=mode)
        self._next_ino += 1

        if encrypted:
            session = self.keyring.session(uid)  # raises if not logged in
            fek = generate_fek(self._entropy_source())
            inode.encryption = EncryptionContext(
                wrapped_fek=session.wrap(fek),
                key_fingerprint=hashlib.sha256(fek).digest()[:8],
            )
            if self.mmio is not None:
                latency += self.mmio.install_file_key(inode.i_gid, inode.i_ino, fek)
            self.stats.add("encrypted_creates")

        self._namespace[path] = inode.i_ino
        self._inodes[inode.i_ino] = inode
        self.stats.add("creates")
        return FileHandle(inode=inode, user=user, writable=True), latency

    def open(self, path: str, uid: int, write: bool = False) -> Tuple[FileHandle, float]:
        """open(2) with the paper's key check on top of mode bits.

        Even when mode bits allow the access (e.g. after an accidental
        ``chmod 777``), an encrypted file only opens if the caller's
        keyring session unwraps the FEK — a wrong passphrase raises
        :class:`~repro.kernel.keyring.KeyringError` (§VI).
        """
        inode = self._lookup(path)
        user = self.users.user(uid)
        check_access(inode.mode, user, inode.i_uid, inode.i_gid, write=write)
        latency = self.costs.syscall_ns + self.costs.fs_layer_ns

        if inode.encrypted:
            session = self.keyring.session(uid)
            fek = session.unwrap(inode.encryption.wrapped_fek)  # may raise
            if self.mmio is not None:
                latency += self.mmio.install_file_key(inode.i_gid, inode.i_ino, fek)
            self.stats.add("encrypted_opens")

        self.stats.add("opens")
        return FileHandle(inode=inode, user=user, writable=write), latency

    def unlink(self, path: str, uid: int) -> float:
        """unlink(2): drop the name; on the last link, revoke the key,
        shred the extents, free the pages.

        Secure deletion follows the Silent-Shredder approach (§VI): the
        controller invalidates the encryption state for the pages rather
        than overwriting data — modelled by the REVOKE_KEY message plus
        extent release; the ciphertext left behind is undecryptable once
        the FECB is re-initialised and the key revoked.
        """
        inode = self._lookup(path)
        user = self.users.user(uid)
        check_access(inode.mode, user, inode.i_uid, inode.i_gid, write=True)
        latency = self.costs.syscall_ns + self.costs.fs_layer_ns
        del self._namespace[path]
        inode.nlink -= 1
        if inode.nlink > 0:
            self.stats.add("unlinks")
            return latency
        if inode.encrypted and self.mmio is not None:
            latency += self.mmio.revoke_file_key(inode.i_gid, inode.i_ino)
        for pfn in inode.extents.values():
            self._release_page(pfn)
        inode.extents.clear()
        del self._inodes[inode.i_ino]
        self.stats.add("unlinks")
        return latency

    def rename(self, old_path: str, new_path: str, uid: int) -> float:
        """rename(2): atomic namespace move; contents and keys untouched.

        Replaces an existing destination the POSIX way (its final link
        is dropped first).
        """
        inode = self._lookup(old_path)
        user = self.users.user(uid)
        check_access(inode.mode, user, inode.i_uid, inode.i_gid, write=True)
        latency = self.costs.syscall_ns + self.costs.fs_layer_ns
        if new_path in self._namespace and new_path != old_path:
            latency += self.unlink(new_path, uid)
        del self._namespace[old_path]
        self._namespace[new_path] = inode.i_ino
        self.stats.add("renames")
        return latency

    def link(self, existing_path: str, new_path: str, uid: int) -> float:
        """link(2): a second name for the same inode (nlink++).

        Hard links share the inode, hence the extents, the encryption
        context, and — under FsEncr — the same FECB stamps and file key.
        """
        if new_path in self._namespace:
            raise FsError(f"EEXIST: {new_path}")
        inode = self._lookup(existing_path)
        user = self.users.user(uid)
        check_access(inode.mode, user, inode.i_uid, inode.i_gid, write=False)
        inode.nlink += 1
        self._namespace[new_path] = inode.i_ino
        self.stats.add("links")
        return self.costs.syscall_ns + self.costs.fs_layer_ns

    # ------------------------------------------------------------------
    # Directories
    # ------------------------------------------------------------------
    #
    # Directory semantics follow the object-store convention: ``create``
    # implicitly materialises missing parents (mkdir -p), ``mkdir``
    # makes them explicit, ``readdir`` lists immediate children, and
    # ``rmdir`` refuses while children exist.  This keeps flat-path
    # callers working while giving hierarchical callers real structure.

    @staticmethod
    def _parent_of(path: str) -> str:
        parent = path.rsplit("/", 1)[0]
        return parent or "/"

    def _materialise_parents(self, path: str) -> None:
        parent = self._parent_of(path)
        while parent not in self._dirs:
            self._dirs.add(parent)
            parent = self._parent_of(parent)

    def mkdir(self, path: str, uid: int) -> None:
        """mkdir -p: create the directory and any missing ancestors."""
        if not path.startswith("/"):
            raise FsError(f"EINVAL: directory path must be absolute: {path}")
        if path in self._namespace:
            raise FsError(f"EEXIST (as file): {path}")
        self.users.user(uid)  # must exist
        self._dirs.add(path.rstrip("/") or "/")
        self._materialise_parents(path.rstrip("/") or "/")
        self.stats.add("mkdirs")

    def is_dir(self, path: str) -> bool:
        return (path.rstrip("/") or "/") in self._dirs

    def readdir(self, path: str) -> "List[str]":
        """Immediate children (file and directory names), sorted."""
        directory = path.rstrip("/") or "/"
        if directory not in self._dirs:
            raise FsError(f"ENOTDIR: {path}")
        prefix = directory if directory.endswith("/") else directory + "/"
        children = set()
        for entry in list(self._namespace) + [d for d in self._dirs if d != "/"]:
            if entry.startswith(prefix):
                remainder = entry[len(prefix):]
                if remainder:
                    children.add(remainder.split("/", 1)[0])
        self.stats.add("readdirs")
        return sorted(children)

    def rmdir(self, path: str, uid: int) -> None:
        """Remove an empty directory."""
        directory = path.rstrip("/") or "/"
        if directory == "/":
            raise FsError("EBUSY: cannot remove the root")
        if directory not in self._dirs:
            raise FsError(f"ENOTDIR: {path}")
        self.users.user(uid)
        if self.readdir(directory):
            raise FsError(f"ENOTEMPTY: {path}")
        self._dirs.discard(directory)
        self.stats.add("rmdirs")

    def fsck(self) -> "List[str]":
        """Consistency check; returns a list of problems (empty = clean).

        Invariants: namespace entries resolve; extents never shared
        between inodes nor present on the free list; every allocated
        page lies inside the mounted region; sizes cover the extents;
        link counts match the namespace.
        """
        problems: List[str] = []
        first_page = self.pmem_base // PAGE_SIZE
        last_page = first_page + self.pmem_bytes // PAGE_SIZE

        for path, ino in self._namespace.items():
            if ino not in self._inodes:
                problems.append(f"dangling namespace entry: {path} -> ino {ino}")

        seen_pages: Dict[int, int] = {}
        free_set = set(self._free_pages)
        for ino, inode in self._inodes.items():
            for file_page, pfn in inode.extents.items():
                if not first_page <= pfn < last_page:
                    problems.append(f"ino {ino}: page {pfn} outside the PMEM region")
                if pfn in free_set:
                    problems.append(f"ino {ino}: page {pfn} both allocated and free")
                owner = seen_pages.setdefault(pfn, ino)
                if owner != ino:
                    problems.append(f"page {pfn} shared by inos {owner} and {ino}")
            if inode.extents:
                needed = (max(inode.extents) + 1) * PAGE_SIZE
                if inode.size < needed:
                    problems.append(
                        f"ino {ino}: size {inode.size} below extent end {needed}"
                    )
            names = sum(1 for i in self._namespace.values() if i == ino)
            if names != inode.nlink:
                problems.append(
                    f"ino {ino}: nlink {inode.nlink} but {names} namespace entries"
                )
        self.stats.add("fsck_runs")
        return problems

    def chmod(self, path: str, uid: int, mode: int) -> None:
        """chmod(2): only the owner (or root) may change the mode."""
        inode = self._lookup(path)
        if uid not in (0, inode.i_uid):
            raise AccessDenied(f"uid {uid} may not chmod {path}")
        inode.mode = mode
        self.stats.add("chmods")

    def stat(self, path: str) -> Inode:
        return self._lookup(path)

    def exists(self, path: str) -> bool:
        return path in self._namespace

    def _lookup(self, path: str) -> Inode:
        ino = self._namespace.get(path)
        if ino is None:
            raise FsError(f"ENOENT: {path}")
        return self._inodes[ino]

    # ------------------------------------------------------------------
    # The DAX fault hook
    # ------------------------------------------------------------------

    def fault_in(self, handle: FileHandle, file_page: int) -> Tuple[int, bool, float]:
        """Allocate/locate the physical page behind a faulting file page.

        This is the simulated ``dax_insert_mapping``: returns
        ``(pfn, df, latency)`` where ``df`` says whether the PTE must
        carry the DF-bit.  For encrypted files the FECB is stamped with
        (group, file) over MMIO — once per page, at fault time, exactly
        as §III-F-1 specifies.
        """
        inode = handle.inode
        latency = self.costs.dax_fault_ns()
        pfn = inode.extents.get(file_page)
        if pfn is None:
            pfn = self._allocate_page()
            inode.extents[file_page] = pfn
            inode.ensure_size((file_page + 1) * PAGE_SIZE)
            self.stats.add("page_allocations")
        df = inode.encrypted and self.mmio is not None
        if df:
            latency += self.mmio.update_fecb(pfn, inode.i_gid, inode.i_ino)
        self.stats.add("dax_faults")
        return pfn, df, latency
