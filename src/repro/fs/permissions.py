"""Unix permission model: users, groups, mode bits, access checks.

FsEncr deliberately does *not* re-implement access control (§II-A,
§III-A): it trusts the OS's existing permission machinery and adds
cryptographic enforcement underneath it.  This module is that existing
machinery — owner/group/other mode bits and group membership — plus the
``chmod 777`` footgun the paper uses as its motivating internal-attack
example: permissions can be (mis)opened wide, and only the per-file key
check stops a "curious" user from reading the bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

__all__ = [
    "AccessDenied",
    "User",
    "UserDatabase",
    "can_read",
    "can_write",
    "check_access",
    "MODE_DEFAULT",
    "MODE_PRIVATE",
    "MODE_WORLD",
]

MODE_DEFAULT = 0o644
MODE_PRIVATE = 0o600
MODE_WORLD = 0o777

_READ, _WRITE = 4, 2


class AccessDenied(Exception):
    """The OS permission check failed."""


@dataclass(frozen=True)
class User:
    """A system user with primary and supplementary groups."""

    uid: int
    gid: int
    groups: FrozenSet[int] = frozenset()

    @property
    def all_groups(self) -> FrozenSet[int]:
        return self.groups | {self.gid}


@dataclass
class UserDatabase:
    """The /etc/passwd + /etc/group of the simulated system."""

    users: Dict[int, User] = field(default_factory=dict)

    def add_user(self, uid: int, gid: int, groups: Set[int] = frozenset()) -> User:
        user = User(uid=uid, gid=gid, groups=frozenset(groups))
        self.users[uid] = user
        return user

    def user(self, uid: int) -> User:
        if uid not in self.users:
            raise KeyError(f"unknown uid {uid}")
        return self.users[uid]


def _permission_class(mode: int, user: User, owner_uid: int, owner_gid: int) -> int:
    """The 3-bit rwx triple applying to this user (owner/group/other)."""
    if user.uid == owner_uid:
        return (mode >> 6) & 7
    if owner_gid in user.all_groups:
        return (mode >> 3) & 7
    return mode & 7


def can_read(mode: int, user: User, owner_uid: int, owner_gid: int) -> bool:
    if user.uid == 0:
        return True  # root bypasses mode bits (but not file keys!)
    return bool(_permission_class(mode, user, owner_uid, owner_gid) & _READ)


def can_write(mode: int, user: User, owner_uid: int, owner_gid: int) -> bool:
    if user.uid == 0:
        return True
    return bool(_permission_class(mode, user, owner_uid, owner_gid) & _WRITE)


def check_access(
    mode: int, user: User, owner_uid: int, owner_gid: int, *, write: bool
) -> None:
    """Raise :class:`AccessDenied` unless the access is permitted."""
    allowed = (
        can_write(mode, user, owner_uid, owner_gid)
        if write
        else can_read(mode, user, owner_uid, owner_gid)
    )
    if not allowed:
        verb = "write" if write else "read"
        raise AccessDenied(
            f"uid {user.uid} may not {verb} (mode {mode:o}, owner {owner_uid}:{owner_gid})"
        )
