"""Inodes and extent bookkeeping for the simulated DAX filesystem.

The fields the paper's kernel snippets read are all here with their
Linux names: ``i_ino`` (the File ID pushed to the controller),
``i_gid`` (the Group ID), mode/uid for the permission layer, and the
per-file encryption context (the wrapped FEK, exactly where eCryptfs
keeps it — in the file's metadata).

Extents map file page indices to physical pages inside the mounted PMEM
region; DAX mmap exposes those physical pages directly, which is why a
file page's physical address is stable and can key the FECB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..crypto.keys import WrappedKey
from ..mem.address import PAGE_SIZE

__all__ = ["EncryptionContext", "Inode"]


@dataclass
class EncryptionContext:
    """Per-file crypto metadata stored with the inode.

    ``wrapped_fek`` is the FEK sealed under the owner's FEKEK; the
    plaintext FEK exists only inside the memory controller's OTT (and
    transiently in the kernel during creat/open).
    """

    wrapped_fek: WrappedKey
    # Diagnostic only — lets tests confirm the right key reached the OTT
    # without scraping controller internals.  A real inode stores nothing
    # like this.
    key_fingerprint: bytes = b""


@dataclass
class Inode:
    """One file.  ``extents`` maps file-page-index -> physical page number."""

    i_ino: int
    i_uid: int
    i_gid: int
    mode: int
    size: int = 0
    encryption: Optional[EncryptionContext] = None
    extents: Dict[int, int] = field(default_factory=dict)
    nlink: int = 1

    @property
    def encrypted(self) -> bool:
        return self.encryption is not None

    @property
    def pages(self) -> int:
        """Allocated page count (not the same as size for sparse files)."""
        return len(self.extents)

    def page_for_offset(self, offset: int) -> Optional[int]:
        """Physical page number backing a byte offset, if allocated."""
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        return self.extents.get(offset // PAGE_SIZE)

    def ensure_size(self, offset_end: int) -> None:
        if offset_end > self.size:
            self.size = offset_end

    def file_pages_for_range(self, offset: int, length: int) -> range:
        """File page indices touched by [offset, offset+length)."""
        if length <= 0:
            return range(0)
        first = offset // PAGE_SIZE
        last = (offset + length - 1) // PAGE_SIZE
        return range(first, last + 1)
