"""Software filesystem encryption (the eCryptfs model) — Figure 3's loser.

This models a stacked cryptographic filesystem over the PMEM region with
DAX *disabled*, because software encryption cannot work without the page
cache: every first touch of a file page must

  1. trap into the kernel (minor fault),
  2. traverse the stacked-VFS + filesystem layers,
  3. copy the whole 4 KB page from the device into the page cache
     (64 NVM line reads), and
  4. software-decrypt the page (4 KB AES + key setup),

after which accesses hit the decrypted copy until it is evicted —
and a dirty eviction pays the mirror-image cost (software encrypt +
64 NVM line writes).  The 4 KB granularity for byte-sized accesses is
exactly the mismatch the paper blames for the ~2.7x average / ~5x YCSB
slowdown.

The class is a *page-residency manager*: the machine model consults it
on every access to a software-encrypted file and routes resident-page
accesses through the ordinary cache hierarchy (the copy is just memory).
"""

from __future__ import annotations

from typing import Optional

from ..kernel.costs import SoftwareCosts
from ..kernel.page_cache import PageCache, PageCacheConfig
from ..mem.address import LINES_PER_PAGE, PAGE_SIZE
from ..mem.nvm import NVMDevice
from ..mem.stats import StatCounters

__all__ = ["SoftwareEncryptionOverlay"]


class SoftwareEncryptionOverlay:
    """Page-cache + software-crypto front end for encrypted file access."""

    def __init__(
        self,
        device: NVMDevice,
        costs: Optional[SoftwareCosts] = None,
        page_cache: Optional[PageCache] = None,
        stats: Optional[StatCounters] = None,
        encrypted: bool = True,
    ) -> None:
        """``encrypted=False`` degenerates into the plain conventional
        (non-DAX, page-cached, unencrypted) path — useful as the
        conventional-filesystem reference of Figure 1(a)."""
        self.device = device
        self.costs = costs or SoftwareCosts()
        # Standalone fallback; Machine injects a cache with a registered
        # bundle, and the overlay owns its internal cache either way.
        # repro-lint: disable=stats-registered,builder-owns-wiring
        self.page_cache = page_cache or PageCache(PageCacheConfig())
        self.stats = stats or StatCounters("sw_encryption")
        self.encrypted = encrypted

    def access_page(
        self, file_id: int, page_index: int, device_page_addr: int, is_write: bool
    ) -> float:
        """Ensure the page is resident; returns the software latency.

        ``device_page_addr`` is the physical base of the page on the
        NVM device (used to charge real line traffic for the copy).
        A page-cache hit costs nothing here — the caller then performs
        the actual access against the resident copy through the normal
        cache hierarchy.
        """
        if self.page_cache.lookup(file_id, page_index) is not None:
            if is_write:
                self.page_cache.mark_dirty(file_id, page_index)
            return 0.0

        # Fault the page in: kernel + FS layers + copy + (decrypt).
        latency = (
            self.costs.encrypted_fault_ns()
            if self.encrypted
            else self.costs.conventional_fault_ns()
        )
        for line in range(LINES_PER_PAGE):
            latency_contrib = self.device.read(device_page_addr + line * 64)
            # The copy overlaps poorly with the kernel work; charge the
            # device time fully (it is a synchronous read of a cold page).
            latency += latency_contrib
        self.stats.add("page_faults")
        if self.encrypted:
            self.stats.add("page_decryptions")

        evicted = self.page_cache.insert(file_id, page_index, dirty=is_write)
        if evicted is not None and evicted.dirty:
            latency += self._write_back(evicted.file_id, evicted.page_index)
        return latency

    def _write_back(self, file_id: int, page_index: int) -> float:
        """Dirty eviction: software-encrypt and write the page out.

        The device address of the evicted page is approximated by its
        (file, page) identity hashed into the file's region — the traffic
        volume and crypto cost are what matter, not the exact row.
        """
        latency = self.costs.page_crypto_ns if self.encrypted else 0.0
        base = (file_id * 1024 + page_index) * PAGE_SIZE
        for line in range(LINES_PER_PAGE):
            # The software-encryption scheme has no secure controller:
            # the kernel's write-back path talks to the plain device
            # directly, exactly as the pre-DAX stack does (Figure 1(a)).
            latency += self.device.write(base + line * 64)  # repro-lint: disable=persist-through-wpq
        self.stats.add("page_writebacks")
        if self.encrypted:
            self.stats.add("page_encryptions")
        return latency

    def sync_file(self, file_id: int) -> float:
        """fsync: write back every dirty page of the file."""
        latency = self.costs.syscall_ns
        for page in self.page_cache.invalidate_file(file_id):
            latency += self._write_back(page.file_id, page.page_index)
        self.stats.add("syncs")
        return latency
