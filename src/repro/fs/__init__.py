"""Filesystem substrate: DAX ext4-like filesystem + software-crypto overlay."""

from .ecryptfs import SoftwareEncryptionOverlay
from .ext4dax import DaxFilesystem, FileHandle, FsError
from .inode import EncryptionContext, Inode
from .permissions import (
    MODE_DEFAULT,
    MODE_PRIVATE,
    MODE_WORLD,
    AccessDenied,
    User,
    UserDatabase,
    can_read,
    can_write,
    check_access,
)

__all__ = [
    "SoftwareEncryptionOverlay",
    "DaxFilesystem",
    "FileHandle",
    "FsError",
    "EncryptionContext",
    "Inode",
    "AccessDenied",
    "User",
    "UserDatabase",
    "can_read",
    "can_write",
    "check_access",
    "MODE_DEFAULT",
    "MODE_PRIVATE",
    "MODE_WORLD",
]
