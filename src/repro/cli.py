"""Command-line front end: regenerate any paper artefact from a shell.

    python -m repro fig3            # software-encryption motivation
    python -m repro fig8            # PMEMKV slowdown/writes/reads
    python -m repro fig11           # Whisper slowdown/writes/reads
    python -m repro fig12           # synthetic micro-benchmarks
    python -m repro fig15           # metadata-cache sensitivity sweep
    python -m repro table1          # executable vulnerability matrix
    python -m repro bench           # every figure grid on one runner
    python -m repro all             # everything, in paper order
    python -m repro quick           # one fast end-to-end sanity pass
    python -m repro crashsweep      # systematic crash/recovery audit
    python -m repro batchcheck      # batch-vs-per-access fidelity + speed gate
    python -m repro loadcurve       # concurrent-traffic throughput vs p99
    python -m repro cache stats     # entry counts / bytes / age
    python -m repro cache verify    # checksum audit (exit = corrupt count)
    python -m repro cache gc        # sweep temp files + stale entries

``--ops`` / ``--iters`` scale the workloads; ``--json PATH`` saves the
table data for downstream plotting.  Every grid command takes ``--jobs
N`` to fan its cells over worker processes (default: serial) and serves
unchanged cells from ``.repro-cache/`` — ``--no-cache`` always
simulates, ``--clear-cache`` empties the cache first, ``--cache-dir``
relocates it (docs/RUNNER.md).  Supervision flags shape how hard the
runner fights for each cell: ``--timeout SECONDS`` kills hung workers,
``--retries N`` re-runs failed cells (with ``--backoff SECONDS``
deterministic seeded exponential delay), and ``--failure-policy
continue`` quarantines failed cells into the run's grid report instead
of aborting the whole grid.  ``crashsweep`` runs the full (scheme x
fault-profile) matrix by default — narrow it with ``--scheme`` /
``--profile``, or shape a one-off plan with ``--profile custom`` plus
``--drain-fraction/--torn-prob/--torn-burst/--bit-flips/
--counter-flips`` — and exits non-zero iff any cell's crash point
produced silent corruption.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from .analysis import (
    figure3_software_encryption,
    figure8_to_10_pmemkv,
    figure11_whisper,
    figure12_to_14_micro,
    figure15_cache_sensitivity,
    render_sensitivity,
    render_table1,
)
from .exec import ExperimentRunner, ResultCache, SupervisionPolicy, source_fingerprint
from .sim.results import run_provenance

__all__ = ["main"]


def _make_runner(args) -> ExperimentRunner:
    """Build the runner the command's grids execute on.

    ``--jobs`` unset means serial (the library default); ``--jobs 0``
    means "one worker per CPU".  ``--clear-cache`` empties the cache
    before the run rather than instead of it, so ``--clear-cache`` plus
    a figure command is the natural "rebuild from scratch" spelling.
    """
    jobs = args.jobs
    if jobs == 0:
        jobs = None  # ExperimentRunner(None) -> os.cpu_count()
    # SupervisionPolicy's defaults are the historical semantics (no
    # timeout, single attempt, fail_fast), so it is built unconditionally.
    policy = SupervisionPolicy(
        timeout_seconds=args.timeout,
        max_attempts=max(0, args.retries) + 1,
        backoff_base=args.backoff,
        failure_policy=args.failure_policy,
    )
    runner = ExperimentRunner(
        jobs if jobs is not None else 1,
        use_cache=not args.no_cache,
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        policy=policy,
    )
    if args.clear_cache:
        removed = runner.clear_cache()
        print(f"cache cleared: {removed} entries")
    return runner


def _report_failures(runner: ExperimentRunner) -> None:
    """Under ``--failure-policy continue`` a grid can finish with
    quarantined cells; name them rather than let a shorter table pass
    for a complete one."""
    report = runner.last_report
    if report is None or not report.quarantined:
        return
    print(f"WARNING: {len(report.quarantined)} cell(s) quarantined:", file=sys.stderr)
    for line in report.failure_lines():
        print(line, file=sys.stderr)


def _emit(table, json_path: Optional[str], runner: ExperimentRunner) -> None:
    print(table.render())
    print(runner.last_stats.summary())
    _report_failures(runner)
    print()
    if json_path:
        table.save_json(Path(json_path), extra=run_provenance(runner))
        print(f"saved: {json_path}")


def _run_fig3(args, runner: Optional[ExperimentRunner] = None) -> None:
    runner = runner or _make_runner(args)
    _emit(
        figure3_software_encryption(
            ops=args.ops or 1500, batch=args.batch, runner=runner
        ),
        args.json,
        runner,
    )


def _run_fig8(args, runner: Optional[ExperimentRunner] = None) -> None:
    runner = runner or _make_runner(args)
    _emit(
        figure8_to_10_pmemkv(ops=args.ops or 600, batch=args.batch, runner=runner),
        args.json,
        runner,
    )


def _run_fig11(args, runner: Optional[ExperimentRunner] = None) -> None:
    runner = runner or _make_runner(args)
    _emit(
        figure11_whisper(ops=args.ops or 1500, batch=args.batch, runner=runner),
        args.json,
        runner,
    )


def _run_fig12(args, runner: Optional[ExperimentRunner] = None) -> None:
    runner = runner or _make_runner(args)
    _emit(
        figure12_to_14_micro(
            iterations=args.iters or 8000, batch=args.batch, runner=runner
        ),
        args.json,
        runner,
    )


def _run_fig15(args, runner: Optional[ExperimentRunner] = None) -> None:
    runner = runner or _make_runner(args)
    # --scheme selects the measured column ("fsencr+partitioned" plots
    # the partitioned-cache variant); "all" keeps the figure's default.
    scheme = None if args.scheme == "all" else args.scheme
    curves = figure15_cache_sensitivity(
        pmemkv_ops=args.ops or 400,
        whisper_ops=(args.ops or 400) * 3,
        micro_iters=args.iters or 6000,
        scheme=scheme,
        batch=args.batch,
        runner=runner,
    )
    print(render_sensitivity(curves))
    print(runner.last_stats.summary())
    _report_failures(runner)
    if args.json:
        import json

        Path(args.json).write_text(
            json.dumps(
                {
                    "curves": {
                        k: {str(s): v for s, v in c.items()} for k, c in curves.items()
                    },
                    **run_provenance(runner),
                },
                indent=2,
            )
        )
        print(f"saved: {args.json}")


def _run_table1(args) -> None:
    print(render_table1())


def _run_report(args) -> None:
    from .analysis import aggregate_report

    results = Path(args.json) if args.json else Path("benchmarks/results")
    print(aggregate_report(results))


def _run_quick(args) -> None:
    """A fast sanity pass: tiny versions of the headline comparisons."""
    runner = _make_runner(args)
    print(render_table1())
    print()
    _emit(figure11_whisper(ops=400, batch=args.batch, runner=runner), None, runner)
    _emit(
        figure3_software_encryption(ops=400, batch=args.batch, runner=runner),
        None,
        runner,
    )


def _run_bench(args) -> None:
    """Every figure grid on one shared runner.

    The point of sharing: overlapping grids (fig8 and fig15 both run
    Fillrandom-L cells, say) are simulated once, and the closing
    lifetime summary shows exactly how much the cache saved.
    """
    runner = _make_runner(args)
    for step in (_run_fig3, _run_fig8, _run_fig11, _run_fig12, _run_fig15):
        step(args, runner)
        print()
    print(runner.lifetime.summary())


def _run_all(args) -> None:
    for step in (_run_fig3, _run_fig8, _run_fig11, _run_fig12, _run_fig15):
        step(args)
        print()
    _run_table1(args)


def _run_crashsweep(args) -> int:
    """Crash-sweep the (scheme x fault-profile) matrix, audit every line.

    ``--scheme all`` runs every registry matrix column; a matrix-column
    name narrows to that column, and any other *registered* scheme name
    runs as a one-off ad-hoc column (so new registry entries are
    sweepable before they earn a matrix seat).  ``--profile all`` runs
    every named fault profile; ``--profile custom`` builds one plan from
    the individual fault flags.  Exit code is the total
    silent-corruption count.
    """
    import json

    from .faults.plan import FAULT_PROFILES, FaultPlan
    from .faults.sweep import matrix_configs, sweep_matrix
    from .sim.config import MachineConfig
    from .sim.schemes import crash_matrix_names, get_scheme, scheme_names

    columns = matrix_configs()
    if args.scheme != "all":
        columns = [(label, cfg) for label, cfg in columns if label == args.scheme]
        if not columns:
            try:
                spec = get_scheme(args.scheme)
            except ValueError:
                known = ", ".join(crash_matrix_names())
                registered = ", ".join(scheme_names())
                raise SystemExit(
                    f"unknown --scheme {args.scheme!r} (matrix columns: "
                    f"{known}, all; any registered scheme also works: "
                    f"{registered})"
                )
            # Ad-hoc column: same base normalisation as matrix_configs.
            columns = [(spec.name, spec.configure(MachineConfig().with_wpq(False)))]

    knobs = {
        "drain_fraction": args.drain_fraction,
        "torn_probability": args.torn_prob,
        "torn_burst": args.torn_burst,
        "bit_flips": args.bit_flips,
        "counter_flips": args.counter_flips,
    }
    knobs_given = any(value is not None for value in knobs.values())
    profile = args.profile
    if knobs_given and profile == "all":
        # Individual plan flags imply a one-off plan; silently running
        # the named profiles instead would ignore what the user typed.
        profile = "custom"
    if profile == "custom":
        # Base for unspecified flags: the historical CLI plan (a mixed
        # half-drain), not FaultPlan's all-drained default.
        base = {
            "drain_fraction": 0.5,
            "torn_probability": 0.5,
            "torn_burst": 1,
            "bit_flips": 0,
            "counter_flips": 0,
        }
        base.update({key: value for key, value in knobs.items() if value is not None})
        profiles = {"custom": FaultPlan(**base)}
    elif knobs_given:
        raise SystemExit(
            f"--profile {profile!r} is a named profile; plan flags like "
            "--drain-fraction only apply with --profile custom (or all, "
            "which they override)"
        )
    elif args.profile == "all":
        profiles = dict(FAULT_PROFILES)
    elif args.profile in FAULT_PROFILES:
        profiles = {args.profile: FAULT_PROFILES[args.profile]}
    else:
        known = ", ".join(sorted(FAULT_PROFILES))
        raise SystemExit(f"unknown --profile {args.profile!r} (choose from {known}, all, custom)")

    runner = _make_runner(args)
    matrix = sweep_matrix(
        args.workload,
        profiles=profiles,
        schemes=columns,
        max_points=args.points,
        seed=args.seed,
        name=args.workload,
        ops=args.ops or 0,
        iterations=args.iters or 0,
        runner=runner,
    )
    print(matrix.summary())
    print(runner.last_stats.summary())
    _report_failures(runner)
    for (scheme_label, profile_name), cell in sorted(matrix.cells.items()):
        for point in cell.points:
            print(
                f"  [{scheme_label}/{profile_name}] op {point.op_index:>5}: "
                f"{point.dispositions} -> {point.outcomes}, "
                f"{point.trials} trials, {point.recovery_ns / 1000.0:.1f} us recovery"
            )
    if args.json:
        Path(args.json).write_text(
            json.dumps(
                {
                    "workload": matrix.workload,
                    "seed": matrix.seed,
                    "silent_corruptions": matrix.silent_corruptions,
                    **run_provenance(runner),
                    "cells": [
                        {
                            "scheme": scheme_label,
                            "profile": profile_name,
                            "boundaries_total": cell.boundaries_total,
                            "silent_corruptions": cell.silent_corruptions,
                            "outcomes": cell.outcome_totals(),
                            "points": [
                                {
                                    "op_index": p.op_index,
                                    "plan_seed": p.plan_seed,
                                    "dispositions": p.dispositions,
                                    "outcomes": p.outcomes,
                                    "silent_lines": list(p.silent_lines),
                                    "trials": p.trials,
                                    "recovery_ns": p.recovery_ns,
                                }
                                for p in cell.points
                            ],
                        }
                        for (scheme_label, profile_name), cell in sorted(matrix.cells.items())
                    ],
                },
                indent=2,
            )
        )
        print(f"saved: {args.json}")
    if matrix.silent_corruptions:
        print(f"FAIL: {matrix.silent_corruptions} silent corruption(s)")
    else:
        print("OK: every cell's crash points detected or recovered")
    return matrix.silent_corruptions


#: The batchcheck grid is pinned: these exact (workload, scheme) cells,
#: at these sizes, are what the recorded speedup means.  The cells all
#: sit inside the interpreter's fast-path envelope (DAX-capable
#: schemes) because the check exists to gate that interpreter — the
#: overlay schemes execute through the reference replay by design and
#: are covered by the equality assertions in the test suite instead.
BATCHCHECK_CELLS = [
    ("DAX-1", "ext4dax_plain"),
    ("DAX-1", "fsencr"),
    ("Fillseq-S", "baseline_secure"),
    ("Fillseq-S", "fsencr"),
    ("Fillseq-S", "fsencr+wpq"),
    ("Fillseq-S", "fsencr+partitioned"),
    ("Hashmap", "baseline_secure"),
    ("Hashmap", "fsencr"),
    ("Hashmap", "fsencr+wpq"),
    ("Hashmap", "fsencr+partitioned"),
]

BATCHCHECK_SIZES = {"DAX-1": 3000, "Fillseq-S": 1200, "Hashmap": 3000}


def _batchcheck_factory(workload: str):
    from .workloads import make_dax_micro, make_pmemkv_workload, make_whisper_workload

    size = BATCHCHECK_SIZES[workload]
    if workload == "DAX-1":
        return lambda: make_dax_micro(workload, iterations=size, seed=7)
    if workload == "Fillseq-S":
        return lambda: make_pmemkv_workload(workload, ops=size, seed=1234)
    return lambda: make_whisper_workload(workload, ops=size, seed=99)


def _run_batchcheck(args) -> int:
    """Prove the batch path on the pinned grid: every cell's payload must
    be bit-identical to per-access execution, and the sweep must beat it
    on throughput.  Timing is best-of-N per mode so a transient host
    stall cannot fake a regression (or an improvement); the digests come
    from the measured runs themselves.  Exit code is the number of
    divergent cells.
    """
    import hashlib
    import json
    import time

    from .exec.spec import canonical_json
    from .sim.batch import BatchRunner
    from .sim.config import MachineConfig
    from .sim.schemes import get_scheme
    from .workloads.base import run_workload

    reps = max(1, args.reps)

    def sweep(use_batch: bool):
        runner = BatchRunner() if use_batch else None
        digests = {}
        start = time.perf_counter()
        for workload_name, scheme_name in BATCHCHECK_CELLS:
            workload = _batchcheck_factory(workload_name)()
            config = get_scheme(scheme_name).configure(MachineConfig())
            if runner is not None:
                result = runner.run(config, workload)
            else:
                result = run_workload(config, workload)
            blob = canonical_json(result.to_dict())
            digests[f"{workload_name}/{scheme_name}"] = hashlib.sha256(
                blob.encode()
            ).hexdigest()
        return time.perf_counter() - start, digests

    direct_time, direct_digests = sweep(False)
    batch_time, batch_digests = sweep(True)
    for _ in range(reps - 1):
        direct_time = min(direct_time, sweep(False)[0])
        batch_time = min(batch_time, sweep(True)[0])

    mismatches = [
        cell for cell in direct_digests if direct_digests[cell] != batch_digests[cell]
    ]
    cells = len(BATCHCHECK_CELLS)
    per_access_rate = cells / direct_time
    batched_rate = cells / batch_time
    speedup = direct_time / batch_time

    print(f"batchcheck: {cells} pinned cells, best of {reps} run(s) per mode")
    for cell in sorted(direct_digests):
        status = "DIVERGED" if cell in mismatches else "ok"
        print(f"  {status:8s} {cell}  {direct_digests[cell][:16]}")
    print(f"  per-access: {per_access_rate:8.3f} cells/s")
    print(f"  batched:    {batched_rate:8.3f} cells/s")
    print(f"  speedup:    {speedup:8.2f}x")
    if mismatches:
        print(f"FAIL: {len(mismatches)} cell(s) diverged from the per-access path")
    else:
        print("OK: every batched payload is bit-identical to per-access")

    if args.json:
        Path(args.json).write_text(
            json.dumps(
                {
                    "cells": {
                        cell: {
                            "digest": direct_digests[cell],
                            "match": cell not in mismatches,
                        }
                        for cell in sorted(direct_digests)
                    },
                    "runner": {
                        "mode": "batchcheck",
                        "cells": cells,
                        "reps": reps,
                        "per_access_cells_per_s": per_access_rate,
                        "batched_cells_per_s": batched_rate,
                        "speedup": speedup,
                        "digests_match": not mismatches,
                    },
                },
                indent=2,
            )
        )
        print(f"saved: {args.json}")
    return len(mismatches)


def _run_loadcurve(args) -> int:
    """Throughput-vs-tail curves for a concurrent stream mix.

    One loadcurve cell per scheme (so ``--jobs`` parallelises across
    schemes and the cache serves unchanged curves); each cell
    calibrates the mix closed-loop, then sweeps the offered loads
    open-loop through the shared memory-controller and OTT-port queues.
    Exit code is the number of schemes whose p99 is *not* monotonically
    non-decreasing in load — loud, because a non-monotone curve means
    the sweep is under-sampled for the mix.
    """
    import json

    from .analysis.tails import p99_monotone, render_load_curve
    from .exec.spec import CellSpec, payload_to_curves
    from .sim.config import MachineConfig
    from .workloads.base import parse_stream_mix

    loads = tuple(float(part) for part in args.loads.split(","))
    schemes = [part.strip() for part in args.schemes.split(",") if part.strip()]
    parse_stream_mix(args.streams)  # fail on a malformed mix before running
    runner = _make_runner(args)
    specs = [
        CellSpec(
            kind="loadcurve",
            workload=args.streams,
            config=MachineConfig(),
            ops=args.ops or 0,
            schemes=(scheme,),
            loads=loads,
            mlp_window=args.window,
        )
        for scheme in schemes
    ]
    curves = {}
    for result in runner.run(specs):
        curves.update(payload_to_curves(result.payload))

    print(render_load_curve(curves))
    print(runner.last_stats.summary())
    _report_failures(runner)
    non_monotone = 0
    for scheme, curve in curves.items():
        if p99_monotone(curve["points"]):
            print(f"  p99 monotone in load: {scheme} ok")
        else:
            non_monotone += 1
            print(f"  p99 NOT monotone in load: {scheme}")
    if args.json:
        Path(args.json).write_text(
            json.dumps(
                {
                    "mix": args.streams,
                    "loads": list(loads),
                    "window": args.window,
                    "curves": curves,
                    "p99_monotone": {
                        scheme: p99_monotone(curve["points"])
                        for scheme, curve in curves.items()
                    },
                    **run_provenance(runner),
                },
                indent=2,
            )
        )
        print(f"saved: {args.json}")
    return non_monotone


def _run_cache(argv) -> int:
    """``python -m repro cache stats|verify|gc`` — cache hygiene tooling.

    Handled by its own parser (the main one is shaped around figure
    grids).  ``verify``'s exit code is the corrupt-entry count so CI can
    assert a warm cache is clean with a bare command.
    """
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect, audit, or garbage-collect .repro-cache/.",
    )
    parser.add_argument(
        "operation",
        choices=["stats", "verify", "gc"],
        help="stats: counts/bytes/age; verify: checksum audit, quarantine "
        "corrupt entries (exit code = corrupt count); gc: remove orphaned "
        "*.tmp.* files and stale-fingerprint entries",
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None, help="result-cache directory (default: .repro-cache)"
    )
    args = parser.parse_args(argv)
    cache = ResultCache(Path(args.cache_dir) if args.cache_dir else None)
    if args.operation == "stats":
        stats = cache.stats()
        print(f"cache: {stats['directory']}")
        print(f"  entries:     {stats['entries']} ({stats['bytes']} bytes)")
        print(f"  tmp files:   {stats['tmp_files']}")
        print(f"  quarantined: {stats['quarantined']}")
        if stats["entries"]:
            print(
                f"  age span:    {stats['newest_age_seconds']:.0f}s (newest) "
                f"to {stats['oldest_age_seconds']:.0f}s (oldest)"
            )
        return 0
    if args.operation == "verify":
        report = cache.verify()
        print(
            f"cache verify: {report['checked']} checked, {report['ok']} ok, "
            f"{report['legacy']} legacy (pre-checksum), {report['corrupt']} corrupt"
        )
        for name in report["quarantined"]:
            print(f"  quarantined: {name}")
        return report["corrupt"]
    report = cache.gc(source_fingerprint())
    print(
        f"cache gc: {report['tmp_removed']} tmp file(s) and "
        f"{report['stale_removed']} stale entr(ies) removed "
        f"({report['bytes_freed']} bytes), {report['entries_kept']} kept"
    )
    return 0


_COMMANDS = {
    "fig3": _run_fig3,
    "fig8": _run_fig8,
    "fig9": _run_fig8,  # same run produces all three PMEMKV series
    "fig10": _run_fig8,
    "fig11": _run_fig11,
    "fig12": _run_fig12,
    "fig13": _run_fig12,
    "fig14": _run_fig12,
    "fig15": _run_fig15,
    "table1": _run_table1,
    "report": _run_report,
    "quick": _run_quick,
    "bench": _run_bench,
    "all": _run_all,
    "crashsweep": _run_crashsweep,
    "batchcheck": _run_batchcheck,
    "loadcurve": _run_loadcurve,
}


def main(argv: Optional[list] = None) -> int:
    arglist = list(sys.argv[1:] if argv is None else argv)
    if arglist[:1] == ["cache"]:
        return _run_cache(arglist[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the FsEncr paper's tables and figures.",
    )
    parser.add_argument("command", choices=sorted(_COMMANDS), help="artefact to regenerate")
    parser.add_argument("--ops", type=int, default=None, help="workload operation count")
    parser.add_argument("--iters", type=int, default=None, help="micro-benchmark iterations")
    parser.add_argument("--json", type=str, default=None, help="save table data to this path")
    runner = parser.add_argument_group("runner")
    runner.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for grid cells (0 = one per CPU; default: serial)",
    )
    runner.add_argument(
        "--batch",
        action="store_true",
        help="execute compare cells through the compiled-trace batch "
        "path (bit-identical payloads, one capture per encryption class)",
    )
    runner.add_argument(
        "--no-cache",
        action="store_true",
        help="always simulate; never read or write .repro-cache/",
    )
    runner.add_argument(
        "--clear-cache",
        action="store_true",
        help="empty the result cache before running",
    )
    runner.add_argument(
        "--cache-dir", type=str, default=None, help="result-cache directory (default: .repro-cache)"
    )
    runner.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-cell wall-clock deadline in seconds; hung workers are killed "
        "(needs --jobs >= 2; default: none)",
    )
    runner.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-run a failed or timed-out cell up to N more times (default: 0)",
    )
    runner.add_argument(
        "--backoff",
        type=float,
        default=0.0,
        help="base delay in seconds before a retry, doubling per attempt with "
        "deterministic seeded jitter (default: 0)",
    )
    runner.add_argument(
        "--failure-policy",
        choices=["fail_fast", "continue"],
        default="fail_fast",
        help="fail_fast: first exhausted cell aborts the grid; continue: "
        "quarantine it in the grid report and keep going",
    )
    curve = parser.add_argument_group("loadcurve")
    curve.add_argument(
        "--streams",
        type=str,
        default="3xFillseq-S",
        help="loadcurve stream mix, e.g. 3xFillseq-S+2xHashmap "
        "(default: 3xFillseq-S)",
    )
    curve.add_argument(
        "--schemes",
        type=str,
        default="baseline_secure,fsencr",
        help="loadcurve: comma-separated scheme columns "
        "(default: baseline_secure,fsencr)",
    )
    curve.add_argument(
        "--loads",
        type=str,
        default="0.25,0.5,1.0",
        help="loadcurve: offered-load fractions of the mix's calibrated "
        "throughput (default: 0.25,0.5,1.0)",
    )
    curve.add_argument(
        "--window",
        type=int,
        default=1,
        help="loadcurve: closed-loop calibration MLP window (default: 1)",
    )
    sweep = parser.add_argument_group("crashsweep")
    sweep.add_argument("--workload", type=str, default="DAX-3", help="workload to crash-sweep")
    sweep.add_argument("--points", type=int, default=8, help="max crash points to sample")
    sweep.add_argument(
        "--reps",
        type=int,
        default=2,
        help="batchcheck: timing repetitions per mode (best-of-N; default: 2)",
    )
    sweep.add_argument("--seed", type=int, default=0xC0FFEE, help="sweep / fault-plan seed")
    from .sim.schemes import crash_matrix_names, scheme_names

    sweep.add_argument(
        "--scheme",
        type=str,
        default="all",
        help=(
            "crashsweep: matrix column ("
            + ", ".join(crash_matrix_names())
            + ", or all), or any registered scheme as an ad-hoc column ("
            + ", ".join(
                name for name in scheme_names() if name not in crash_matrix_names()
            )
            + "); fig15: the measured column (default fsencr)"
        ),
    )
    sweep.add_argument(
        "--profile",
        type=str,
        default="all",
        help="fault profile: mixed, torn-burst, counter-flips, all, or custom",
    )
    sweep.add_argument(
        "--drain-fraction", type=float, default=None, help="fraction of the WPQ the ADR drains"
    )
    sweep.add_argument(
        "--torn-prob", type=float, default=None, help="torn-write probability per undrained line"
    )
    sweep.add_argument(
        "--torn-burst", type=int, default=None, help="max contiguous lines one tear event takes down"
    )
    sweep.add_argument("--bit-flips", type=int, default=None, help="media bit flips per crash")
    sweep.add_argument(
        "--counter-flips", type=int, default=None, help="media bit flips in security metadata per crash"
    )
    args = parser.parse_args(arglist)
    rc = _COMMANDS[args.command](args)
    return int(rc or 0)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
