"""Machine construction — the one module that wires components.

:class:`MachineBuilder` composes a :class:`~repro.sim.machine.Machine`
from a :class:`~repro.sim.schemes.SchemeSpec` plus a
:class:`~repro.sim.config.MachineConfig`: the spec says *what kind* of
machine (controller family, MMIO channel, page-cache overlay, recovery
wiring), the config says *how big and how fast*.  ``Machine.__init__``
is pure orchestration over these factory methods, in the exact
component order the golden-stats digests pin down.

The ``builder-owns-wiring`` lint rule enforces the corollary: outside
this module (and tests), nobody constructs controllers, filesystems,
overlays, or recovery objects directly — benchmarks and analyses speak
configs and registry names.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core.fsencr import FsEncrController
from ..core.ott import OpenTunnelTable
from ..faults.domain import CrashDomain
from ..fs.ecryptfs import SoftwareEncryptionOverlay
from ..fs.ext4dax import DaxFilesystem
from ..kernel.mmio import MMIORegisters
from ..kernel.page_cache import PageCache, PageCacheConfig
from ..mem.controller import MemoryControllerBase, PlainMemoryController
from ..mem.hierarchy import CacheHierarchy
from ..mem.nvm import NVMDevice
from ..mem.wpq import WritePendingQueue
from ..secmem.anubis import AnubisRecovery, ShadowTable
from ..secmem.osiris import OsirisRecovery
from ..secmem.secure_controller import BaselineSecureController
from .config import MachineConfig
from .schemes import SchemeSpec, get_scheme, spec_for_config

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .machine import Machine

__all__ = [
    "MachineBuilder",
    "build_machine",
    "make_osiris_recovery",
    "make_anubis_shadow",
    "make_anubis_recovery",
]


class MachineBuilder:
    """Composes one machine's components from spec + config.

    The builder is stateless between calls; every method takes the
    machine under construction so stats bundles land in its registry in
    the canonical creation order (nvm, [ott,] controller + metadata
    bundles, hierarchy, tlb/mmu, [mmio,] fs, [page_cache, sw_overlay,]
    [wpq,] [anubis]) — the order the golden digests depend on.
    """

    def __init__(self, spec: SchemeSpec, config: Optional[MachineConfig] = None) -> None:
        self.spec = spec
        self.config = config if config is not None else spec.configure()

    @classmethod
    def for_config(cls, config: MachineConfig) -> "MachineBuilder":
        """The builder for a bare config (legacy ``Machine(config)`` path)."""
        return cls(spec_for_config(config), config)

    # -- component factories (called by Machine.__init__, in order) -----

    def build_device(self, machine: "Machine") -> NVMDevice:
        return NVMDevice(
            timing=self.config.nvm_timing, stats=machine.registry.create("nvm")
        )

    def build_controller(
        self, machine: "Machine", device: NVMDevice
    ) -> MemoryControllerBase:
        registry = machine.registry
        if self.spec.controller == "plain":
            return PlainMemoryController(
                device=device, stats=registry.create("controller")
            )
        kwargs = {}
        if self.spec.controller == "fsencr":
            controller_cls = FsEncrController
            # OTT geometry is a config knob (§III-E ablation axis).
            kwargs["ott"] = OpenTunnelTable(
                banks=self.config.ott_banks,
                entries_per_bank=self.config.ott_entries_per_bank,
                stats=registry.create("ott"),
            )
        else:
            controller_cls = BaselineSecureController
        controller = controller_cls(
            layout=machine.layout,
            config=self.config.controller_config(),
            device=device,
            stats=registry.create("controller"),
            **kwargs,
        )
        # Surface the secure controller's sub-component counters in run
        # results (metadata cache hit rates etc. feed the analyses).
        registry.register(controller.metadata_cache.stats)
        registry.register(controller.merkle.stats)
        registry.register(controller.osiris.stats)
        if isinstance(controller, FsEncrController):
            registry.register(controller.ott_region.stats)
        return controller

    def build_hierarchy(self, machine: "Machine") -> CacheHierarchy:
        return CacheHierarchy(self.config.hierarchy, registry=machine.registry)

    def build_mmio(self, machine: "Machine") -> Optional[MMIORegisters]:
        if not self.spec.mmio:
            return None
        return MMIORegisters(
            target=machine.controller, stats=machine.registry.create("mmio")
        )

    def build_filesystem(self, machine: "Machine") -> DaxFilesystem:
        return DaxFilesystem(
            pmem_base=self.config.pmem_base,
            pmem_bytes=self.config.pmem_bytes,
            users=machine.users,
            keyring=machine.keyring,
            mmio=machine.mmio,
            costs=self.config.software_costs,
            stats=machine.registry.create("fs"),
        )

    def build_overlay(
        self, machine: "Machine", device: NVMDevice
    ) -> Optional[SoftwareEncryptionOverlay]:
        if not self.spec.uses_page_cache:
            return None
        return SoftwareEncryptionOverlay(
            device=device,
            costs=self.config.software_costs,
            page_cache=PageCache(
                PageCacheConfig(self.config.page_cache_pages),
                stats=machine.registry.create("page_cache"),
            ),
            stats=machine.registry.create("sw_overlay"),
            encrypted=self.spec.overlay_encrypted,
        )

    def build_wpq(self, machine: "Machine") -> Optional[WritePendingQueue]:
        if not self.config.model_wpq:
            return None
        return WritePendingQueue(
            self.config.wpq, stats=machine.registry.create("wpq")
        )

    def attach_crash_support(self, machine: "Machine", device: NVMDevice) -> None:
        """Crash lifecycle: in functional mode the secure controller
        stages every line write through a CrashDomain sized like the
        WPQ, so crash() can tear or drop exactly the at-risk tail.
        Anubis columns additionally get the shadow table mirroring the
        metadata cache's dirty counter lines into its NVM region."""
        controller = machine.controller
        if self.config.functional and hasattr(controller, "crash_domain"):
            controller.crash_domain = CrashDomain(depth=self.config.wpq.entries)
        if self.config.anubis_recovery and hasattr(controller, "anubis_shadow"):
            # Shadow writes are posted like Osiris write-throughs: they
            # consume device bandwidth (device.write) but never stall
            # the triggering store.
            controller.anubis_shadow = make_anubis_shadow(
                self.config,
                write_hook=device.write,
                stats=machine.registry.create("anubis"),
            )


def build_machine(scheme, config: Optional[MachineConfig] = None) -> "Machine":
    """One registered column, built: ``build_machine("fsencr+anubis")``.

    ``config`` (optional) is the base the spec projects onto — cache
    sizes, timings, ``functional`` — while the spec controls scheme
    identity and wiring.
    """
    from .machine import Machine

    spec = get_scheme(scheme)
    return Machine(builder=MachineBuilder(spec, spec.configure(config)))


# -- recovery-object factories (config-driven, like the controllers) ----


def make_osiris_recovery(config: MachineConfig, stats=None) -> OsirisRecovery:
    """The Osiris trial-decryption recoverer for ``config``'s stop-loss
    window (used at reboot and by the recovery ablation)."""
    return OsirisRecovery(stop_loss=config.stop_loss, stats=stats)


def make_anubis_shadow(
    config: MachineConfig, write_hook=None, stats=None
) -> ShadowTable:
    """The Anubis shadow table sized by ``config``'s knobs."""
    return ShadowTable(
        capacity_lines=config.anubis_shadow_lines,
        base_addr=config.anubis_shadow_base,
        write_hook=write_hook,
        stats=stats,
    )


def make_anubis_recovery(config: MachineConfig, stats=None) -> AnubisRecovery:
    """The Anubis-side recoverer (reads back the shadow region)."""
    return AnubisRecovery(stats=stats)
