"""Access-trace recording and replay.

A :class:`TraceRecorder` wraps a machine and logs every timing-path
operation a workload issues; the resulting :class:`Trace` replays
verbatim onto any other machine.  This is how the library supports the
classic trace-driven methodology beyond its built-in workloads:

* capture once, replay under every scheme — eliminating even the
  (already deterministic) workload re-execution between comparisons;
* export traces to a portable JSON-lines file for external tools;
* import traces produced elsewhere (e.g. converted PIN/valgrind logs)
  and drive the FsEncr model with real applications.

Replay requires the target machine to have the same virtual layout the
trace was captured against, so the recorder also logs the file/mmap
preamble and replays it first.

File format: line one is a header (``{"name": ..., "version": 2}``),
then one JSON object per op.  Version 1 files (no ``version`` key, no
``ns``/``uid`` fields) still load; they replay with v1 fidelity —
compute times truncated to whole ns and mmap bound to the last handle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from .machine import Machine

__all__ = ["TraceOp", "Trace", "TraceRecorder", "replay", "resolve_mmap_handle"]

#: Current trace-file format.  v2 added the exact ``ns`` on compute ops
#: and the originating handle's ``path``/``uid`` on mmap ops.
TRACE_VERSION = 2

# Operation mnemonics.
LOAD = "load"
STORE = "store"
PERSIST = "persist"
COMPUTE = "compute"
CREATE = "create"
OPEN = "open"
MMAP = "mmap"
MARK = "mark"


@dataclass(frozen=True)
class TraceOp:
    """One logged event.  Field meaning depends on ``op``:

    load/store/persist: (addr=vaddr, size)
    compute:            (size=int(ns), ns=exact ns)
    create/open:        (path, addr=uid, size=mode/writable, flag=encrypted)
    mmap:               (path, uid, size=pages, addr=file_page_start)
    """

    op: str
    addr: int = 0
    size: int = 0
    path: str = ""
    flag: bool = False
    ns: float = 0.0
    uid: int = 0

    def to_json(self) -> str:
        payload = {"op": self.op, "addr": self.addr, "size": self.size,
                   "path": self.path, "flag": self.flag}
        # v2 fields are emitted only when set, so v1 consumers that
        # require exactly five keys keep working on unaffected ops.
        if self.ns:
            payload["ns"] = self.ns
        if self.uid:
            payload["uid"] = self.uid
        return json.dumps(payload)

    @classmethod
    def from_json(cls, line: str) -> "TraceOp":
        raw = json.loads(line)
        return cls(op=raw["op"], addr=raw["addr"], size=raw["size"],
                   path=raw["path"], flag=raw["flag"],
                   ns=float(raw.get("ns", 0.0)), uid=int(raw.get("uid", 0)))


@dataclass
class Trace:
    """An ordered list of operations plus the capture's identity."""

    name: str
    ops: List[TraceOp] = field(default_factory=list)

    def append(self, op: TraceOp) -> None:
        self.ops.append(op)

    def __len__(self) -> int:
        return len(self.ops)

    def save(self, path: Path) -> None:
        with open(path, "w") as fh:
            fh.write(json.dumps({"name": self.name, "version": TRACE_VERSION}) + "\n")
            for op in self.ops:
                fh.write(op.to_json() + "\n")

    @classmethod
    def load(cls, path: Path) -> "Trace":
        with open(path) as fh:
            header = json.loads(fh.readline())
            ops = [TraceOp.from_json(line) for line in fh if line.strip()]
        return cls(name=header["name"], ops=ops)


class TraceRecorder:
    """A Machine proxy that logs the workload-facing API while passing
    every call through to the wrapped machine."""

    def __init__(self, machine: Machine, name: str = "trace") -> None:
        self._machine = machine
        self.trace = Trace(name=name)
        # Which (path, uid) produced each handle the recorder returned,
        # so mmap ops can name their file instead of relying on
        # "most recent handle" order.
        self._handle_ids: Dict[int, tuple] = {}

    # -- logged operations ---------------------------------------------------

    def create_file(self, path: str, uid: int, mode: int = 0o644, encrypted: bool = False):
        self.trace.append(TraceOp(op=CREATE, path=path, addr=uid, size=mode, flag=encrypted))
        handle = self._machine.create_file(path, uid, mode=mode, encrypted=encrypted)
        self._handle_ids[id(handle)] = (path, uid)
        return handle

    def open_file(self, path: str, uid: int, write: bool = False):
        self.trace.append(TraceOp(op=OPEN, path=path, addr=uid, flag=write))
        handle = self._machine.open_file(path, uid, write=write)
        self._handle_ids[id(handle)] = (path, uid)
        return handle

    def mmap(self, handle, pages: int, file_page_start: int = 0) -> int:
        path, uid = self._handle_ids.get(id(handle), ("", 0))
        self.trace.append(
            TraceOp(op=MMAP, path=path, uid=uid, size=pages, addr=file_page_start)
        )
        return self._machine.mmap(handle, pages, file_page_start)

    def load(self, vaddr: int, size: int = 8) -> None:
        self.trace.append(TraceOp(op=LOAD, addr=vaddr, size=size))
        self._machine.load(vaddr, size)

    def store(self, vaddr: int, size: int = 8) -> None:
        self.trace.append(TraceOp(op=STORE, addr=vaddr, size=size))
        self._machine.store(vaddr, size)

    def persist(self, vaddr: int, size: int = 8) -> None:
        self.trace.append(TraceOp(op=PERSIST, addr=vaddr, size=size))
        self._machine.persist(vaddr, size)

    def compute(self, ns: float) -> None:
        self.trace.append(TraceOp(op=COMPUTE, size=int(ns), ns=float(ns)))
        self._machine.compute(ns)

    def mark_measurement_start(self) -> None:
        self.trace.append(TraceOp(op=MARK))
        self._machine.mark_measurement_start()

    # -- passthrough for everything else ------------------------------------

    def __getattr__(self, item):
        return getattr(self._machine, item)


def resolve_mmap_handle(op: TraceOp, handles: Dict[str, object], last_handle):
    """Bind an ``mmap`` op to the handle it mapped at capture time.

    v2 ops name their file, so they bind to the latest handle for that
    path.  Legacy v1 ops (no path) bind to the most recently
    created/opened handle — but only while the trace has touched a
    single file; with several files in play that guess could silently
    map the wrong one, so it raises instead.  Shared by :func:`replay`
    and the batch interpreter so both resolve identically.
    """
    if op.path:
        handle = handles.get(op.path)
        if handle is None:
            raise ValueError(
                f"trace mmap references {op.path!r} with no preceding "
                "create/open for that path"
            )
        return handle
    if last_handle is None:
        raise ValueError("trace mmap with no preceding create/open")
    if len(handles) > 1:
        raise ValueError(
            "legacy trace mmap (no path recorded) is ambiguous: "
            f"{len(handles)} files are open; re-capture the trace "
            "with a current recorder"
        )
    return last_handle


def replay(trace: Trace, machine: Machine) -> None:
    """Re-execute a trace on a fresh machine.

    v2 ``mmap`` ops name the file they mapped, so each binds to the
    latest handle for that path.  Legacy v1 ops (no path) bind to the
    most recently created/opened handle — but only while the trace has
    touched a single file; with several files in play that guess could
    silently map the wrong one, so it raises instead.
    """
    handles: Dict[str, object] = {}
    last_handle = None
    for op in trace.ops:
        if op.op == CREATE:
            last_handle = machine.create_file(
                op.path, uid=op.addr, mode=op.size, encrypted=op.flag
            )
            handles[op.path] = last_handle
        elif op.op == OPEN:
            last_handle = machine.open_file(op.path, uid=op.addr, write=op.flag)
            handles[op.path] = last_handle
        elif op.op == MMAP:
            handle = resolve_mmap_handle(op, handles, last_handle)
            machine.mmap(handle, pages=op.size, file_page_start=op.addr)
        elif op.op == LOAD:
            machine.load(op.addr, op.size)
        elif op.op == STORE:
            machine.store(op.addr, op.size)
        elif op.op == PERSIST:
            machine.persist(op.addr, op.size)
        elif op.op == COMPUTE:
            machine.compute(op.ns if op.ns else float(op.size))
        elif op.op == MARK:
            machine.mark_measurement_start()
        else:
            raise ValueError(f"unknown trace op {op.op!r}")
