"""Access-trace recording and replay.

A :class:`TraceRecorder` wraps a machine and logs every timing-path
operation a workload issues; the resulting :class:`Trace` replays
verbatim onto any other machine.  This is how the library supports the
classic trace-driven methodology beyond its built-in workloads:

* capture once, replay under every scheme — eliminating even the
  (already deterministic) workload re-execution between comparisons;
* export traces to a portable JSON-lines file for external tools;
* import traces produced elsewhere (e.g. converted PIN/valgrind logs)
  and drive the FsEncr model with real applications.

Replay requires the target machine to have the same virtual layout the
trace was captured against, so the recorder also logs the file/mmap
preamble and replays it first.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from .machine import Machine

__all__ = ["TraceOp", "Trace", "TraceRecorder", "replay"]

# Operation mnemonics.
LOAD = "load"
STORE = "store"
PERSIST = "persist"
COMPUTE = "compute"
CREATE = "create"
OPEN = "open"
MMAP = "mmap"
MARK = "mark"


@dataclass(frozen=True)
class TraceOp:
    """One logged event.  Field meaning depends on ``op``:

    load/store/persist: (addr=vaddr, size)
    compute:            (size=ns)
    create/open:        (path, addr=uid, size=mode/writable, flag=encrypted)
    mmap:               (path, size=pages, addr=file_page_start)
    """

    op: str
    addr: int = 0
    size: int = 0
    path: str = ""
    flag: bool = False

    def to_json(self) -> str:
        return json.dumps(
            {"op": self.op, "addr": self.addr, "size": self.size,
             "path": self.path, "flag": self.flag}
        )

    @classmethod
    def from_json(cls, line: str) -> "TraceOp":
        raw = json.loads(line)
        return cls(op=raw["op"], addr=raw["addr"], size=raw["size"],
                   path=raw["path"], flag=raw["flag"])


@dataclass
class Trace:
    """An ordered list of operations plus the capture's identity."""

    name: str
    ops: List[TraceOp] = field(default_factory=list)

    def append(self, op: TraceOp) -> None:
        self.ops.append(op)

    def __len__(self) -> int:
        return len(self.ops)

    def save(self, path: Path) -> None:
        with open(path, "w") as fh:
            fh.write(json.dumps({"name": self.name}) + "\n")
            for op in self.ops:
                fh.write(op.to_json() + "\n")

    @classmethod
    def load(cls, path: Path) -> "Trace":
        with open(path) as fh:
            header = json.loads(fh.readline())
            ops = [TraceOp.from_json(line) for line in fh if line.strip()]
        return cls(name=header["name"], ops=ops)


class TraceRecorder:
    """A Machine proxy that logs the workload-facing API while passing
    every call through to the wrapped machine."""

    def __init__(self, machine: Machine, name: str = "trace") -> None:
        self._machine = machine
        self.trace = Trace(name=name)

    # -- logged operations ---------------------------------------------------

    def create_file(self, path: str, uid: int, mode: int = 0o644, encrypted: bool = False):
        self.trace.append(TraceOp(op=CREATE, path=path, addr=uid, size=mode, flag=encrypted))
        return self._machine.create_file(path, uid, mode=mode, encrypted=encrypted)

    def open_file(self, path: str, uid: int, write: bool = False):
        self.trace.append(TraceOp(op=OPEN, path=path, addr=uid, flag=write))
        return self._machine.open_file(path, uid, write=write)

    def mmap(self, handle, pages: int, file_page_start: int = 0) -> int:
        self.trace.append(
            TraceOp(op=MMAP, path="", size=pages, addr=file_page_start)
        )
        return self._machine.mmap(handle, pages, file_page_start)

    def load(self, vaddr: int, size: int = 8) -> None:
        self.trace.append(TraceOp(op=LOAD, addr=vaddr, size=size))
        self._machine.load(vaddr, size)

    def store(self, vaddr: int, size: int = 8) -> None:
        self.trace.append(TraceOp(op=STORE, addr=vaddr, size=size))
        self._machine.store(vaddr, size)

    def persist(self, vaddr: int, size: int = 8) -> None:
        self.trace.append(TraceOp(op=PERSIST, addr=vaddr, size=size))
        self._machine.persist(vaddr, size)

    def compute(self, ns: float) -> None:
        self.trace.append(TraceOp(op=COMPUTE, size=int(ns)))
        self._machine.compute(ns)

    def mark_measurement_start(self) -> None:
        self.trace.append(TraceOp(op=MARK))
        self._machine.mark_measurement_start()

    # -- passthrough for everything else ------------------------------------

    def __getattr__(self, item):
        return getattr(self._machine, item)


def replay(trace: Trace, machine: Machine) -> None:
    """Re-execute a trace on a fresh machine.

    ``mmap`` ops bind to the most recently created/opened handle, which
    matches how the recorder's single-threaded workloads behave.
    """
    last_handle = None
    for op in trace.ops:
        if op.op == CREATE:
            last_handle = machine.create_file(
                op.path, uid=op.addr, mode=op.size, encrypted=op.flag
            )
        elif op.op == OPEN:
            last_handle = machine.open_file(op.path, uid=op.addr, write=op.flag)
        elif op.op == MMAP:
            if last_handle is None:
                raise ValueError("trace mmap with no preceding create/open")
            machine.mmap(last_handle, pages=op.size, file_page_start=op.addr)
        elif op.op == LOAD:
            machine.load(op.addr, op.size)
        elif op.op == STORE:
            machine.store(op.addr, op.size)
        elif op.op == PERSIST:
            machine.persist(op.addr, op.size)
        elif op.op == COMPUTE:
            machine.compute(float(op.size))
        elif op.op == MARK:
            machine.mark_measurement_start()
        else:
            raise ValueError(f"unknown trace op {op.op!r}")
