"""Access-trace recording and replay.

A :class:`TraceRecorder` wraps a machine and logs every timing-path
operation a workload issues; the resulting :class:`Trace` replays
verbatim onto any other machine.  This is how the library supports the
classic trace-driven methodology beyond its built-in workloads:

* capture once, replay under every scheme — eliminating even the
  (already deterministic) workload re-execution between comparisons;
* export traces to a portable JSON-lines file for external tools;
* import traces produced elsewhere (e.g. converted PIN/valgrind logs)
  and drive the FsEncr model with real applications.

Replay requires the target machine to have the same virtual layout the
trace was captured against, so the recorder also logs the file/mmap
preamble and replays it first.

File format: line one is a header (``{"name": ..., "version": 2}``),
then one JSON object per op.  Version 1 files (no ``version`` key, no
``ns``/``uid`` fields) still load; they replay with v1 fidelity —
compute times truncated to whole ns and mmap bound to the last handle.

Ops optionally carry a stream id (``sid``; default 0) so one file can
hold several concurrent streams' operations: :class:`MultiStreamTrace`
groups per-stream traces for the concurrent-traffic service model
(:mod:`repro.sim.service`), which interleaves them by virtual time
under a closed-loop or open-loop arrival policy.  Single-stream files
never emit the field, so v2 consumers keep working unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from .machine import Machine

__all__ = [
    "TraceOp",
    "Trace",
    "MultiStreamTrace",
    "TraceRecorder",
    "TraceCursor",
    "replay",
    "resolve_mmap_handle",
]

#: Current trace-file format.  v2 added the exact ``ns`` on compute ops
#: and the originating handle's ``path``/``uid`` on mmap ops.
TRACE_VERSION = 2

# Operation mnemonics.
LOAD = "load"
STORE = "store"
PERSIST = "persist"
COMPUTE = "compute"
CREATE = "create"
OPEN = "open"
MMAP = "mmap"
MARK = "mark"


@dataclass(frozen=True)
class TraceOp:
    """One logged event.  Field meaning depends on ``op``:

    load/store/persist: (addr=vaddr, size)
    compute:            (size=int(ns), ns=exact ns)
    create/open:        (path, addr=uid, size=mode/writable, flag=encrypted)
    mmap:               (path, uid, size=pages, addr=file_page_start)

    ``sid`` names the stream the op belongs to (0 = the sole stream of
    a classic single-stream trace).
    """

    op: str
    addr: int = 0
    size: int = 0
    path: str = ""
    flag: bool = False
    ns: float = 0.0
    uid: int = 0
    sid: int = 0

    def to_json(self) -> str:
        payload = {"op": self.op, "addr": self.addr, "size": self.size,
                   "path": self.path, "flag": self.flag}
        # v2 fields are emitted only when set, so v1 consumers that
        # require exactly five keys keep working on unaffected ops.
        if self.ns:
            payload["ns"] = self.ns
        if self.uid:
            payload["uid"] = self.uid
        if self.sid:
            payload["sid"] = self.sid
        return json.dumps(payload)

    @classmethod
    def from_json(cls, line: str) -> "TraceOp":
        raw = json.loads(line)
        return cls(op=raw["op"], addr=raw["addr"], size=raw["size"],
                   path=raw["path"], flag=raw["flag"],
                   ns=float(raw.get("ns", 0.0)), uid=int(raw.get("uid", 0)),
                   sid=int(raw.get("sid", 0)))


@dataclass
class Trace:
    """An ordered list of operations plus the capture's identity."""

    name: str
    ops: List[TraceOp] = field(default_factory=list)

    def append(self, op: TraceOp) -> None:
        self.ops.append(op)

    def __len__(self) -> int:
        return len(self.ops)

    def save(self, path: Path) -> None:
        with open(path, "w") as fh:
            fh.write(json.dumps({"name": self.name, "version": TRACE_VERSION}) + "\n")
            for op in self.ops:
                fh.write(op.to_json() + "\n")

    @classmethod
    def load(cls, path: Path) -> "Trace":
        with open(path) as fh:
            header = json.loads(fh.readline())
            ops = [TraceOp.from_json(line) for line in fh if line.strip()]
        return cls(name=header["name"], ops=ops)


class TraceRecorder:
    """A Machine proxy that logs the workload-facing API while passing
    every call through to the wrapped machine."""

    def __init__(self, machine: Machine, name: str = "trace") -> None:
        self._machine = machine
        self.trace = Trace(name=name)
        # Which (path, uid) produced each handle the recorder returned,
        # so mmap ops can name their file instead of relying on
        # "most recent handle" order.
        self._handle_ids: Dict[int, tuple] = {}

    # -- logged operations ---------------------------------------------------

    def create_file(self, path: str, uid: int, mode: int = 0o644, encrypted: bool = False):
        self.trace.append(TraceOp(op=CREATE, path=path, addr=uid, size=mode, flag=encrypted))
        handle = self._machine.create_file(path, uid, mode=mode, encrypted=encrypted)
        self._handle_ids[id(handle)] = (path, uid)
        return handle

    def open_file(self, path: str, uid: int, write: bool = False):
        self.trace.append(TraceOp(op=OPEN, path=path, addr=uid, flag=write))
        handle = self._machine.open_file(path, uid, write=write)
        self._handle_ids[id(handle)] = (path, uid)
        return handle

    def mmap(self, handle, pages: int, file_page_start: int = 0) -> int:
        path, uid = self._handle_ids.get(id(handle), ("", 0))
        self.trace.append(
            TraceOp(op=MMAP, path=path, uid=uid, size=pages, addr=file_page_start)
        )
        return self._machine.mmap(handle, pages, file_page_start)

    def load(self, vaddr: int, size: int = 8) -> None:
        self.trace.append(TraceOp(op=LOAD, addr=vaddr, size=size))
        self._machine.load(vaddr, size)

    def store(self, vaddr: int, size: int = 8) -> None:
        self.trace.append(TraceOp(op=STORE, addr=vaddr, size=size))
        self._machine.store(vaddr, size)

    def persist(self, vaddr: int, size: int = 8) -> None:
        self.trace.append(TraceOp(op=PERSIST, addr=vaddr, size=size))
        self._machine.persist(vaddr, size)

    def compute(self, ns: float) -> None:
        self.trace.append(TraceOp(op=COMPUTE, size=int(ns), ns=float(ns)))
        self._machine.compute(ns)

    def mark_measurement_start(self) -> None:
        self.trace.append(TraceOp(op=MARK))
        self._machine.mark_measurement_start()

    # -- passthrough for everything else ------------------------------------

    def __getattr__(self, item):
        return getattr(self._machine, item)


def resolve_mmap_handle(op: TraceOp, handles: Dict[str, object], last_handle):
    """Bind an ``mmap`` op to the handle it mapped at capture time.

    v2 ops name their file, so they bind to the latest handle for that
    path.  Legacy v1 ops (no path) bind to the most recently
    created/opened handle — but only while the trace has touched a
    single file; with several files in play that guess could silently
    map the wrong one, so it raises instead.  Shared by :func:`replay`
    and the batch interpreter so both resolve identically.
    """
    if op.path:
        handle = handles.get(op.path)
        if handle is None:
            raise ValueError(
                f"trace mmap references {op.path!r} with no preceding "
                "create/open for that path"
            )
        return handle
    if last_handle is None:
        raise ValueError("trace mmap with no preceding create/open")
    if len(handles) > 1:
        raise ValueError(
            "legacy trace mmap (no path recorded) is ambiguous: "
            f"{len(handles)} files are open; re-capture the trace "
            "with a current recorder"
        )
    return last_handle


class TraceCursor:
    """Applies trace ops to one machine, carrying the handle state the
    ops reference between calls.

    :func:`replay` drives a cursor straight through a trace; the
    service model (:mod:`repro.sim.service`) drives one cursor per
    stream, one op at a time, in virtual-time order.  Sharing the op
    switch here is what guarantees the two paths execute identically.
    """

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._handles: Dict[str, object] = {}
        self._last_handle = None

    def apply(self, op: TraceOp) -> None:
        machine = self.machine
        if op.op == LOAD:
            machine.load(op.addr, op.size)
        elif op.op == STORE:
            machine.store(op.addr, op.size)
        elif op.op == PERSIST:
            machine.persist(op.addr, op.size)
        elif op.op == COMPUTE:
            machine.compute(op.ns if op.ns else float(op.size))
        elif op.op == CREATE:
            self._last_handle = machine.create_file(
                op.path, uid=op.addr, mode=op.size, encrypted=op.flag
            )
            self._handles[op.path] = self._last_handle
        elif op.op == OPEN:
            self._last_handle = machine.open_file(op.path, uid=op.addr, write=op.flag)
            self._handles[op.path] = self._last_handle
        elif op.op == MMAP:
            handle = resolve_mmap_handle(op, self._handles, self._last_handle)
            machine.mmap(handle, pages=op.size, file_page_start=op.addr)
        elif op.op == MARK:
            machine.mark_measurement_start()
        else:
            raise ValueError(f"unknown trace op {op.op!r}")


def replay(trace: Trace, machine: Machine) -> None:
    """Re-execute a trace on a fresh machine.

    v2 ``mmap`` ops name the file they mapped, so each binds to the
    latest handle for that path.  Legacy v1 ops (no path) bind to the
    most recently created/opened handle — but only while the trace has
    touched a single file; with several files in play that guess could
    silently map the wrong one, so it raises instead.
    """
    cursor = TraceCursor(machine)
    for op in trace.ops:
        cursor.apply(op)


@dataclass
class MultiStreamTrace:
    """Per-stream traces destined for one concurrent service run.

    Stream ``k`` is ``streams[k]``; each holds the classic
    single-stream op sequence one client issues.  The *interleaving* of
    the streams is not fixed here — it is produced by the service
    model's scheduler under an arrival policy (closed-loop MLP window
    or open-loop seeded inter-arrival process; see
    :mod:`repro.sim.service`) — but the container round-trips through
    the JSONL format by tagging every op with its ``sid``.
    """

    name: str
    streams: List[Trace] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.streams)

    @property
    def total_ops(self) -> int:
        return sum(len(stream) for stream in self.streams)

    def tagged_ops(self) -> List[TraceOp]:
        """All ops with their ``sid`` stamped, stream-major order."""
        from dataclasses import replace

        ops: List[TraceOp] = []
        for sid, stream in enumerate(self.streams):
            for op in stream.ops:
                ops.append(op if op.sid == sid else replace(op, sid=sid))
        return ops

    def save(self, path: Path) -> None:
        with open(path, "w") as fh:
            fh.write(
                json.dumps(
                    {"name": self.name, "version": TRACE_VERSION,
                     "streams": len(self.streams)}
                )
                + "\n"
            )
            for op in self.tagged_ops():
                fh.write(op.to_json() + "\n")

    @classmethod
    def load(cls, path: Path) -> "MultiStreamTrace":
        with open(path) as fh:
            header = json.loads(fh.readline())
            ops = [TraceOp.from_json(line) for line in fh if line.strip()]
        count = int(header.get("streams", 0)) or (
            max((op.sid for op in ops), default=0) + 1
        )
        streams = [
            Trace(name=f"{header['name']}#{sid}") for sid in range(count)
        ]
        for op in ops:
            if not 0 <= op.sid < count:
                raise ValueError(
                    f"trace op names stream {op.sid} but the file declares "
                    f"{count} stream(s)"
                )
            streams[op.sid].append(op)
        return cls(name=header["name"], streams=streams)

    @classmethod
    def from_traces(cls, name: str, traces: List[Trace]) -> "MultiStreamTrace":
        if not traces:
            raise ValueError("a MultiStreamTrace needs at least one stream")
        return cls(name=name, streams=list(traces))
