"""The full-system machine model: CPU accesses -> MMU -> caches -> NVM.

A :class:`Machine` is the simulation's equivalent of the paper's Gem5
full-system setup: one object owning the MMU/TLB, the three-level cache
hierarchy, the scheme-appropriate memory controller, the mounted DAX
filesystem, the keyring, and (for FsEncr) the MMIO channel between
kernel and controller.  Workloads drive it through a small API:

* file management — ``create_file`` / ``open_file`` / ``unlink`` /
  ``chmod`` / ``mmap``
* timing accesses — ``load`` / ``store`` / ``persist`` / ``compute``
  (line-granularity trace driving; this is what benchmarks use)
* functional accesses — ``store_bytes`` / ``load_bytes`` (real data
  through real crypto; write-through, used by tests and examples)

Timing accounting (1 GHz: cycles == ns):

* loads serialise: translation + cache walk + (on miss) the controller's
  read latency all join the critical path;
* plain stores retire into the hierarchy: a miss costs the
  read-for-ownership fetch, but the eventual write-back only charges
  ``write_contention_factor`` of its device time (it contends for
  bandwidth, it does not stall the pipeline);
* ``persist`` models the PMDK idiom (store + clwb + sfence): the dirty
  line's write is synchronous and charged in full — this is why the
  paper's write-intensive persistent workloads hurt most.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..fs.ext4dax import FileHandle
from ..kernel.costs import SoftwareCosts
from ..kernel.keyring import Keyring
from ..kernel.mmu import MMU
from ..kernel.tlb import TLB
from ..mem.address import LINE_SIZE, PAGE_SIZE, line_address
from ..mem.controller import MemoryRequest
from ..mem.nvm import NVMDevice
from ..mem.stats import StatsRegistry
from ..secmem.layout import MetadataLayout
from ..fs.permissions import UserDatabase
from .build import MachineBuilder
from .config import MachineConfig
from .histograms import LatencyHistogram
from .results import RunResult

__all__ = ["Machine", "MappedRegion"]

_FENCE_NS = 10.0  # sfence drain
_ADR_DRAIN_NS = 60.0  # clwb completion into the ADR persistence domain


@dataclass
class MappedRegion:
    """One mmap'd range of the process address space."""

    vpn_start: int
    pages: int
    handle: Optional[FileHandle]  # None => anonymous memory
    file_page_start: int = 0

    def contains(self, vpn: int) -> bool:
        return self.vpn_start <= vpn < self.vpn_start + self.pages

    def file_page(self, vpn: int) -> int:
        return self.file_page_start + (vpn - self.vpn_start)


@dataclass
class ProcessContext:
    """One process's address-space state: its own MMU (page table +
    TLB) and mapped regions.  Processes share the caches, the
    controller, and the filesystem — like threads of different programs
    on one socket."""

    pid: int
    mmu: MMU
    regions: List[MappedRegion]
    next_vpn: int = 0x1000


class Machine:
    """One simulated system under one scheme."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        builder: Optional[MachineBuilder] = None,
    ) -> None:
        # All wiring decisions live in the builder (and the SchemeSpec
        # behind it); __init__ only orchestrates component order — the
        # order stats bundles register in, which the golden digests pin.
        if builder is None:
            builder = MachineBuilder.for_config(
                config if config is not None else MachineConfig()
            )
        elif config is not None and config != builder.config:
            raise ValueError("pass either config or a builder, not conflicting both")
        self.config = builder.config
        self.scheme_spec = builder.spec
        self.registry = StatsRegistry()
        self.clock_ns = 0.0

        self.layout = MetadataLayout(data_bytes=self.config.total_memory_bytes)
        device = builder.build_device(self)
        self.controller = builder.build_controller(self, device)
        self.hierarchy = builder.build_hierarchy(self)
        self._processes: Dict[int, ProcessContext] = {}
        self._current_pid = 0
        self._create_process_context(0)

        self.users = UserDatabase()
        self.keyring = Keyring()
        self.mmio = builder.build_mmio(self)
        self.fs = builder.build_filesystem(self)
        self.overlay = builder.build_overlay(self, device)

        # Measurement window: the paper fast-forwards workloads to the
        # post-file-creation point; mark_measurement_start() is that
        # fast-forward boundary.
        self._mark_ns = 0.0
        self._mark_reads = 0
        self._mark_writes = 0

        # Optional per-access latency histogram (attach_histogram()).
        self.latency_histogram: Optional[LatencyHistogram] = None

        # Concurrent-traffic service model (repro.sim.service): when a
        # scheduler attaches shared contention queues, every controller-
        # side access charges queueing delay through them.  None (the
        # default) is the exact seed single-stream path.
        self.service_queues = None
        self.stream_id = 0

        # Persist-path model: fixed ADR constant or an explicit WPQ.
        self.wpq = builder.build_wpq(self)

        # Anonymous (non-PMEM) physical pages come from below the PMEM
        # region; shadow page-cache copies also live there.
        self._next_anon_pfn = 0x100
        self._anon_limit_pfn = self.config.pmem_base // PAGE_SIZE
        self._shadow_pfns: Dict[Tuple[int, int], int] = {}

        # Crash lifecycle wiring (CrashDomain staging, Anubis shadow).
        self._crashed = False
        self.last_crash_report = None
        self.last_recovery_report = None
        builder.attach_crash_support(self, device)

    def controller_config(self):
        return self.config.controller_config()

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------

    _CONTEXT_SWITCH_NS = 1200.0  # trap + scheduler + register state

    def _create_process_context(self, pid: int) -> ProcessContext:
        suffix = "" if pid == 0 else f"_p{pid}"
        mmu = MMU(
            tlb=TLB(stats=self.registry.create(f"tlb{suffix}")),
            stats=self.registry.create(f"mmu{suffix}"),
        )
        mmu.set_fault_handler(self._handle_fault)
        context = ProcessContext(pid=pid, mmu=mmu, regions=[])
        self._processes[pid] = context
        return context

    def create_process(self, pid: int) -> int:
        """Create a new process (own page table, TLB, address space)."""
        if pid in self._processes:
            raise ValueError(f"pid {pid} already exists")
        self._create_process_context(pid)
        return pid

    def switch_process(self, pid: int) -> None:
        """Context switch: scheduler cost plus a full TLB flush (the
        model has no ASIDs, matching the paper's era of kernels)."""
        if pid not in self._processes:
            raise ValueError(f"unknown pid {pid}")
        if pid == self._current_pid:
            return
        self._processes[self._current_pid].mmu.tlb.flush()
        self._current_pid = pid
        self.clock_ns += self._CONTEXT_SWITCH_NS

    @property
    def current_pid(self) -> int:
        return self._current_pid

    @property
    def _process(self) -> ProcessContext:
        return self._processes[self._current_pid]

    @property
    def mmu(self) -> MMU:
        return self._process.mmu

    @property
    def _regions(self) -> List[MappedRegion]:
        return self._process.regions

    @property
    def device(self) -> NVMDevice:
        return self.controller.device

    @property
    def costs(self) -> SoftwareCosts:
        return self.config.software_costs

    # ------------------------------------------------------------------
    # Users and files
    # ------------------------------------------------------------------

    def add_user(self, uid: int, gid: int, passphrase: str, groups=frozenset()):
        """Create a user and log them in (derive their FEKEK)."""
        user = self.users.add_user(uid, gid, groups)
        self.keyring.login(uid, passphrase)
        return user

    def create_file(self, path: str, uid: int, mode: int = 0o644, encrypted: bool = False) -> FileHandle:
        handle, latency = self.fs.create(path, uid, mode=mode, encrypted=encrypted)
        self.clock_ns += latency
        return handle

    def open_file(self, path: str, uid: int, write: bool = False) -> FileHandle:
        handle, latency = self.fs.open(path, uid, write=write)
        self.clock_ns += latency
        return handle

    def unlink(self, path: str, uid: int) -> None:
        self.clock_ns += self.fs.unlink(path, uid)

    def chmod(self, path: str, uid: int, mode: int) -> None:
        self.fs.chmod(path, uid, mode)
        self.clock_ns += self.costs.syscall_ns

    def mmap(self, handle: FileHandle, pages: int, file_page_start: int = 0) -> int:
        """Map ``pages`` of an open file; returns the base virtual address."""
        if pages <= 0:
            raise ValueError("pages must be positive")
        process = self._process
        region = MappedRegion(
            vpn_start=process.next_vpn,
            pages=pages,
            handle=handle,
            file_page_start=file_page_start,
        )
        process.regions.append(region)
        process.next_vpn += pages + 8  # guard gap
        self.clock_ns += self.costs.syscall_ns
        return region.vpn_start * PAGE_SIZE

    def mmap_anonymous(self, pages: int) -> int:
        process = self._process
        region = MappedRegion(vpn_start=process.next_vpn, pages=pages, handle=None)
        process.regions.append(region)
        process.next_vpn += pages + 8
        self.clock_ns += self.costs.syscall_ns
        return region.vpn_start * PAGE_SIZE

    def munmap(self, base_vaddr: int) -> None:
        """Unmap the region starting at ``base_vaddr``: PTEs dropped,
        TLB shot down.  File contents persist (it is a DAX mapping, not
        the file); a fresh mmap sees them again."""
        vpn = base_vaddr // PAGE_SIZE
        process = self._process
        for index, region in enumerate(process.regions):
            if region.vpn_start == vpn:
                for mapped_vpn in range(region.vpn_start, region.vpn_start + region.pages):
                    process.mmu.page_table.unmap(mapped_vpn)
                    process.mmu.invalidate(mapped_vpn)
                process.regions.pop(index)
                self.clock_ns += self.costs.syscall_ns
                return
        raise ValueError(f"no mapping starts at {base_vaddr:#x}")

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------

    def _region_for(self, vpn: int) -> Optional[MappedRegion]:
        for region in self._regions:
            if region.contains(vpn):
                return region
        return None

    def _alloc_anon_pfn(self) -> int:
        if self._next_anon_pfn >= self._anon_limit_pfn:
            raise MemoryError("anonymous memory exhausted")
        pfn = self._next_anon_pfn
        self._next_anon_pfn += 1
        return pfn

    def _handle_fault(self, vpn: int, is_write: bool) -> float:
        region = self._region_for(vpn)
        if region is None:
            from ..kernel.page_table import PageFault

            raise PageFault(vpn, is_write)
        if region.handle is None:
            pfn = self._alloc_anon_pfn()
            self.mmu.page_table.map(vpn, pfn, df=False)
            return self.costs.minor_fault_ns

        file_page = region.file_page(vpn)
        if self.scheme_spec.uses_page_cache:
            # Non-DAX: the mapping points at the page-cache shadow copy;
            # residency (and its cost) is charged per access.
            key = (region.handle.inode.i_ino, file_page)
            pfn = self._shadow_pfns.get(key)
            if pfn is None:
                pfn = self._alloc_anon_pfn()
                self._shadow_pfns[key] = pfn
            # Make sure the file page exists on the device too.
            if region.handle.inode.extents.get(file_page) is None:
                dev_pfn, _, _ = self.fs.fault_in(region.handle, file_page)
            self.mmu.page_table.map(vpn, pfn, df=False)
            return self.costs.minor_fault_ns

        pfn, df, latency = self.fs.fault_in(region.handle, file_page)
        self.mmu.page_table.map(vpn, pfn, df=df)
        return latency

    # ------------------------------------------------------------------
    # Timing access path
    # ------------------------------------------------------------------

    def compute(self, ns: float) -> None:
        """Model CPU work between memory operations."""
        self.clock_ns += ns

    def fence(self) -> None:
        self.clock_ns += _FENCE_NS

    def _check_alive(self) -> None:
        """A crashed machine has no power: every access until
        ``reboot()`` is a modelling error, not a zero-latency no-op."""
        if self._crashed:
            raise RuntimeError(
                "machine is crashed; reboot() before issuing accesses"
            )

    def load(self, vaddr: int, size: int = 8) -> None:
        self._check_alive()
        self._access_range(vaddr, size, is_write=False)

    def store(self, vaddr: int, size: int = 8) -> None:
        self._check_alive()
        self._access_range(vaddr, size, is_write=True)

    def persist(self, vaddr: int, size: int = 8) -> None:
        """store + clwb + sfence over the byte range (the PMDK idiom)."""
        self._check_alive()
        self._access_range(vaddr, size, is_write=True)
        for line in self._lines_of(vaddr, size):
            self._flush_line(line)
        self.fence()

    def _lines_of(self, vaddr: int, size: int) -> range:
        if size <= 0:
            raise ValueError("size must be positive")
        first = line_address(vaddr)
        last = line_address(vaddr + size - 1)
        return range(first, last + LINE_SIZE, LINE_SIZE)

    def _access_range(self, vaddr: int, size: int, is_write: bool) -> None:
        # Fast path: the overwhelmingly common case is a small access
        # that stays inside one cache line — skip the range machinery.
        first = line_address(vaddr)
        if size <= 1 or line_address(vaddr + size - 1) == first:
            if size <= 0:
                raise ValueError("size must be positive")
            self._access_line(first, is_write)
            return
        for line_vaddr in self._lines_of(vaddr, size):
            self._access_line(line_vaddr, is_write)

    def attach_histogram(self, name: str = "access_latency") -> LatencyHistogram:
        """Start recording one latency sample per line access."""
        self.latency_histogram = LatencyHistogram(name=name)
        return self.latency_histogram

    def attach_service_queues(self, queues, stream_id: int = 0) -> None:
        """Join this machine to a shared-contention service model.

        ``queues`` carries the memory-controller queue and the OTT-port
        queue every stream of one service run shares
        (:class:`repro.sim.service.ServiceQueues`).  Once attached, the
        machine charges queueing delay for controller-side accesses; a
        lone attached stream charges exactly zero extra (see
        :class:`~repro.mem.controller.ServiceQueue`), so single-stream
        service runs remain bit-identical to the seed path.
        """
        self.service_queues = queues
        self.stream_id = stream_id

    def _ott_lookup_count(self) -> int:
        """Cumulative OTT lookups (hits + misses) the controller made."""
        ott = getattr(self.controller, "ott", None)
        if ott is None:
            return 0
        return ott.stats.get("hits") + ott.stats.get("misses")

    def _controller_access(self, request: MemoryRequest, factor: float = 1.0) -> None:
        """One controller-side access, charged to the clock.

        Without service queues this is exactly ``clock += access() *
        factor`` — the seed path.  With queues attached, the access
        additionally waits for the shared memory-controller queue (held
        for precisely the latency charged here) and for the OTT port
        (held for the lookup time of each OTT probe the access made,
        capped at the access's own charge so the port is never busier
        than the access).  Waits accumulate onto the clock; the busy
        windows end at or before the stream's post-access clock, so a
        stream never queues behind itself.
        """
        queues = self.service_queues
        if queues is None:
            self.clock_ns += self.controller.access(request) * factor
            return
        arrival = self.clock_ns
        lookups_before = self._ott_lookup_count()
        charged = self.controller.access(request) * factor
        wait = queues.mc.serve(arrival, charged)
        lookups = self._ott_lookup_count() - lookups_before
        if lookups:
            lookup_ns = self.controller.ott.lookup_latency_ns * factor
            port_budget = charged
            port_arrival = arrival + wait
            for _ in range(lookups):
                service = lookup_ns if lookup_ns <= port_budget else port_budget
                port_wait = queues.ott.serve(port_arrival, service)
                wait += port_wait
                port_arrival += port_wait + service
                port_budget -= service
        self.clock_ns += wait + charged

    def _access_line(self, line_vaddr: int, is_write: bool) -> None:
        access_start_ns = self.clock_ns
        translation = self.mmu.translate(line_vaddr, is_write)
        self.clock_ns += translation.latency_ns

        if self.overlay is not None:
            region = self._region_for(line_vaddr // PAGE_SIZE)
            if region is not None and region.handle is not None:
                inode = region.handle.inode
                file_page = region.file_page(line_vaddr // PAGE_SIZE)
                dev_pfn = inode.extents.get(file_page)
                if dev_pfn is not None:
                    self.clock_ns += self.overlay.access_page(
                        inode.i_ino, file_page, dev_pfn * PAGE_SIZE, is_write
                    )

        outcome = self.hierarchy.access(translation.paddr, is_write)
        self.clock_ns += outcome.latency_ns
        if outcome.miss_addr is not None:
            # Fill (read or read-for-ownership) from memory.
            self._controller_access(
                MemoryRequest(addr=outcome.miss_addr, is_write=False)
            )
        for wb_addr in outcome.writeback_addrs:
            self._controller_access(
                MemoryRequest(addr=wb_addr, is_write=True),
                factor=self.config.write_contention_factor,
            )
        if self.latency_histogram is not None:
            self.latency_histogram.record(self.clock_ns - access_start_ns)

    def _flush_line(self, line_vaddr: int) -> None:
        """clwb one line.

        ADR semantics: the flush completes once the line reaches the
        memory controller's persistence domain (write-pending queue), not
        the PCM array — so the pipeline pays a fixed drain latency while
        the array write (data + its security-metadata work) is charged at
        the bandwidth-contention factor like any posted write.
        """
        translation = self.mmu.translate(line_vaddr, is_write=False)
        self.clock_ns += translation.latency_ns
        if self.hierarchy.flush_line(translation.paddr, invalidate=False):
            if self.wpq is not None:
                self.clock_ns += self.wpq.accept(self.clock_ns)
            else:
                self.clock_ns += _ADR_DRAIN_NS
            self._controller_access(
                MemoryRequest(addr=translation.paddr, is_write=True, persist=True),
                factor=self.config.write_contention_factor,
            )

    # ------------------------------------------------------------------
    # Functional access path (write-through; requires functional=True)
    # ------------------------------------------------------------------

    def store_bytes(self, vaddr: int, data: bytes) -> None:
        """Write real bytes through the controller's crypto.

        Line-granularity read-modify-write; bypasses the cache hierarchy
        (functional mode is about data correctness, not timing fidelity).
        """
        self._check_alive()
        offset = 0
        while offset < len(data):
            line_vaddr = line_address(vaddr + offset)
            within = (vaddr + offset) - line_vaddr
            chunk = data[offset : offset + (LINE_SIZE - within)]
            translation = self.mmu.translate(line_vaddr, is_write=True)
            self.clock_ns += translation.latency_ns
            current = bytearray(self.controller.read_data(translation.paddr))
            current[within : within + len(chunk)] = chunk
            latency = self.controller.access(
                MemoryRequest(addr=translation.paddr, is_write=True, data=bytes(current))
            )
            self.clock_ns += latency
            offset += len(chunk)

    def load_bytes(self, vaddr: int, size: int) -> bytes:
        self._check_alive()
        result = bytearray()
        offset = 0
        while offset < size:
            line_vaddr = line_address(vaddr + offset)
            within = (vaddr + offset) - line_vaddr
            take = min(LINE_SIZE - within, size - offset)
            translation = self.mmu.translate(line_vaddr, is_write=False)
            self.clock_ns += translation.latency_ns
            line = self.controller.read_data(translation.paddr)
            result.extend(line[within : within + take])
            offset += take
        return bytes(result)

    def copy_file(self, src_path: str, dst_path: str, uid: int) -> int:
        """Kernel file copy (§VI "Copying or Moving Files Within Same
        Device"): read each allocated page through the source mapping,
        write it through a fresh mapping of the destination file.

        The destination pages get their own FECBs at fault time, so the
        copy is re-sealed under the new location's counters — spatial
        uniqueness holds and no pad is ever replayed.  Returns the number
        of bytes copied.  Functional mode only.
        """
        if not self.config.functional:
            raise RuntimeError("copy_file requires functional=True")
        src = self.open_file(src_path, uid=uid)
        encrypted = src.inode.encrypted
        if not self.fs.exists(dst_path):
            self.create_file(dst_path, uid=uid, mode=src.inode.mode, encrypted=encrypted)
        dst = self.open_file(dst_path, uid=uid, write=True)
        copied = 0
        for file_page in sorted(src.inode.extents):
            src_base = self.mmap(src, pages=1, file_page_start=file_page)
            dst_base = self.mmap(dst, pages=1, file_page_start=file_page)
            data = self.load_bytes(src_base, PAGE_SIZE)
            self.store_bytes(dst_base, data)
            copied += PAGE_SIZE
        return copied

    # ------------------------------------------------------------------
    # Crash / reboot lifecycle
    # ------------------------------------------------------------------

    def crash(self, plan=None):
        """Power-fail now: volatile state is lost, the in-flight write
        tail is resolved per ``plan`` (drained / dropped / torn), media
        bit flips land.  Returns a
        :class:`~repro.faults.lifecycle.CrashReport`."""
        from ..faults.lifecycle import crash_machine
        from ..faults.plan import FaultPlan

        if self._crashed:
            raise RuntimeError("machine already crashed; reboot() first")
        report = crash_machine(self, plan or FaultPlan())
        self._crashed = True
        self.last_crash_report = report
        return report

    def reboot(self):
        """Come back up through the real recovery paths (OTT region
        scan, Osiris trial decryption, Merkle rebuild).  Returns a
        :class:`~repro.faults.lifecycle.RecoveryReport`; recovery
        latency is charged to the machine clock."""
        from ..faults.lifecycle import reboot_machine

        if not self._crashed:
            raise RuntimeError("reboot() without a preceding crash()")
        report = reboot_machine(self)
        self._crashed = False
        self.last_recovery_report = report
        return report

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def elapsed_ns(self) -> float:
        return self.clock_ns

    def mark_measurement_start(self) -> None:
        """Begin the measured window (post-setup fast-forward point).

        ``result`` then reports elapsed time and NVM traffic relative to
        this mark, mirroring the paper's "fast forward all applications
        to the post-file-creation point" methodology (§V).
        """
        self._mark_ns = self.clock_ns
        self._mark_reads = self.device.read_count
        self._mark_writes = self.device.write_count

    def execute_trace(self, trace, batch: bool = False) -> None:
        """Re-execute a recorded trace on this machine.

        ``batch=True`` lowers the trace to flat micro-op arrays and runs
        the vectorized interpreter (:mod:`repro.sim.batch`); machines
        outside the interpreter's envelope fall back to the reference
        replay.  Results are bit-identical either way.
        """
        if batch:
            # Imported lazily: batch imports trace which imports this
            # module, so a top-level import would be circular.
            from .batch import compile_trace, execute_compiled

            execute_compiled(compile_trace(trace), self)
        else:
            from .trace import replay

            replay(trace, self)

    def result(self, workload: str) -> RunResult:
        return RunResult(
            workload=workload,
            scheme=self.config.scheme.value,
            elapsed_ns=self.clock_ns - self._mark_ns,
            nvm_reads=self.device.read_count - self._mark_reads,
            nvm_writes=self.device.write_count - self._mark_writes,
            stats=dict(self.registry.snapshot()),
        )
