"""Concurrent-traffic service model: N streams through shared queues.

The paper evaluates every scheme under one closed-loop access stream;
this module is the production-shaped counterpart.  A *service run*
takes N per-stream workloads, captures each into a trace, gives each
stream its own :class:`~repro.sim.machine.Machine` (own MMU, caches,
filesystem — like processes on separate sockets sharing one DIMM), and
interleaves the streams in virtual time through two shared contention
points:

* the **memory-controller queue** (:class:`MemoryControllerQueue`) —
  every miss fill, write-back, and persist-path write holds it for
  exactly the latency the machine charges for that access;
* the **OTT port queue** (:class:`OTTPortQueue`) — each file-key
  lookup a controller access performs holds the single 20-cycle
  lookup port (capped at the access's own charged latency).

The scheduler is event-driven over virtual time: at each step the
stream with the earliest ready time runs its next trace op to
completion (ties broken by stream id, so interleavings are total-order
deterministic).  Two arrival policies gate *when* a measured op is
ready:

* :class:`ClosedLoop` — a per-stream MLP window of ``window``
  outstanding requests: op ``i`` issues when op ``i - window``
  completes.  ``window=1`` is the classic think-time-free closed loop
  the paper's single-stream runs correspond to.
* :class:`OpenLoop` — a deterministic seeded inter-arrival process
  (exponential or fixed gaps).  Arrivals do not wait for completions,
  so offered load is an input and queueing delay shows up in the
  response times — this is what load-vs-percentile curves sweep.

Bit-identity contract: a 1-stream service run executes the exact seed
per-access semantics.  The shared queues charge zero wait to a lone
stream (each access's busy window ends at or before the clock the
stream leaves the access with), and ``0.0 + x == x`` exactly, so all
golden digests reproduce bit-for-bit.  See ``docs/SERVICE.md``.
"""

from __future__ import annotations

import hashlib
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..core.ott import OTTPortQueue
from ..mem.controller import MemoryControllerQueue
from ..mem.stats import StatsRegistry
from .config import MachineConfig
from .histograms import LatencyHistogram
from .machine import Machine
from .results import RunResult
from .trace import LOAD, MARK, PERSIST, STORE, MultiStreamTrace, Trace, TraceCursor

__all__ = [
    "ClosedLoop",
    "OpenLoop",
    "ServiceQueues",
    "StreamServiceResult",
    "ServiceResult",
    "capture_streams",
    "run_service",
]

#: Ops whose response times are sampled (once measurement has started).
_MEASURED_OPS = frozenset((LOAD, STORE, PERSIST))


@dataclass(frozen=True)
class ClosedLoop:
    """Per-stream MLP window: at most ``window`` measured ops in flight.

    Op ``i`` issues when op ``i - window`` completes, so each sample is
    the stream's cycle time at that window depth.  ``window=1`` makes a
    1-stream run identical to the classic sequential replay.
    """

    window: int = 1

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")

    def describe(self) -> str:
        return f"closed(window={self.window})"


@dataclass(frozen=True)
class OpenLoop:
    """Seeded deterministic inter-arrival process (offered-load input).

    Each stream draws its own gap sequence from
    ``random.Random(seed * 1000003 + sid)``, so the arrival process is
    reproducible per (seed, stream) and independent of the other
    streams.  ``exponential`` draws scale linearly with
    ``interarrival_ns`` for a fixed seed — sweeping load re-uses the
    same underlying uniform sequence, which keeps load curves smooth.
    """

    interarrival_ns: float
    seed: int = 0xA221
    distribution: str = "exponential"

    def __post_init__(self) -> None:
        if not self.interarrival_ns > 0.0:
            raise ValueError(
                f"interarrival_ns must be positive, got {self.interarrival_ns!r}"
            )
        if self.distribution not in ("exponential", "fixed"):
            raise ValueError(
                f"distribution must be 'exponential' or 'fixed', "
                f"got {self.distribution!r}"
            )

    def describe(self) -> str:
        return (
            f"open(interarrival={self.interarrival_ns:g}ns, "
            f"{self.distribution}, seed={self.seed:#x})"
        )


ArrivalPolicy = Union[ClosedLoop, OpenLoop]


class ServiceQueues:
    """The shared contention points of one service run.

    One instance is attached to every stream's machine
    (:meth:`Machine.attach_service_queues`); the queue stat bundles
    register in the run's service-level registry so the
    ``stats-registered`` lint rule covers them like any machine
    component.
    """

    def __init__(self, registry: Optional[StatsRegistry] = None) -> None:
        self.registry = registry if registry is not None else StatsRegistry()
        self.mc = MemoryControllerQueue(stats=self.registry.create("mc_queue"))
        self.ott = OTTPortQueue(stats=self.registry.create("ott_queue"))


class _Stream:
    """One stream's scheduling state."""

    __slots__ = (
        "sid", "workload_name", "ops", "index", "machine", "cursor",
        "measuring", "samples", "histogram", "stats", "completions",
        "rng", "next_arrival_ns", "mark_ns", "end_ns",
    )

    def __init__(
        self,
        sid: int,
        trace: Trace,
        machine: Machine,
        policy: ArrivalPolicy,
        registry: StatsRegistry,
    ) -> None:
        self.sid = sid
        self.workload_name = trace.name
        self.ops = trace.ops
        self.index = 0
        self.machine = machine
        self.cursor = TraceCursor(machine)
        self.measuring = False
        self.samples: List[float] = []
        self.histogram = LatencyHistogram(name=f"stream{sid}")
        self.stats = registry.create(f"stream{sid}")
        if isinstance(policy, ClosedLoop):
            self.completions: Optional[deque] = deque(maxlen=policy.window)
            self.rng: Optional[random.Random] = None
        else:
            self.completions = None
            self.rng = random.Random(policy.seed * 1000003 + sid)
        self.next_arrival_ns = 0.0
        self.mark_ns = 0.0
        self.end_ns = 0.0

    def done(self) -> bool:
        return self.index >= len(self.ops)

    def _gap_ns(self, policy: OpenLoop) -> float:
        if policy.distribution == "fixed":
            return policy.interarrival_ns
        assert self.rng is not None
        return self.rng.expovariate(1.0 / policy.interarrival_ns)

    def issue_ns(self) -> float:
        """When the next op may issue (its arrival, for measured ops).

        Unmeasured ops (setup preamble, compute think time, file
        management) issue as soon as the stream's clock reaches them.
        """
        clock = self.machine.clock_ns
        op = self.ops[self.index]
        if not self.measuring or op.op not in _MEASURED_OPS:
            return clock
        if self.completions is not None:  # closed loop
            if len(self.completions) == self.completions.maxlen:
                # The window slot opened when op (i - window) completed;
                # that completion is the op's logical arrival time.
                return self.completions[0]
            return clock
        return self.next_arrival_ns  # open loop: may trail the clock

    def ready_ns(self) -> float:
        issue = self.issue_ns()
        clock = self.machine.clock_ns
        return issue if issue > clock else clock


@dataclass
class StreamServiceResult:
    """One stream's view of a service run."""

    sid: int
    workload: str
    run: RunResult
    samples: List[float] = field(repr=False)
    histogram: LatencyHistogram = field(repr=False)
    measured_ops: int = 0
    mark_ns: float = 0.0
    end_ns: float = 0.0

    def to_dict(self) -> dict:
        return {
            "sid": self.sid,
            "workload": self.workload,
            "run": self.run.to_dict(),
            "measured_ops": self.measured_ops,
            "mark_ns": self.mark_ns,
            "end_ns": self.end_ns,
            "histogram": self.histogram.as_dict(),
        }


@dataclass
class ServiceResult:
    """Everything one concurrent service run produced."""

    name: str
    scheme: str
    policy: str
    streams: List[StreamServiceResult]
    mc_queue: dict
    ott_queue: dict
    interleave_digest: str
    service_stats: Dict[str, int]

    @property
    def samples(self) -> List[float]:
        """All streams' response-time samples, stream-major order."""
        pooled: List[float] = []
        for stream in self.streams:
            pooled.extend(stream.samples)
        return pooled

    @property
    def measured_ops(self) -> int:
        return sum(stream.measured_ops for stream in self.streams)

    @property
    def makespan_ns(self) -> float:
        """Measured-window span: first mark to last completion."""
        marked = [s for s in self.streams if s.measured_ops]
        if not marked:
            return 0.0
        return max(s.end_ns for s in marked) - min(s.mark_ns for s in marked)

    @property
    def throughput_ops_per_s(self) -> float:
        span = self.makespan_ns
        if span <= 0.0:
            return 0.0
        return self.measured_ops / span * 1e9

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "scheme": self.scheme,
            "policy": self.policy,
            "streams": [stream.to_dict() for stream in self.streams],
            "measured_ops": self.measured_ops,
            "makespan_ns": self.makespan_ns,
            "throughput_ops_per_s": self.throughput_ops_per_s,
            "mc_queue": self.mc_queue,
            "ott_queue": self.ott_queue,
            "interleave_digest": self.interleave_digest,
            "service_stats": dict(self.service_stats),
        }


def capture_streams(config: MachineConfig, workloads: Sequence) -> MultiStreamTrace:
    """Capture each workload into one stream of a :class:`MultiStreamTrace`.

    Capture uses a scratch machine per stream purely for address-layout
    mirroring; nothing is executed on it.  Raises when a workload steps
    outside the traceable API (multi-process workloads, direct machine
    surgery) — the service model cannot interleave what it cannot
    capture, and a silent drop would fabricate a lighter mix.
    """
    from .batch import capture_workload

    if not workloads:
        raise ValueError("a service run needs at least one stream")
    streams: List[Trace] = []
    for workload in workloads:
        machine = Machine(config)
        workload.setup(machine)
        trace = capture_workload(machine, workload)
        if trace is None:
            raise ValueError(
                f"workload {workload.name!r} is not capturable; the service "
                "model only runs trace-expressible streams"
            )
        streams.append(trace)
    name = "+".join(w.name for w in workloads)
    return MultiStreamTrace.from_traces(name=name, streams=streams)


def run_service(
    config: MachineConfig,
    workloads: Sequence,
    policy: ArrivalPolicy,
    *,
    registry: Optional[StatsRegistry] = None,
) -> ServiceResult:
    """Run N workload streams concurrently through shared queues.

    Each entry of ``workloads`` must be a *fresh* workload instance (it
    is captured, then its ops replayed on the stream's machine).  The
    returned per-stream :class:`RunResult` for a 1-stream closed-loop
    run is bit-identical to ``run_workload`` under the same config.
    """
    from .batch import capture_workload

    queues = ServiceQueues(registry=registry)
    streams: List[_Stream] = []
    for sid, workload in enumerate(workloads):
        machine = Machine(config)
        machine.attach_service_queues(queues, stream_id=sid)
        workload.setup(machine)
        trace = capture_workload(machine, workload)
        if trace is None:
            raise ValueError(
                f"workload {workload.name!r} is not capturable; the service "
                "model only runs trace-expressible streams"
            )
        streams.append(_Stream(sid, trace, machine, policy, queues.registry))

    digest = hashlib.sha256()
    open_policy = policy if isinstance(policy, OpenLoop) else None

    while True:
        best: Optional[_Stream] = None
        best_key = None
        for stream in streams:
            if stream.done():
                continue
            key = (stream.ready_ns(), stream.sid)
            if best_key is None or key < best_key:
                best, best_key = stream, key
        if best is None:
            break

        op = best.ops[best.index]
        machine = best.machine
        measured = best.measuring and op.op in _MEASURED_OPS
        issue = best.issue_ns() if measured else machine.clock_ns
        if issue > machine.clock_ns:
            # The stream is idle until its request arrives (open loop)
            # or its window opens (closed loop).
            machine.clock_ns = issue
        start = issue if issue < machine.clock_ns else machine.clock_ns

        best.cursor.apply(op)
        completion = machine.clock_ns
        best.stats.add("ops")
        digest.update(
            f"{best.sid}:{best.index}:{op.op}:{completion!r};".encode()
        )
        best.index += 1

        if measured:
            sample = completion - start
            best.samples.append(sample)
            best.histogram.record(sample)
            best.stats.add("measured_ops")
            best.end_ns = completion
            if best.completions is not None:
                best.completions.append(completion)
            elif open_policy is not None:
                best.next_arrival_ns = start + best._gap_ns(open_policy)
        elif op.op == MARK:
            best.measuring = True
            best.mark_ns = completion
            best.end_ns = completion
            if open_policy is not None:
                best.next_arrival_ns = completion + best._gap_ns(open_policy)

    results = [
        StreamServiceResult(
            sid=stream.sid,
            workload=stream.workload_name,
            run=stream.machine.result(stream.workload_name),
            samples=stream.samples,
            histogram=stream.histogram,
            measured_ops=stream.stats.get("measured_ops"),
            mark_ns=stream.mark_ns,
            end_ns=stream.end_ns,
        )
        for stream in streams
    ]
    return ServiceResult(
        name="+".join(stream.workload_name for stream in streams),
        scheme=config.scheme.value,
        policy=policy.describe(),
        streams=results,
        mc_queue=queues.mc.summary(),
        ott_queue=queues.ott.summary(),
        interleave_digest=digest.hexdigest(),
        service_stats=dict(queues.registry.snapshot()),
    )
