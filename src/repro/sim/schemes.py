"""Declarative scheme registry: every comparison column is one entry.

The paper's figures compare *schemes* — named machine configurations
(ext4-dax, software encryption, baseline security, FsEncr, and the
crash-matrix variants).  Historically each consumer re-hardcoded its
scheme tuples; this module makes the column set declarative instead:

* a :class:`SchemeSpec` is a frozen value object carrying everything
  construction and presentation need — which controller family to
  build, whether the machine gets a page-cache overlay or an MMIO
  channel, pinned persist-path/recovery wiring, a display label, and
  where (if anywhere) the scheme sits in the crash-sweep matrix;
* the registry maps canonical names ("fsencr", "fsencr+anubis", ...)
  to specs.  Figure drivers, ``sweep_matrix``, ``exec.CellSpec``, and
  the CLI all resolve scheme *names* here, so adding a column is one
  ``register_scheme`` call in this file — no five-layer grep-and-edit.

Construction itself lives in :mod:`repro.sim.build` (the
``builder-owns-wiring`` lint contract); a spec only *describes*.

Variant semantics: ``model_wpq`` is pinned both ways when set (the
"+wpq" column *is* the explicit persist-path model; ``None`` inherits
the base config's knob).  ``anubis_recovery`` is part of a column's
identity and always pinned — the plain "fsencr" column means
Osiris-only recovery even on an Anubis-enabled base config.
``partitioned_metadata_cache`` is a cache-geometry opt-in: a variant
can turn it on, but base specs inherit whatever geometry the config
carries (so a partitioned Figure-15 cell compares both schemes under
the same cache organisation).

Candidate future columns from related work (PAPERS.md): FOX's hardware
file-auditing engine and KucoFS's kernel/user collaborative protection
path — each would be one ``register_scheme`` call plus a controller
factory in ``build.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple, Union

from .config import MachineConfig, Scheme

__all__ = [
    "SchemeRef",
    "SchemeSpec",
    "register_scheme",
    "canonical_scheme_name",
    "get_scheme",
    "scheme_names",
    "all_specs",
    "crash_matrix_names",
    "comparison_pair",
    "motivation_pair",
    "spec_for_config",
]

#: Controller families ``MachineBuilder`` knows how to construct.
CONTROLLER_KINDS = ("plain", "baseline-secure", "fsencr")

#: Anything the registry can resolve: a canonical name, a base
#: :class:`Scheme` member, or a :class:`SchemeSpec` itself.
SchemeRef = Union[str, Scheme, "SchemeSpec"]


@dataclass(frozen=True)
class SchemeSpec:
    """One comparison column, by value.

    ``configure`` projects the spec onto a base :class:`MachineConfig`;
    structural traits (``controller``/``mmio``/``overlay_encrypted`` and
    the :class:`Scheme` trio of DAX/page-cache/file-encryption
    properties) drive :class:`~repro.sim.build.MachineBuilder`.
    """

    name: str                       # canonical registry key
    scheme: Scheme                  # base enum (config identity, run labels)
    label: str                      # human-readable column label
    controller: str                 # factory family: plain | baseline-secure | fsencr
    description: str = ""
    #: FsEncr exposes the kernel-facing MMIO management channel.
    mmio: bool = False
    #: Page-cache schemes only: does the overlay actually encrypt?
    overlay_encrypted: bool = False
    #: None inherits the base config's WPQ model; True/False pins it.
    model_wpq: Optional[bool] = None
    #: Anubis shadow-table recovery wiring (always pinned — identity).
    anubis_recovery: bool = False
    #: Opt the metadata cache into per-kind partitioning.
    partitioned_metadata_cache: bool = False
    #: Column position in the crash-sweep matrix; None = not a column.
    crash_matrix_order: Optional[int] = None
    #: Figure-default role: "baseline" | "contribution" |
    #: "plain-reference" | "software-reference".
    role: Optional[str] = None
    #: Final config hook (e.g. size the Anubis shadow to the cache).
    config_transform: Optional[Callable[[MachineConfig], MachineConfig]] = None

    def __post_init__(self) -> None:
        if self.controller not in CONTROLLER_KINDS:
            raise ValueError(
                f"unknown controller kind {self.controller!r} "
                f"(one of {', '.join(CONTROLLER_KINDS)})"
            )

    # Structural traits delegate to the enum so config-derived and
    # spec-derived answers can never disagree.
    @property
    def uses_dax(self) -> bool:
        return self.scheme.uses_dax

    @property
    def uses_page_cache(self) -> bool:
        return self.scheme.uses_page_cache

    @property
    def has_file_encryption(self) -> bool:
        return self.scheme.has_file_encryption

    def configure(self, base: Optional[MachineConfig] = None) -> MachineConfig:
        """Project this column onto ``base`` (default machine if None)."""
        config = (base or MachineConfig()).with_scheme(self.scheme)
        if self.model_wpq is not None and config.model_wpq != self.model_wpq:
            config = config.with_wpq(self.model_wpq)
        if config.anubis_recovery != self.anubis_recovery:
            config = config._replace(anubis_recovery=self.anubis_recovery)
        if self.partitioned_metadata_cache and not config.metadata_cache.partitioned:
            config = config._replace(
                metadata_cache=replace(config.metadata_cache, partitioned=True)
            )
        if self.config_transform is not None:
            config = self.config_transform(config)
        return config


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, SchemeSpec] = {}


def register_scheme(spec: SchemeSpec) -> SchemeSpec:
    """Add one column to the registry; names are unique forever."""
    if spec.name in _REGISTRY:
        raise ValueError(f"scheme {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def canonical_scheme_name(scheme) -> str:
    """The registry key for a name, :class:`Scheme`, or spec.

    String names are the canonical currency (CellSpec schemes tuples,
    payload keys, CLI arguments); enums map to their base column.
    """
    if isinstance(scheme, SchemeSpec):
        return scheme.name
    if isinstance(scheme, Scheme):
        return scheme.value
    key = str(scheme).strip().lower()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown scheme {scheme!r} (registered: {known})")
    return key


def get_scheme(scheme) -> SchemeSpec:
    """Resolve a name/enum/spec to its registered :class:`SchemeSpec`."""
    return _REGISTRY[canonical_scheme_name(scheme)]


def scheme_names() -> Tuple[str, ...]:
    """Every registered column name, sorted."""
    return tuple(sorted(_REGISTRY))


def all_specs() -> Tuple[SchemeSpec, ...]:
    """Every registered spec, in name order."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def crash_matrix_names() -> Tuple[str, ...]:
    """The crash-sweep matrix's scheme columns, in matrix order."""
    ordered = sorted(
        (spec.crash_matrix_order, spec.name)
        for spec in _REGISTRY.values()
        if spec.crash_matrix_order is not None
    )
    return tuple(name for _order, name in ordered)


def _role(role: str) -> str:
    for name in sorted(_REGISTRY):
        if _REGISTRY[name].role == role:
            return name
    raise LookupError(f"no scheme registered with role {role!r}")


def comparison_pair() -> Tuple[str, str]:
    """(baseline, contribution) — the default pair of Figures 8-15."""
    return (_role("baseline"), _role("contribution"))


def motivation_pair() -> Tuple[str, str]:
    """(plain reference, software encryption) — Figure 3's pair."""
    return (_role("plain-reference"), _role("software-reference"))


def spec_for_config(config: MachineConfig) -> SchemeSpec:
    """The registered spec that best describes ``config``.

    Exact variant match when one exists (so labels stay honest), the
    scheme's base spec otherwise.  Builder structure only depends on
    traits every variant of a scheme shares; wiring knobs (WPQ, Anubis,
    partitioning) are read off the config itself.
    """
    candidates = [
        spec
        for spec in _REGISTRY.values()
        if spec.scheme is config.scheme
        and spec.anubis_recovery == config.anubis_recovery
        and (not spec.partitioned_metadata_cache or config.metadata_cache.partitioned)
        and (spec.model_wpq is None or spec.model_wpq == config.model_wpq)
    ]
    if not candidates:
        return _REGISTRY[config.scheme.value]

    def _specificity(spec: SchemeSpec):
        pins = (
            int(spec.anubis_recovery)
            + int(spec.partitioned_metadata_cache)
            + int(spec.model_wpq is not None)
        )
        return (pins, spec.name)

    return max(candidates, key=_specificity)


# ----------------------------------------------------------------------
# The columns (one registration each — this is the extension point)
# ----------------------------------------------------------------------

register_scheme(
    SchemeSpec(
        name="conventional",
        scheme=Scheme.CONVENTIONAL,
        label="Conventional FS (page cache)",
        controller="plain",
        description="Figure 1(a)'s pre-DAX background: page cache, no encryption.",
    )
)

register_scheme(
    SchemeSpec(
        name="ext4dax_plain",
        scheme=Scheme.EXT4DAX_PLAIN,
        label="ext4-dax (no encryption)",
        controller="plain",
        role="plain-reference",
        description="Figure 3's reference: direct access, no encryption anywhere.",
    )
)

register_scheme(
    SchemeSpec(
        name="software_encryption",
        scheme=Scheme.SOFTWARE_ENCRYPTION,
        label="eCryptfs software encryption",
        controller="plain",
        overlay_encrypted=True,
        role="software-reference",
        description="Figure 3's loser: software crypto through the page cache, DAX off.",
    )
)

register_scheme(
    SchemeSpec(
        name="baseline_secure",
        scheme=Scheme.BASELINE_SECURE,
        label="Baseline Security",
        controller="baseline-secure",
        role="baseline",
        crash_matrix_order=1,
        description="Counter-mode memory encryption + BMT, no file layer.",
    )
)

register_scheme(
    SchemeSpec(
        name="fsencr",
        scheme=Scheme.FSENCR,
        label="FsEncr",
        controller="fsencr",
        mmio=True,
        role="contribution",
        crash_matrix_order=0,
        description="The contribution: baseline + hardware filesystem encryption.",
    )
)

register_scheme(
    SchemeSpec(
        name="fsencr+wpq",
        scheme=Scheme.FSENCR,
        label="FsEncr + WPQ persist model",
        controller="fsencr",
        mmio=True,
        model_wpq=True,
        crash_matrix_order=2,
        description="FsEncr with the explicit Write Pending Queue persist path.",
    )
)


def _sized_anubis_shadow(config: MachineConfig) -> MachineConfig:
    """Anubis sizing rule: one shadow slot per metadata-cache line, so
    the shadow can never overflow while mirroring the cache's dirty set."""
    cache = config.metadata_cache
    return config._replace(
        anubis_shadow_lines=max(1, cache.size_bytes // cache.line_size)
    )


register_scheme(
    SchemeSpec(
        name="fsencr+anubis",
        scheme=Scheme.FSENCR,
        label="FsEncr + Anubis shadow recovery",
        controller="fsencr",
        mmio=True,
        anubis_recovery=True,
        crash_matrix_order=3,
        config_transform=_sized_anubis_shadow,
        description=(
            "FsEncr with Anubis shadow-table recovery: extra shadow-region "
            "writes at runtime buy recovery proportional to the metadata "
            "cache, not the memory footprint."
        ),
    )
)

register_scheme(
    SchemeSpec(
        name="fsencr+partitioned",
        scheme=Scheme.FSENCR,
        label="FsEncr + partitioned metadata cache",
        controller="fsencr",
        mmio=True,
        partitioned_metadata_cache=True,
        description=(
            "FsEncr with the metadata cache statically partitioned per "
            "kind (MECB/FECB/Merkle/OTT) — the Figure 15 variant axis."
        ),
    )
)
