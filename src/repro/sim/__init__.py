"""Simulation layer: machine model, configuration, and run records."""

from .config import MachineConfig, Scheme
from .histograms import LatencyHistogram
from .machine import Machine, MappedRegion
from .results import Comparison, ResultTable, RunResult
from .trace import Trace, TraceOp, TraceRecorder, replay

__all__ = [
    "MachineConfig",
    "Scheme",
    "Machine",
    "MappedRegion",
    "LatencyHistogram",
    "RunResult",
    "Comparison",
    "ResultTable",
    "Trace",
    "TraceOp",
    "TraceRecorder",
    "replay",
]
