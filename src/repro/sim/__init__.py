"""Simulation layer: machine model, configuration, and run records."""

from .build import MachineBuilder, build_machine
from .config import MachineConfig, Scheme
from .histograms import LatencyHistogram
from .machine import Machine, MappedRegion
from .results import Comparison, ResultTable, RunResult, run_provenance
from .schemes import (
    SchemeSpec,
    canonical_scheme_name,
    get_scheme,
    register_scheme,
    scheme_names,
)
from .batch import (
    BatchRunner,
    CompiledTrace,
    capture_workload,
    compile_trace,
    execute_compiled,
    run_workload_batch,
)
from .trace import Trace, TraceOp, TraceRecorder, replay, resolve_mmap_handle

__all__ = [
    "MachineConfig",
    "Scheme",
    "SchemeSpec",
    "MachineBuilder",
    "build_machine",
    "canonical_scheme_name",
    "get_scheme",
    "register_scheme",
    "scheme_names",
    "Machine",
    "MappedRegion",
    "LatencyHistogram",
    "RunResult",
    "Comparison",
    "ResultTable",
    "run_provenance",
    "Trace",
    "TraceOp",
    "TraceRecorder",
    "replay",
    "resolve_mmap_handle",
    "BatchRunner",
    "CompiledTrace",
    "capture_workload",
    "compile_trace",
    "execute_compiled",
    "run_workload_batch",
]
