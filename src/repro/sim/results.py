"""Run records and the normalisation the paper's figures apply.

Every benchmark run produces a :class:`RunResult`; figure harnesses pair
a run with its baseline run and derive the three series the paper plots
everywhere: slowdown, normalized NVM writes, normalized NVM reads.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

__all__ = ["RunResult", "Comparison", "ResultTable", "run_provenance"]


def run_provenance(runner) -> Dict:
    """The ``extra`` block every saved-results JSON carries: one
    ``"runner"`` key holding the runner's stats plus, once a grid has
    run, the per-cell :class:`GridReport` (attempts, outcomes,
    quarantined failures).

    Everything nests under ``"runner"`` deliberately — consumers that
    diff two result files for payload equality already pop that one key
    (CI does exactly this for its cold-vs-warm check), and the report
    must ride inside it rather than invent a second volatile top-level
    key they would each have to learn about.
    """
    block = dict(runner.last_stats.to_dict())
    report = getattr(runner, "last_report", None)
    if report is not None:
        block["grid_report"] = report.to_dict()
    return {"runner": block}


@dataclass
class RunResult:
    """One (workload, scheme) execution."""

    workload: str
    scheme: str
    elapsed_ns: float
    nvm_reads: int
    nvm_writes: int
    stats: Dict[str, float] = field(default_factory=dict)

    def stat(self, key: str) -> float:
        """Strict stats lookup: raises on an unknown key.

        ``stats.get(key, 0)`` silently reads 0 when a counter is renamed
        or never registered, which turns a broken benchmark into a
        plausible-looking figure.  Benchmark-visible counters are
        eagerly declared by the controllers, so "absent" always means
        "misspelled or wired to the wrong scheme" — fail loudly.
        """
        try:
            return self.stats[key]
        except KeyError:
            prefix = key.rsplit(".", 1)[0]
            nearby = sorted(k for k in self.stats if k.startswith(prefix + "."))
            hint = f"; keys under {prefix!r}: {', '.join(nearby)}" if nearby else ""
            raise KeyError(
                f"unknown stat {key!r} for {self.workload}/{self.scheme}{hint}"
            ) from None

    def to_dict(self) -> Dict:
        return {
            "workload": self.workload,
            "scheme": self.scheme,
            "elapsed_ns": self.elapsed_ns,
            "nvm_reads": self.nvm_reads,
            "nvm_writes": self.nvm_writes,
            "stats": self.stats,
        }

    @classmethod
    def from_dict(cls, raw: Dict) -> "RunResult":
        return cls(
            workload=raw["workload"],
            scheme=raw["scheme"],
            elapsed_ns=raw["elapsed_ns"],
            nvm_reads=raw["nvm_reads"],
            nvm_writes=raw["nvm_writes"],
            stats=dict(raw.get("stats", {})),
        )


@dataclass(frozen=True)
class Comparison:
    """A run normalised to its baseline — one bar in a paper figure."""

    workload: str
    scheme: str
    slowdown: float
    normalized_writes: float
    normalized_reads: float

    @property
    def overhead_percent(self) -> float:
        return (self.slowdown - 1.0) * 100.0

    @staticmethod
    def of(run: RunResult, baseline: RunResult) -> "Comparison":
        if run.workload != baseline.workload:
            raise ValueError(
                f"comparing different workloads: {run.workload} vs {baseline.workload}"
            )

        def ratio(a: float, b: float) -> float:
            if b == 0:
                return 0.0 if a == 0 else float("inf")
            return a / b

        return Comparison(
            workload=run.workload,
            scheme=run.scheme,
            slowdown=ratio(run.elapsed_ns, baseline.elapsed_ns),
            normalized_writes=ratio(run.nvm_writes, baseline.nvm_writes),
            normalized_reads=ratio(run.nvm_reads, baseline.nvm_reads),
        )


class ResultTable:
    """Accumulates comparisons and renders the paper-style text table."""

    def __init__(self, title: str) -> None:
        self.title = title
        self.rows: List[Comparison] = []

    def add(self, comparison: Comparison) -> None:
        self.rows.append(comparison)

    def geometric_mean(self, attr: str = "slowdown") -> float:
        values = [getattr(row, attr) for row in self.rows]
        finite = [v for v in values if v > 0 and v != float("inf")]
        if not finite:
            return 0.0
        product = 1.0
        for value in finite:
            product *= value
        return product ** (1.0 / len(finite))

    def mean(self, attr: str = "slowdown") -> float:
        values = [getattr(row, attr) for row in self.rows]
        return sum(values) / len(values) if values else 0.0

    def render(self) -> str:
        header = f"{'workload':<18}{'scheme':<22}{'slowdown':>10}{'writes':>10}{'reads':>10}"
        lines = [self.title, "=" * len(header), header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                f"{row.workload:<18}{row.scheme:<22}"
                f"{row.slowdown:>10.3f}{row.normalized_writes:>10.3f}{row.normalized_reads:>10.3f}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'average':<40}{self.mean('slowdown'):>10.3f}"
            f"{self.mean('normalized_writes'):>10.3f}{self.mean('normalized_reads'):>10.3f}"
        )
        return "\n".join(lines)

    def save_json(self, path: Path, extra: Optional[Dict] = None) -> None:
        payload = {
            "title": self.title,
            "rows": [row.__dict__ for row in self.rows],
            "mean_slowdown": self.mean("slowdown"),
        }
        if extra:
            payload.update(extra)
        Path(path).write_text(json.dumps(payload, indent=2))
