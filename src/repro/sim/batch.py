"""Batched trace execution: compile once, sweep flat micro-op arrays.

The per-access path (``Machine.load`` -> ``MMU.translate`` ->
``CacheHierarchy.access`` -> ``controller.access`` -> ``NVMDevice``) is
faithful but slow: every simulated line access crosses five Python call
boundaries and allocates request/outcome objects.  This module keeps the
*model* identical while removing the dispatch:

1. **Capture** — the workload runs once against a recording stub
   (:func:`capture_workload`), producing a :class:`~repro.sim.trace.Trace`
   without touching the machine's timing state.  Workloads that reach
   beyond the traceable API (functional byte access, crash lifecycle,
   multi-process) are detected and fall back to direct execution.
2. **Compile** — :func:`compile_trace` expands the trace into flat
   micro-op arrays (numpy when available: op kind ``uint8``, line
   vaddr ``int64``, compute ``float64``), split into chunks at the rare
   structural ops (create/open/mmap/mark).
3. **Execute** — :func:`execute_compiled` sweeps the arrays with the
   whole model inlined into one interpreter loop: TLB/cache/metadata
   lookups are direct ``OrderedDict`` probes, stats are accumulated in
   flat pend arrays and flushed per chunk, and every cold or rare path
   (TLB miss, page fault, counter overflow, OTT refill, page-cache
   fault) delegates to the *real* component method so behaviour — and
   therefore every golden digest — is bit-identical to per-access
   dispatch.  Machines the interpreter does not model (functional mode,
   histograms, multi-process, crash domains, Anubis) replay the trace
   through :func:`~repro.sim.trace.replay` instead.

Bit-identity is the hard pin: the interpreter replicates the reference
path's exact float-addition order (latencies accumulate into the clock
in the same association), its exact LRU mutations (``move_to_end`` /
``popitem`` sequences), and its exact stat increments on every
*registered* bundle.  The only tolerated divergence is the counters of
unregistered structural bundles (the metadata cache's internal tag
store), which are invisible to results and digests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

try:  # numpy is the intended array backend but must stay optional
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

from ..core.fsencr import FsEncrController
from ..mem.cache import Eviction
from ..mem.controller import MemoryRequest, PlainMemoryController
from ..mem.dfbit import DF_MASK
from ..secmem.counters import MINOR_BITS
from ..secmem.secure_controller import BaselineSecureController
from .machine import Machine
from .trace import (
    COMPUTE,
    CREATE,
    LOAD,
    MARK,
    MMAP,
    OPEN,
    PERSIST,
    STORE,
    Trace,
    TraceOp,
    replay,
    resolve_mmap_handle,
)

__all__ = [
    "BatchRunner",
    "CompiledTrace",
    "capture_workload",
    "compile_trace",
    "execute_compiled",
    "run_workload_batch",
]

# Micro-op kinds (the uint8 column of the compiled arrays).
_ACC_READ = 0
_ACC_WRITE = 1
_FLUSH = 2
_FENCE = 3
_COMPUTE = 4

_FENCE_NS = 10.0
_ADR_DRAIN_NS = 60.0
_MINOR_LIMIT = 1 << MINOR_BITS

# Pend-array slots for the per-level cache bundles.
_HITS, _MISSES, _EVICTIONS, _DIRTY_EVICTIONS, _WRITEBACKS = range(5)
_CACHE_KEYS = ("hits", "misses", "evictions", "dirty_evictions", "writebacks")

_NVM_KEYS = (
    "reads",
    "writes",
    "row_hits",
    "row_misses",
    "dirty_row_writebacks",
    "adaptive_closes",
    "persist_writes",
)
(_N_READS, _N_WRITES, _N_ROW_HITS, _N_ROW_MISSES,
 _N_DIRTY_WB, _N_ADAPTIVE, _N_PERSIST) = range(7)

_CTRL_KEYS = (
    "read_requests",
    "write_requests",
    "merkle_fetches",
    "osiris_counter_persists",
    "osiris_fecb_persists",
    "dax_requests",
    "mecb_fetches",
    "fecb_fetches",
)
(_C_READ_REQ, _C_WRITE_REQ, _C_MERKLE_F, _C_OSIRIS_CP,
 _C_OSIRIS_FP, _C_DAX, _C_MECB_F, _C_FECB_F) = range(8)

_META_KEYS = (
    "mecb_hits", "mecb_misses", "mecb_writes",
    "fecb_hits", "fecb_misses", "fecb_writes",
    "merkle_hits", "merkle_misses", "merkle_writes",
    "dirty_evictions",
)
(_M_MECB_H, _M_MECB_M, _M_MECB_W,
 _M_FECB_H, _M_FECB_M, _M_FECB_W,
 _M_MERKLE_H, _M_MERKLE_M, _M_MERKLE_W,
 _M_DIRTY_EV) = range(10)

_OSIRIS_KEYS = ("updates", "forced_persists")
_NOT_MAPPED = object()  # overlay region-memo sentinel


class CompiledTrace:
    """A trace lowered to flat micro-op arrays plus its rare-op schedule.

    ``kinds``/``addrs``/``ns`` are parallel arrays (numpy when
    available), one row per micro-op: cache-line accesses, line flushes,
    fences, and compute delays.  ``chunks`` lists ``(lo, hi)`` windows
    between structural ops; ``rares[i]`` executes after ``chunks[i]``.
    """

    __slots__ = ("_trace", "_name", "_raw", "kinds", "addrs", "ns",
                 "chunks", "rares")

    def __init__(self, trace: Optional[Trace], kinds, addrs, ns,
                 chunks: List[Tuple[int, int]], rares: List[TraceOp],
                 name: str = "", raw: Optional[list] = None) -> None:
        self._trace = trace
        self._name = name
        self._raw = raw
        self.kinds = kinds
        self.addrs = addrs
        self.ns = ns
        self.chunks = chunks
        self.rares = rares

    @property
    def trace(self) -> Trace:
        """The source trace; captured traces materialize it on demand.

        Capture records plain tuples because TraceOp construction
        dominates capture time; only the replay fallback (and explicit
        save/export) needs real TraceOps, so they are built here.
        """
        if self._trace is None:
            self._trace = Trace(
                name=self._name,
                ops=[TraceOp(*rec) for rec in self._raw],
            )
            self._raw = None
        return self._trace

    def __len__(self) -> int:
        return len(self.kinds)


def _lower(records):
    """Lower raw op records — ``(op, addr, size, path, flag, ns, uid)``
    tuples in TraceOp field order — to the flat micro-op arrays."""
    kinds: List[int] = []
    addrs: List[int] = []
    ns: List[float] = []
    chunks: List[Tuple[int, int]] = []
    rares: List[TraceOp] = []
    lo = 0
    for rec in records:
        mnemonic = rec[0]
        if mnemonic == LOAD or mnemonic == STORE or mnemonic == PERSIST:
            addr = rec[1]
            size = rec[2]
            if size <= 0:
                raise ValueError("size must be positive")
            first = addr & ~63
            last = (addr + size - 1) & ~63
            kind = _ACC_READ if mnemonic == LOAD else _ACC_WRITE
            line = first
            while line <= last:
                kinds.append(kind)
                addrs.append(line)
                ns.append(0.0)
                line += 64
            if mnemonic == PERSIST:
                line = first
                while line <= last:
                    kinds.append(_FLUSH)
                    addrs.append(line)
                    ns.append(0.0)
                    line += 64
                kinds.append(_FENCE)
                addrs.append(0)
                ns.append(0.0)
        elif mnemonic == COMPUTE:
            kinds.append(_COMPUTE)
            addrs.append(0)
            ns.append(rec[5] if rec[5] else float(rec[2]))
        elif mnemonic in (CREATE, OPEN, MMAP, MARK):
            chunks.append((lo, len(kinds)))
            rares.append(TraceOp(*rec))
            lo = len(kinds)
        else:
            raise ValueError(f"unknown trace op {mnemonic!r}")
    chunks.append((lo, len(kinds)))
    if _np is not None:
        return (
            _np.asarray(kinds, dtype=_np.uint8),
            _np.asarray(addrs, dtype=_np.int64),
            _np.asarray(ns, dtype=_np.float64),
            chunks,
            rares,
        )
    return kinds, addrs, ns, chunks, rares


def compile_trace(trace: Trace) -> CompiledTrace:
    """Lower a trace to micro-op arrays.

    Loads/stores expand to one access per covered cache line; a persist
    becomes its write accesses, then one flush per line, then a fence —
    exactly the sequence ``Machine.persist`` issues.  Invalid sizes are
    rejected here (the per-access path raises the same ``ValueError``,
    just lazily at the offending op).
    """
    kinds, addrs, ns, chunks, rares = _lower(
        (op.op, op.addr, op.size, op.path, op.flag, op.ns, op.uid)
        for op in trace.ops
    )
    return CompiledTrace(trace, kinds, addrs, ns, chunks, rares)


def _compile_raw(name: str, raw: list) -> CompiledTrace:
    """Compile straight from capture's raw tuples; the Trace object is
    only materialized if the replay fallback (or a save) needs it."""
    kinds, addrs, ns, chunks, rares = _lower(raw)
    return CompiledTrace(None, kinds, addrs, ns, chunks, rares,
                         name=name, raw=raw)


# ----------------------------------------------------------------------
# Capture: run a workload against a recording stub
# ----------------------------------------------------------------------


class _CaptureUnsupported(Exception):
    """The workload used an API the capture stub cannot model."""


class _RecordingHandle:
    """Stand-in for a FileHandle during capture; replay re-creates the
    real handle from (path, uid)."""

    __slots__ = ("path", "uid")

    def __init__(self, path: str, uid: int) -> None:
        self.path = path
        self.uid = uid


class _CaptureMachine:
    """Machine-API stub that records instead of simulating.

    Deliberately *without* a passthrough ``__getattr__``: any machine
    attribute the stub does not model raises ``AttributeError``, which
    :func:`capture_workload` converts into a clean fallback to direct
    execution.  The stub mirrors only the state workloads observe
    through the traced API — the mmap address allocator.
    """

    def __init__(self, machine: Machine, name: str) -> None:
        self.name = name
        # Raw (op, addr, size, path, flag, ns, uid) tuples — TraceOp
        # field order, but ~5x cheaper to create than the dataclass, and
        # capture is a fixed cost the sweep has to amortize.
        self.raw: list = []
        self._rec = self.raw.append
        self._config = machine.config
        # Mirror of ProcessContext.next_vpn so recorded workloads see
        # the same mmap base addresses replay will produce.
        self._next_vpn = machine._process.next_vpn

    @property
    def config(self):
        return self._config

    def create_file(self, path: str, uid: int, mode: int = 0o644,
                    encrypted: bool = False) -> _RecordingHandle:
        self._rec((CREATE, uid, mode, path, encrypted, 0.0, 0))
        return _RecordingHandle(path, uid)

    def open_file(self, path: str, uid: int, write: bool = False) -> _RecordingHandle:
        self._rec((OPEN, uid, 0, path, write, 0.0, 0))
        return _RecordingHandle(path, uid)

    def mmap(self, handle, pages: int, file_page_start: int = 0) -> int:
        if not isinstance(handle, _RecordingHandle):
            # A real FileHandle from setup-time state the stub never saw.
            raise _CaptureUnsupported("mmap of a handle opened outside capture")
        if pages <= 0:
            # Let direct execution raise the real error in real state.
            raise _CaptureUnsupported("invalid mmap size")
        self._rec((MMAP, file_page_start, pages, handle.path, False,
                   0.0, handle.uid))
        base = self._next_vpn
        self._next_vpn += pages + 8  # Machine.mmap's guard gap
        return base * 4096

    def load(self, vaddr: int, size: int = 8) -> None:
        self._rec((LOAD, vaddr, size, "", False, 0.0, 0))

    def store(self, vaddr: int, size: int = 8) -> None:
        self._rec((STORE, vaddr, size, "", False, 0.0, 0))

    def persist(self, vaddr: int, size: int = 8) -> None:
        self._rec((PERSIST, vaddr, size, "", False, 0.0, 0))

    def compute(self, ns: float) -> None:
        self._rec((COMPUTE, 0, int(ns), "", False, float(ns), 0))

    def mark_measurement_start(self) -> None:
        self._rec((MARK, 0, 0, "", False, 0.0, 0))


def _capture_raw(machine: Machine, workload) -> Optional[_CaptureMachine]:
    """Record the workload's operation stream without running the model.

    Returns None when the workload steps outside the traceable API
    (functional byte access, fs management calls, crash lifecycle...);
    the caller then runs it directly.
    """
    stub = _CaptureMachine(machine, getattr(workload, "name", "trace"))
    try:
        workload.run(stub)
    except (AttributeError, _CaptureUnsupported):
        return None
    return stub


def capture_workload(machine: Machine, workload) -> Optional[Trace]:
    """Record a workload into a :class:`Trace` (None if uncapturable)."""
    stub = _capture_raw(machine, workload)
    if stub is None:
        return None
    return Trace(name=stub.name, ops=[TraceOp(*rec) for rec in stub.raw])


# ----------------------------------------------------------------------
# Execute
# ----------------------------------------------------------------------


def _supports_fast_path(machine: Machine) -> bool:
    """Whether the inline interpreter models this machine exactly."""
    if machine.config.functional or machine._crashed:
        return False
    if machine.latency_histogram is not None:
        return False
    if machine.service_queues is not None:
        # Service-model streams charge queueing delay per controller
        # access; the inline interpreter knows nothing about it, so a
        # stream machine always takes the reference path.
        return False
    if len(machine._processes) != 1 or machine._current_pid != 0:
        return False
    controller = machine.controller
    kind = type(controller)
    if kind is PlainMemoryController:
        return True
    if kind is BaselineSecureController or kind is FsEncrController:
        return (
            controller.anubis_shadow is None
            and controller.crash_domain is None
            and machine.overlay is None
        )
    return False


def execute_compiled(compiled: CompiledTrace, machine: Machine) -> None:
    """Run a compiled trace on a machine, bit-identically.

    Machines outside the interpreter's envelope (functional mode,
    histograms attached, multi-process, crash/Anubis wiring, custom
    controllers) replay the original trace through the reference path.
    """
    if _supports_fast_path(machine):
        _interpret(compiled, machine)
    else:
        replay(compiled.trace, machine)


def run_workload_batch(config, workload):
    """``run_workload`` with capture/compile/sweep execution.

    Falls back to direct execution when the workload cannot be captured;
    results are bit-identical either way.
    """
    machine = Machine(config)
    workload.setup(machine)
    stub = _capture_raw(machine, workload)
    if stub is None:
        workload.run(machine)
    else:
        execute_compiled(_compile_raw(stub.name, stub.raw), machine)
    return machine.result(workload.name)


def _workload_trace_key(config, workload) -> tuple:
    """Cache key under which a compiled trace may be reused.

    A workload's op stream is a pure function of its own parameters plus
    the single config bit it reads on the traced path — whether the
    scheme encrypts files (it decides the ``encrypted`` flag on
    create).  Everything else about the scheme changes how ops *cost*,
    not which ops occur, so one compiled trace serves every scheme in
    the same encryption class.
    """
    return (
        type(workload).__name__,
        getattr(workload, "name", ""),
        getattr(workload, "ops", None),
        getattr(workload, "iterations", None),
        getattr(workload, "seed", None),
        bool(config.scheme.has_file_encryption),
    )


class BatchRunner:
    """Grid executor that compiles each workload once and sweeps the
    arrays across schemes.

    This is where batching earns its keep: in an N-scheme comparison the
    workload's own Python (RNG, key mixing, op generation) runs once per
    encryption class instead of once per cell, and every cell is the
    flat-array sweep.  Cells remain bit-identical to per-access runs —
    the cache key only spans configs that provably record the same
    trace.
    """

    def __init__(self) -> None:
        self._compiled: Dict[tuple, Optional[CompiledTrace]] = {}

    def run(self, config, workload):
        machine = Machine(config)
        workload.setup(machine)
        key = _workload_trace_key(config, workload)
        if key in self._compiled:
            compiled = self._compiled[key]
        else:
            stub = _capture_raw(machine, workload)
            compiled = (_compile_raw(stub.name, stub.raw)
                        if stub is not None else None)
            self._compiled[key] = compiled
        if compiled is None:
            workload.run(machine)
        else:
            execute_compiled(compiled, machine)
        return machine.result(workload.name)


def _interpret(compiled: CompiledTrace, machine: Machine) -> None:
    """The inline interpreter.  One big function on purpose: every
    component's hot path is flattened into locals and closures so a
    line access costs dict probes, not call stacks.  Each inline block
    mirrors a specific reference method (named in the comments); any
    behavioural change there must be mirrored here — the golden-digest
    and batch-equivalence suites enforce the pairing.
    """
    config = machine.config
    controller = machine.controller
    ctrl_kind = type(controller)
    is_plain = ctrl_kind is PlainMemoryController
    is_fsencr = ctrl_kind is FsEncrController

    device = machine.device
    overlay = machine.overlay
    wpq = machine.wpq
    wpq_accept = wpq.accept if wpq is not None else None
    wcf = config.write_contention_factor

    # -- deferred stat buffers (flushed at chunk boundaries) -----------
    pend_nvm = [0] * len(_NVM_KEYS)
    pend_ctrl = [0] * len(_CTRL_KEYS)
    pend_tlb = [0]
    pend_mmu = [0]
    pend_l1 = [0] * len(_CACHE_KEYS)
    pend_l2 = [0] * len(_CACHE_KEYS)
    pend_l3 = [0] * len(_CACHE_KEYS)
    pend_meta = [0] * len(_META_KEYS)
    pend_osiris = [0, 0]
    pend_ott = [0]
    pend_pc = [0]

    mmu_obj = machine.mmu
    tlb = mmu_obj.tlb
    hierarchy = machine.hierarchy
    l1, l2, l3 = hierarchy.l1, hierarchy.l2, hierarchy.l3

    flush_specs = [
        (pend_tlb, ("hits",), tlb.stats.counters),
        (pend_mmu, ("translations",), mmu_obj.stats.counters),
        (pend_l1, _CACHE_KEYS, l1.stats.counters),
        (pend_l2, _CACHE_KEYS, l2.stats.counters),
        (pend_l3, _CACHE_KEYS, l3.stats.counters),
        (pend_nvm, _NVM_KEYS, device.stats.counters),
        (pend_ctrl, _CTRL_KEYS, controller.stats.counters),
    ]
    if not is_plain:
        flush_specs.append(
            (pend_meta, _META_KEYS, controller.metadata_cache.stats.counters)
        )
        flush_specs.append((pend_osiris, _OSIRIS_KEYS, controller.osiris.stats.counters))
    if is_fsencr:
        flush_specs.append((pend_ott, ("hits",), controller.ott.stats.counters))
    if overlay is not None:
        flush_specs.append((pend_pc, ("hits",), overlay.page_cache.stats.counters))

    def flush_stats() -> None:
        for pend, keys, counters in flush_specs:
            for index, value in enumerate(pend):
                if value:
                    counters[keys[index]] += value
                    pend[index] = 0

    # -- NVMDevice.read/write/_access, inlined -------------------------
    timing = device.timing
    ROW_HIT = timing.row_hit_ns
    ROW_MISS = timing.row_miss_read_ns
    DIRTY_EVICT = timing.dirty_evict_ns
    ADAPT = device.ADAPT_THRESHOLD
    amap = device.address_map
    _LSIZE_COLS = amap.line_size * amap.columns_per_row
    _CHANS = amap.channels
    _BANKS = amap.banks_per_rank
    _RANKS = amap.ranks_per_channel
    get_bank = device._bank
    track_wear = device._track_wear
    wear = device._wear
    bank_memo: Dict[int, tuple] = {}

    def dev_bank(addr: int) -> tuple:
        """AddressMap.decompose + NVMDevice._bank, memoized per address."""
        entry = bank_memo.get(addr)
        if entry is None:
            if addr < 0:
                raise ValueError(f"negative address: {addr:#x}")
            line = addr // _LSIZE_COLS
            channel = line % _CHANS
            line //= _CHANS
            bank = line % _BANKS
            line //= _BANKS
            rank = line % _RANKS
            entry = (get_bank((channel, rank, bank)), line // _RANKS)
            bank_memo[addr] = entry
        return entry

    def dev_read_miss(bank, row: int) -> float:
        """NVMDevice._access read-path row miss (adaptive row policy)."""
        misses = bank.consecutive_misses + 1
        pend_nvm[_N_ROW_MISSES] += 1
        latency = ROW_MISS
        if bank.open_row is not None and bank.dirty:
            latency += DIRTY_EVICT
            pend_nvm[_N_DIRTY_WB] += 1
        bank.dirty = False
        if misses >= ADAPT:
            bank.open_row = None
            bank.consecutive_misses = 0
            pend_nvm[_N_ADAPTIVE] += 1
        else:
            bank.open_row = row
            bank.consecutive_misses = misses
        return latency

    def dev_write_miss(bank, row: int) -> float:
        """NVMDevice._access write-path row miss."""
        misses = bank.consecutive_misses + 1
        pend_nvm[_N_ROW_MISSES] += 1
        latency = ROW_MISS
        if bank.open_row is not None and bank.dirty:
            latency += DIRTY_EVICT
            pend_nvm[_N_DIRTY_WB] += 1
        if misses >= ADAPT:
            bank.open_row = None
            bank.consecutive_misses = 0
            bank.dirty = False
            pend_nvm[_N_ADAPTIVE] += 1
        else:
            bank.open_row = row
            bank.consecutive_misses = misses
            bank.dirty = True
        return latency

    def dev_read(addr: int) -> float:
        pend_nvm[_N_READS] += 1
        bank, row = dev_bank(addr)
        if bank.open_row == row:
            bank.consecutive_misses = 0
            pend_nvm[_N_ROW_HITS] += 1
            return ROW_HIT
        return dev_read_miss(bank, row)

    def dev_write(addr: int, persist: bool = False) -> float:
        pend_nvm[_N_WRITES] += 1
        if track_wear:
            line = addr & ~63
            wear[line] = wear.get(line, 0) + 1
        bank, row = dev_bank(addr)
        if bank.open_row == row:
            bank.consecutive_misses = 0
            pend_nvm[_N_ROW_HITS] += 1
            latency = ROW_HIT
            bank.dirty = True
        else:
            latency = dev_write_miss(bank, row)
        if persist:
            latency += DIRTY_EVICT
            bank.dirty = False
            pend_nvm[_N_PERSIST] += 1
        return latency

    # -- CacheHierarchy fill/_push_down over line numbers ---------------
    levels = (
        (l1._sets, l1._num_sets, l1._ways, pend_l1),
        (l2._sets, l2._num_sets, l2._ways, pend_l2),
        (l3._sets, l3._num_sets, l3._ways, pend_l3),
    )
    s1, n1, w1 = l1._sets, l1._num_sets, l1._ways
    s2, n2, w2 = l2._sets, l2._num_sets, l2._ways
    s3, n3, w3 = l3._sets, l3._num_sets, l3._ways
    LAT1 = l1.config.hit_latency
    LAT12 = LAT1 + l2.config.hit_latency
    LAT123 = LAT12 + l3.config.hit_latency

    def fill_level(level: int, line: int, dirty: bool) -> int:
        """SetAssociativeCache.fill; returns a dirty victim's line or -1."""
        sets, nsets, ways, pend = levels[level]
        entries = sets[line % nsets]
        if line in entries:
            entries.move_to_end(line)
            if dirty:
                entries[line] = True
            return -1
        victim = -1
        if len(entries) >= ways:
            victim_line, victim_dirty = entries.popitem(last=False)
            pend[_EVICTIONS] += 1
            if victim_dirty:
                pend[_DIRTY_EVICTIONS] += 1
                victim = victim_line
        entries[line] = dirty
        return victim

    def push_down(level: int, line: int) -> None:
        """CacheHierarchy._push_down: chase dirty victims downward."""
        while True:
            level += 1
            if level > 2:
                return
            line = fill_level(level, line, True)
            if line < 0:
                return

    # -- controller closures -------------------------------------------
    if is_plain:
        def ctrl_read(addr: int) -> float:
            pend_ctrl[_C_READ_REQ] += 1
            pend_nvm[_N_READS] += 1
            entry = bank_memo.get(addr)
            if entry is None:
                entry = dev_bank(addr)
            bank, row = entry
            if bank.open_row == row:
                bank.consecutive_misses = 0
                pend_nvm[_N_ROW_HITS] += 1
                return ROW_HIT
            return dev_read_miss(bank, row)

        def ctrl_write(addr: int, persist: bool) -> float:
            pend_ctrl[_C_WRITE_REQ] += 1
            pend_nvm[_N_WRITES] += 1
            if track_wear:
                wline = addr & ~63
                wear[wline] = wear.get(wline, 0) + 1
            entry = bank_memo.get(addr)
            if entry is None:
                entry = dev_bank(addr)
            bank, row = entry
            if bank.open_row == row:
                bank.consecutive_misses = 0
                pend_nvm[_N_ROW_HITS] += 1
                latency = ROW_HIT
                bank.dirty = True
            else:
                latency = dev_write_miss(bank, row)
            if persist:
                latency += DIRTY_EVICT
                bank.dirty = False
                pend_nvm[_N_PERSIST] += 1
            return latency
    else:
        meta = controller.metadata_cache
        META_HIT = meta.hit_latency
        handle_evictions = controller._handle_metadata_evictions
        layout = controller.layout
        num_pages = layout.num_pages
        mecb_base = layout.mecb_base
        fecb_base = layout.fecb_base
        mecb_inner = meta._caches["mecb"]
        fecb_inner = meta._caches["fecb"]
        merkle_inner = meta._caches["merkle"]
        mecb_sets, mecb_nsets, mecb_ways = (
            mecb_inner._sets, mecb_inner._num_sets, mecb_inner._ways)
        fecb_sets, fecb_nsets, fecb_ways = (
            fecb_inner._sets, fecb_inner._num_sets, fecb_inner._ways)
        mk_sets, mk_nsets, mk_ways = (
            merkle_inner._sets, merkle_inner._num_sets, merkle_inner._ways)
        AES = controller.config.aes_latency_ns
        XOR = controller.config.xor_latency_ns
        AES_XOR = AES + XOR
        path_to_root = controller.merkle.path_to_root
        merkle_path_memo: Dict[int, tuple] = {}
        osiris_distance = controller.osiris._distance
        stop_loss = controller.osiris.stop_loss
        mecb_block = controller.mecb.block
        real_bump = controller._bump_counter
        persisted_mecb = controller._persisted_mecb

        def merkle_path(addr: int) -> tuple:
            path = merkle_path_memo.get(addr)
            if path is None:
                path = tuple((node, node >> 6) for node in path_to_root(addr))
                merkle_path_memo[addr] = path
            return path

        def verify_merkle(addr: int) -> float:
            """_verify_merkle_path: walk up, stop at the first cached node."""
            latency = 0.0
            for node_addr, line in merkle_path(addr):
                entries = mk_sets[line % mk_nsets]
                if line in entries:
                    entries.move_to_end(line)
                    pend_meta[_M_MERKLE_H] += 1
                    latency += META_HIT
                    break
                pend_meta[_M_MERKLE_M] += 1
                if len(entries) >= mk_ways:
                    victim_line, victim_dirty = entries.popitem(last=False)
                    entries[line] = False
                    if victim_dirty:
                        pend_meta[_M_DIRTY_EV] += 1
                        handle_evictions((Eviction(victim_line * 64, True),))
                else:
                    entries[line] = False
                latency += dev_read(node_addr)
                pend_ctrl[_C_MERKLE_F] += 1
            return latency

        def update_merkle(addr: int) -> None:
            """_update_merkle_path: dirty the path, write-back, no latency."""
            for node_addr, line in merkle_path(addr):
                entries = mk_sets[line % mk_nsets]
                if line in entries:
                    entries.move_to_end(line)
                    entries[line] = True
                    pend_meta[_M_MERKLE_H] += 1
                    pend_meta[_M_MERKLE_W] += 1
                    break
                pend_meta[_M_MERKLE_M] += 1
                pend_meta[_M_MERKLE_W] += 1
                if len(entries) >= mk_ways:
                    victim_line, victim_dirty = entries.popitem(last=False)
                    entries[line] = True
                    if victim_dirty:
                        pend_meta[_M_DIRTY_EV] += 1
                        handle_evictions((Eviction(victim_line * 64, True),))
                else:
                    entries[line] = True
                dev_read(node_addr)  # posted refetch: latency not charged
                pend_ctrl[_C_MERKLE_F] += 1

        def _make_fetch_miss(ways, miss_i, write_i, fetch_i):
            """_fetch_metadata_line, miss path (hits are inlined at the
            call sites); ``line``/``entries`` come pre-resolved."""
            def fetch_miss(addr: int, line: int, entries, is_write: bool) -> float:
                pend_meta[miss_i] += 1
                if is_write:
                    pend_meta[write_i] += 1
                if len(entries) >= ways:
                    victim_line, victim_dirty = entries.popitem(last=False)
                    entries[line] = is_write
                    if victim_dirty:
                        pend_meta[_M_DIRTY_EV] += 1
                        handle_evictions((Eviction(victim_line * 64, True),))
                else:
                    entries[line] = is_write
                latency = dev_read(addr)
                pend_ctrl[fetch_i] += 1
                latency += verify_merkle(addr)
                return latency
            return fetch_miss

        fetch_mecb_miss = _make_fetch_miss(mecb_ways, _M_MECB_M, _M_MECB_W,
                                           _C_MECB_F)
        fetch_fecb_miss = _make_fetch_miss(fecb_ways, _M_FECB_M, _M_FECB_W,
                                           _C_FECB_F)

        mecb_blocks = controller.mecb.blocks
        has_dax = is_fsencr
        if is_fsencr:
            ott = controller.ott
            ott_entries = ott._entries
            ott_get = ott_entries.get
            ott_move = ott_entries.move_to_end
            OTT_LAT = ott.lookup_latency_ns
            real_lookup_key = controller._lookup_key
            fecb_block = controller.fecb.block
            fecb_blocks = controller.fecb._blocks
            real_extra = controller._extra_write_path
            persisted_fecb = controller._persisted_fecb

        def ctrl_read(addr: int) -> float:
            """BaselineSecureController._read / FsEncr read: data read,
            then pad fetch (MECB, and FECB+OTT on DAX lines), max-combine."""
            pend_ctrl[_C_READ_REQ] += 1
            raw = addr & ~DF_MASK
            # NVMDevice.read, row-hit inline
            pend_nvm[_N_READS] += 1
            entry = bank_memo.get(raw)
            if entry is None:
                entry = dev_bank(raw)
            bank, row = entry
            if bank.open_row == row:
                bank.consecutive_misses = 0
                pend_nvm[_N_ROW_HITS] += 1
                data_latency = ROW_HIT
            else:
                data_latency = dev_read_miss(bank, row)
            page = raw >> 12
            if page >= num_pages:
                layout.mecb_addr(page)  # raises the reference ValueError
            # MECB pad fetch, hit inline
            counter_addr = mecb_base + (page << 6)
            mline = counter_addr >> 6
            mentries = mecb_sets[mline % mecb_nsets]
            if mline in mentries:
                mentries.move_to_end(mline)
                pend_meta[_M_MECB_H] += 1
                pad = META_HIT
            else:
                pad = fetch_mecb_miss(counter_addr, mline, mentries, False)
            if has_dax and addr & DF_MASK:
                # FsEncr._pad_fetch_latency DAX arm: FECB + OTT
                pend_ctrl[_C_DAX] += 1
                fecb_addr = fecb_base + (page << 6)
                fline = fecb_addr >> 6
                fentries = fecb_sets[fline % fecb_nsets]
                if fline in fentries:
                    fentries.move_to_end(fline)  # lookup_only probe
                    fentries.move_to_end(fline)  # fetch hit
                    pend_meta[_M_FECB_H] += 1
                    fpad = META_HIT
                    was_cached = True
                else:
                    was_cached = False
                    fpad = fetch_fecb_miss(fecb_addr, fline, fentries, False)
                fblock = fecb_blocks.get(page)
                if fblock is None:
                    fblock = fecb_block(page)
                if (fblock.file_id or fblock.group_id) and not was_cached:
                    ident = (fblock.group_id, fblock.file_id)
                    if ott_get(ident) is not None:
                        ott_move(ident)
                        pend_ott[0] += 1
                        fpad += OTT_LAT
                    else:
                        _, key_latency = real_lookup_key(
                            fblock.group_id, fblock.file_id)
                        fpad += key_latency
                if fpad > pad:
                    pad = fpad
            pad += AES
            total = data_latency if data_latency >= pad else pad
            return total + XOR

        def ctrl_write(addr: int, persist: bool) -> float:
            """BaselineSecureController._write / FsEncr write, with every
            common-case probe (metadata hit, counter bump, merkle root
            hit, row hit) inlined; overflow/miss arms delegate."""
            pend_ctrl[_C_WRITE_REQ] += 1
            raw = addr & ~DF_MASK
            page = raw >> 12
            if page >= num_pages:
                layout.mecb_addr(page)
            counter_addr = mecb_base + (page << 6)
            line_index = (raw & 4095) >> 6
            # MECB pad fetch (write), hit inline
            mline = counter_addr >> 6
            mentries = mecb_sets[mline % mecb_nsets]
            if mline in mentries:
                mentries.move_to_end(mline)
                mentries[mline] = True
                pend_meta[_M_MECB_W] += 1
                pend_meta[_M_MECB_H] += 1
                latency = META_HIT
            else:
                latency = fetch_mecb_miss(counter_addr, mline, mentries, True)
            is_df = has_dax and addr & DF_MASK
            if is_df:
                # FsEncr._pad_fetch_latency DAX arm
                pend_ctrl[_C_DAX] += 1
                fecb_addr = fecb_base + (page << 6)
                fline = fecb_addr >> 6
                fentries = fecb_sets[fline % fecb_nsets]
                if fline in fentries:
                    fentries.move_to_end(fline)  # lookup_only probe
                    fentries.move_to_end(fline)  # fetch hit
                    fentries[fline] = True
                    pend_meta[_M_FECB_W] += 1
                    pend_meta[_M_FECB_H] += 1
                    fpad = META_HIT
                    was_cached = True
                else:
                    was_cached = False
                    fpad = fetch_fecb_miss(fecb_addr, fline, fentries, True)
                fblock = fecb_blocks.get(page)
                if fblock is None:
                    fblock = fecb_block(page)
                if (fblock.file_id or fblock.group_id) and not was_cached:
                    ident = (fblock.group_id, fblock.file_id)
                    if ott_get(ident) is not None:
                        ott_move(ident)
                        pend_ott[0] += 1
                        fpad += OTT_LAT
                    else:
                        _, key_latency = real_lookup_key(
                            fblock.group_id, fblock.file_id)
                        fpad += key_latency
                if fpad > latency:
                    latency = fpad
            # _bump_counter, non-overflow inline (overflow delegates
            # before any mutation)
            block = mecb_blocks.get(page)
            if block is None:
                block = mecb_block(page)
            minors = block.minors
            new_minor = minors[line_index] + 1
            if new_minor >= _MINOR_LIMIT:
                bumped = real_bump(page, line_index, counter_addr)
                if bumped:
                    latency += bumped
            else:
                minors[line_index] = new_minor
                # OsirisTracker.note_update + the persist branch
                distance = osiris_distance.get(counter_addr, 0) + 1
                pend_osiris[0] += 1
                if distance >= stop_loss:
                    osiris_distance[counter_addr] = 0
                    pend_osiris[1] += 1
                    dev_write(counter_addr)  # posted write-through
                    pend_ctrl[_C_OSIRIS_CP] += 1
                    if mentries.get(mline):
                        mentries[mline] = False
                    persisted_mecb[page] = (block.major, tuple(minors))
                else:
                    osiris_distance[counter_addr] = distance
            # FsEncr._extra_write_path, non-overflow inline
            if is_df and (fblock.file_id or fblock.group_id):
                fcounters = fblock.counters
                fminors = fcounters.minors
                fnew = fminors[line_index] + 1
                if fnew >= _MINOR_LIMIT:
                    extra = real_extra(
                        MemoryRequest(addr=addr, is_write=True), raw)
                    if extra:
                        latency += extra
                else:
                    fminors[line_index] = fnew
                    fdist = osiris_distance.get(fecb_addr, 0) + 1
                    pend_osiris[0] += 1
                    if fdist >= stop_loss:
                        osiris_distance[fecb_addr] = 0
                        pend_osiris[1] += 1
                        dev_write(fecb_addr)  # posted write-through
                        pend_ctrl[_C_OSIRIS_FP] += 1
                        if fentries.get(fline):
                            fentries[fline] = False
                        persisted_fecb[page] = (
                            fblock.group_id, fblock.file_id,
                            fcounters.major, tuple(fminors),
                        )
                    else:
                        osiris_distance[fecb_addr] = fdist
                    # merkle update over the FECB line, root-ward hit inline
                    path = merkle_path_memo.get(fecb_addr)
                    if path is None:
                        path = merkle_path(fecb_addr)
                    node_addr, nline = path[0]
                    nentries = mk_sets[nline % mk_nsets]
                    if nline in nentries:
                        nentries.move_to_end(nline)
                        nentries[nline] = True
                        pend_meta[_M_MERKLE_H] += 1
                        pend_meta[_M_MERKLE_W] += 1
                    else:
                        update_merkle(fecb_addr)
            # merkle update over the counter line, first-node hit inline
            path = merkle_path_memo.get(counter_addr)
            if path is None:
                path = merkle_path(counter_addr)
            node_addr, nline = path[0]
            nentries = mk_sets[nline % mk_nsets]
            if nline in nentries:
                nentries.move_to_end(nline)
                nentries[nline] = True
                pend_meta[_M_MERKLE_H] += 1
                pend_meta[_M_MERKLE_W] += 1
            else:
                update_merkle(counter_addr)
            latency += AES_XOR
            # NVMDevice.write, row-hit inline
            pend_nvm[_N_WRITES] += 1
            if track_wear:
                wline = raw & ~63
                wear[wline] = wear.get(wline, 0) + 1
            entry = bank_memo.get(raw)
            if entry is None:
                entry = dev_bank(raw)
            bank, row = entry
            if bank.open_row == row:
                bank.consecutive_misses = 0
                pend_nvm[_N_ROW_HITS] += 1
                wlat = ROW_HIT
                bank.dirty = True
            else:
                wlat = dev_write_miss(bank, row)
            if persist:
                wlat += DIRTY_EVICT
                bank.dirty = False
                pend_nvm[_N_PERSIST] += 1
            return latency + wlat

    # -- MMU / TLB ------------------------------------------------------
    tlb_entries = tlb._entries
    tlb_move = tlb_entries.move_to_end
    translate = mmu_obj.translate

    # -- page-cache overlay (conventional / software_encryption) --------
    if overlay is not None:
        pc_pages = overlay.page_cache._pages
        pc_move = pc_pages.move_to_end
        access_page = overlay.access_page
        region_for = machine._region_for
        region_memo: Dict[int, object] = {}

    kinds = compiled.kinds if _np is None else compiled.kinds.tolist()
    addrs = compiled.addrs if _np is None else compiled.addrs.tolist()
    ns_col = compiled.ns if _np is None else compiled.ns.tolist()
    chunks = compiled.chunks
    rares = compiled.rares

    handles: Dict[str, object] = {}
    last_handle = None
    tlb_get = tlb_entries.get
    clock = machine.clock_ns
    try:
        for chunk_index, (lo, hi) in enumerate(chunks):
            for kind, addr, delay in zip(kinds[lo:hi], addrs[lo:hi],
                                         ns_col[lo:hi]):
                if kind <= _ACC_WRITE:
                    # ---- Machine._access_line --------------------------
                    is_write = kind == _ACC_WRITE
                    vpn = addr >> 12
                    pte = tlb_get(vpn)
                    if pte is not None and (not is_write or pte.writable):
                        # MMU.translate, TLB-hit path (latency 0).
                        tlb_move(vpn)
                        pend_tlb[0] += 1
                        pte.accessed = True
                        if is_write:
                            pte.dirty = True
                        pend_mmu[0] += 1
                        paddr = (pte.pfn << 12) | (addr & 4095)
                        if pte.df:
                            paddr |= DF_MASK
                    else:
                        # Miss / fault / protection check: real walk.
                        machine.clock_ns = clock
                        translation = translate(addr, is_write)
                        clock = machine.clock_ns + translation.latency_ns
                        paddr = translation.paddr

                    if overlay is not None:
                        mapped = region_memo.get(vpn, _NOT_MAPPED)
                        if mapped is _NOT_MAPPED:
                            mapped = None
                            region = region_for(vpn)
                            if region is not None and region.handle is not None:
                                inode = region.handle.inode
                                file_page = region.file_page(vpn)
                                dev_pfn = inode.extents.get(file_page)
                                if dev_pfn is not None:
                                    mapped = (inode.i_ino, file_page,
                                              dev_pfn * 4096)
                            region_memo[vpn] = mapped
                        if mapped is not None:
                            key = (mapped[0], mapped[1])
                            page_obj = pc_pages.get(key)
                            if page_obj is not None:
                                # PageCache.lookup hit (+ mark_dirty).
                                pc_move(key)
                                pend_pc[0] += 1
                                if is_write:
                                    page_obj.dirty = True
                            else:
                                # Fault the page in through the real path.
                                clock += access_page(
                                    mapped[0], mapped[1], mapped[2], is_write)

                    # ---- CacheHierarchy.access -------------------------
                    line = paddr >> 6
                    wb_line = -1
                    miss = False
                    entries = s1[line % n1]
                    if line in entries:
                        pend_l1[_HITS] += 1
                        entries.move_to_end(line)
                        if is_write:
                            entries[line] = True
                        clock += LAT1
                    else:
                        # The fills below skip fill()'s presence check:
                        # the level just missed on this line and the only
                        # interleaved inserts (push_down victims) are for
                        # other lines, so the line is still absent.
                        pend_l1[_MISSES] += 1
                        entries2 = s2[line % n2]
                        if line in entries2:
                            pend_l2[_HITS] += 1
                            entries2.move_to_end(line)
                            if is_write:
                                entries2[line] = True
                            clock += LAT12
                            if len(entries) >= w1:  # fill L1
                                victim_line, victim_dirty = entries.popitem(
                                    last=False)
                                pend_l1[_EVICTIONS] += 1
                                if victim_dirty:
                                    pend_l1[_DIRTY_EVICTIONS] += 1
                                    push_down(0, victim_line)
                            entries[line] = False
                        else:
                            pend_l2[_MISSES] += 1
                            entries3 = s3[line % n3]
                            if line in entries3:
                                pend_l3[_HITS] += 1
                                entries3.move_to_end(line)
                                if is_write:
                                    entries3[line] = True
                                clock += LAT123
                            else:
                                pend_l3[_MISSES] += 1
                                clock += LAT123
                                miss = True
                            if len(entries) >= w1:  # fill L1
                                victim_line, victim_dirty = entries.popitem(
                                    last=False)
                                pend_l1[_EVICTIONS] += 1
                                if victim_dirty:
                                    pend_l1[_DIRTY_EVICTIONS] += 1
                                    push_down(0, victim_line)
                            entries[line] = is_write if miss else False
                            if len(entries2) >= w2:  # fill L2
                                victim_line, victim_dirty = entries2.popitem(
                                    last=False)
                                pend_l2[_EVICTIONS] += 1
                                if victim_dirty:
                                    pend_l2[_DIRTY_EVICTIONS] += 1
                                    push_down(1, victim_line)
                            entries2[line] = False
                            if miss:  # fill L3; dirty victim is written back
                                if len(entries3) >= w3:
                                    victim_line, victim_dirty = (
                                        entries3.popitem(last=False))
                                    pend_l3[_EVICTIONS] += 1
                                    if victim_dirty:
                                        pend_l3[_DIRTY_EVICTIONS] += 1
                                        wb_line = victim_line
                                entries3[line] = False
                    if miss:
                        clock += ctrl_read(paddr)
                        if wb_line >= 0:
                            clock += ctrl_write(wb_line << 6, False) * wcf

                elif kind == _FLUSH:
                    # ---- Machine._flush_line ---------------------------
                    vpn = addr >> 12
                    pte = tlb_get(vpn)
                    if pte is not None:
                        tlb_move(vpn)
                        pend_tlb[0] += 1
                        pte.accessed = True
                        pend_mmu[0] += 1
                        paddr = (pte.pfn << 12) | (addr & 4095)
                        if pte.df:
                            paddr |= DF_MASK
                    else:
                        machine.clock_ns = clock
                        translation = translate(addr, False)
                        clock = machine.clock_ns + translation.latency_ns
                        paddr = translation.paddr
                    line = paddr >> 6
                    dirty = False
                    for sets, nsets, _ways, pend in levels:
                        entries = sets[line % nsets]
                        if entries.get(line):  # writeback_line
                            entries[line] = False
                            pend[_WRITEBACKS] += 1
                            dirty = True
                    if dirty:
                        if wpq_accept is not None:
                            clock += wpq_accept(clock)
                        else:
                            clock += _ADR_DRAIN_NS
                        clock += ctrl_write(paddr, True) * wcf

                elif kind == _FENCE:
                    clock += _FENCE_NS
                else:  # _COMPUTE
                    clock += delay

            # ---- rare structural op between chunks ---------------------
            flush_stats()
            machine.clock_ns = clock
            if chunk_index < len(rares):
                op = rares[chunk_index]
                mnemonic = op.op
                if mnemonic == CREATE:
                    last_handle = machine.create_file(
                        op.path, uid=op.addr, mode=op.size, encrypted=op.flag)
                    handles[op.path] = last_handle
                elif mnemonic == OPEN:
                    last_handle = machine.open_file(
                        op.path, uid=op.addr, write=op.flag)
                    handles[op.path] = last_handle
                elif mnemonic == MMAP:
                    handle = resolve_mmap_handle(op, handles, last_handle)
                    machine.mmap(handle, pages=op.size, file_page_start=op.addr)
                else:  # MARK
                    machine.mark_measurement_start()
                clock = machine.clock_ns
                if overlay is not None:
                    region_memo.clear()
    finally:
        flush_stats()
        machine.clock_ns = clock
