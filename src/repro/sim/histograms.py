"""Latency histograms: distribution-level visibility into the model.

Mean slowdown hides the paper's most interesting effects — a metadata
miss turns one access from ~20 ns into ~500 ns, which averages away but
dominates tail latency.  :class:`LatencyHistogram` buckets per-access
latencies logarithmically and reports percentiles, so analyses can show
*where* FsEncr's cost lives (it fattens the tail, not the median).

The machine records one sample per timing access when a histogram is
attached (off by default — recording is cheap, but nothing is free).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence

__all__ = ["LatencyHistogram"]

# Bucket edges in ns: sub-10ns cache hits up through multi-us software
# events, log-ish spacing.
_DEFAULT_EDGES = (
    5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0,
    1280.0, 2560.0, 5120.0, 10240.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile estimates."""

    def __init__(self, name: str = "latency", edges: Sequence[float] = _DEFAULT_EDGES) -> None:
        if list(edges) != sorted(edges) or len(edges) < 1:
            raise ValueError("edges must be ascending and non-empty")
        self.name = name
        self.edges: List[float] = list(edges)
        # counts[i] covers (edges[i-1], edges[i]]; the final bucket is
        # the overflow (> edges[-1]).
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.total = 0
        self.sum_ns = 0.0
        self.max_ns = 0.0

    def record(self, latency_ns: float) -> None:
        # `not >= 0` catches NaN too; both used to land silently in the
        # first bin, masking timing-math bugs upstream.
        if not latency_ns >= 0.0:
            raise ValueError(f"latency must be non-negative, got {latency_ns!r}")
        index = bisect_right(self.edges, latency_ns)
        self.counts[index] += 1
        self.total += 1
        self.sum_ns += latency_ns
        if latency_ns > self.max_ns:
            self.max_ns = latency_ns

    @property
    def mean_ns(self) -> float:
        return self.sum_ns / self.total if self.total else 0.0

    def percentile(self, p: float) -> float:
        """Upper bucket edge containing the p-th percentile (0 < p <= 100).

        Bucketed estimate: exact enough for "p99 moved from the 80 ns
        bucket to the 640 ns bucket" statements, which is what the
        analyses assert.
        """
        if not 0 < p <= 100:
            raise ValueError("p must be in (0, 100]")
        if self.total == 0:
            return 0.0
        target = self.total * p / 100.0
        running = 0
        for index, count in enumerate(self.counts):
            running += count
            if running >= target:
                if index < len(self.edges):
                    return self.edges[index]
                return self.max_ns
        return self.max_ns

    def merge(self, other: "LatencyHistogram") -> None:
        if other.edges != self.edges:
            raise ValueError("cannot merge histograms with different edges")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.sum_ns += other.sum_ns
        self.max_ns = max(self.max_ns, other.max_ns)

    def as_dict(self) -> Dict[str, float]:
        return {
            "total": self.total,
            "mean_ns": self.mean_ns,
            "p50_ns": self.percentile(50),
            "p90_ns": self.percentile(90),
            "p99_ns": self.percentile(99),
            "max_ns": self.max_ns,
        }

    def render(self, width: int = 40) -> str:
        """ASCII rendering, one row per bucket."""
        lines = [f"{self.name}: n={self.total} mean={self.mean_ns:.1f}ns "
                 f"p99={self.percentile(99):.0f}ns max={self.max_ns:.0f}ns"]
        peak = max(self.counts) or 1
        lower = 0.0
        for index, count in enumerate(self.counts):
            upper = self.edges[index] if index < len(self.edges) else float("inf")
            bar = "#" * round(count / peak * width)
            label = f"{lower:>7.0f}-{upper:<7.0f}" if upper != float("inf") else f"{lower:>7.0f}+       "
            lines.append(f"{label} {bar} {count}")
            lower = upper
        return "\n".join(lines)
