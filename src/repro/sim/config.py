"""Machine configuration — the programmatic mirror of Table III.

A :class:`MachineConfig` fully determines a simulated system: the
scheme under test (the paper's comparison axes), cache geometry, NVM
timing, metadata-cache size (the Figure 15 sweep knob), and the
software-cost model.  Benchmarks construct configs, never components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..core.ott import OTT_BANKS, OTT_ENTRIES_PER_BANK
from ..kernel.costs import SoftwareCosts
from ..mem.cache import CacheConfig
from ..mem.hierarchy import HierarchyConfig
from ..mem.nvm import NVMTiming
from ..mem.wpq import WPQConfig
from ..secmem.metadata_cache import MetadataCacheConfig
from ..secmem.secure_controller import SecureControllerConfig

__all__ = ["Scheme", "MachineConfig", "scaled_hierarchy", "SCALE_FACTOR"]

#: Python-scale runs shrink workload footprints ~16x versus the paper's
#: Gem5 runs; caches shrink by the same factor so that the working-set /
#: cache-capacity *ratios* — which drive every figure's shape — match.
#: ``MachineConfig.paper_scale()`` restores the full Table III geometry.
SCALE_FACTOR = 16


def scaled_hierarchy() -> HierarchyConfig:
    """Table III's hierarchy divided by :data:`SCALE_FACTOR`."""
    return HierarchyConfig(
        l1=CacheConfig(name="l1", size_bytes=32 * 1024 // SCALE_FACTOR, ways=8, hit_latency=2.0),
        l2=CacheConfig(name="l2", size_bytes=512 * 1024 // SCALE_FACTOR, ways=8, hit_latency=20.0),
        l3=CacheConfig(name="l3", size_bytes=4 * 1024 * 1024 // SCALE_FACTOR, ways=64, hit_latency=32.0),
    )


def scaled_metadata_cache() -> MetadataCacheConfig:
    """Table III's 512 KB metadata cache divided by :data:`SCALE_FACTOR`."""
    return MetadataCacheConfig(size_bytes=512 * 1024 // SCALE_FACTOR)


class Scheme(Enum):
    """The four systems the paper's figures compare, plus the
    conventional pre-DAX filesystem they all improve on."""

    #: Conventional filesystem of Figure 1(a): page cache, fault + FS +
    #: driver + copy on every cold page, no encryption.  Not in the
    #: paper's result figures — it is the background DAX removes.
    CONVENTIONAL = "conventional"
    #: Plain ext4-dax, no encryption anywhere (Figure 3's reference).
    EXT4DAX_PLAIN = "ext4dax_plain"
    #: eCryptfs-style software encryption through the page cache; DAX off
    #: (Figure 3's software-encryption bars, the ~2.7x/5x loser).
    SOFTWARE_ENCRYPTION = "software_encryption"
    #: Counter-mode memory encryption + BMT, no file layer — the
    #: "Baseline Security" that Figures 8-15 normalise against.
    BASELINE_SECURE = "baseline_secure"
    #: The contribution: baseline + hardware filesystem encryption.
    FSENCR = "fsencr"

    @property
    def uses_dax(self) -> bool:
        return self not in (Scheme.SOFTWARE_ENCRYPTION, Scheme.CONVENTIONAL)

    @property
    def uses_page_cache(self) -> bool:
        return self in (Scheme.SOFTWARE_ENCRYPTION, Scheme.CONVENTIONAL)

    @property
    def has_file_encryption(self) -> bool:
        return self in (Scheme.FSENCR, Scheme.SOFTWARE_ENCRYPTION)


@dataclass(frozen=True)
class MachineConfig:
    """Everything needed to build a :class:`~repro.sim.machine.Machine`."""

    scheme: Scheme = Scheme.FSENCR
    # Table III: memmap=4G!12G -> PMEM at 12 GB, 4 GB of it.  Scaled-down
    # defaults keep simulated footprints proportional to the scaled-down
    # workloads; the full-size values are a constructor call away.
    pmem_base: int = 256 * 1024 * 1024
    pmem_bytes: int = 128 * 1024 * 1024
    total_memory_bytes: int = 512 * 1024 * 1024
    hierarchy: HierarchyConfig = field(default_factory=scaled_hierarchy)
    nvm_timing: NVMTiming = field(default_factory=NVMTiming)
    metadata_cache: MetadataCacheConfig = field(default_factory=scaled_metadata_cache)
    software_costs: SoftwareCosts = field(default_factory=SoftwareCosts)
    aes_latency_ns: float = 40.0
    stop_loss: int = 4
    functional: bool = False
    #: Background (non-persist) write-backs contend for device bandwidth
    #: rather than stalling the pipeline; this factor is the fraction of
    #: their device latency charged to wall-clock.
    write_contention_factor: float = 0.25
    #: Model the controller's Write Pending Queue explicitly (burst-
    #: sensitive persist latency) instead of the fixed ADR constant.
    model_wpq: bool = False
    wpq: WPQConfig = field(default_factory=WPQConfig)
    #: Page-cache capacity for the software-encryption scheme, in pages
    #: (scaled like the caches; the paper's page cache is effectively
    #: memory-sized, ours must be thrashable by scaled workloads).
    page_cache_pages: int = 48
    #: OTT geometry (§III-E: 8 banks x 128 entries).  The capacity sweep
    #: of the OTT ablation is a config knob, like every other Table III
    #: parameter, so benchmarks never construct hardware directly.
    ott_banks: int = OTT_BANKS
    ott_entries_per_bank: int = OTT_ENTRIES_PER_BANK
    #: Anubis shadow-table sizing for the recovery-scheme comparison:
    #: the shadow mirrors the metadata cache's address stream, so its
    #: capacity is "number of cached metadata lines" and its base names
    #: the dedicated NVM region the shadow writes land in.
    anubis_shadow_lines: int = 64
    anubis_shadow_base: int = 0x1000_0000
    #: Wire the Anubis shadow table into the controller's counter-update
    #: path (the "+anubis" recovery column): runtime shadow-region
    #: writes buy reboot recovery proportional to the metadata cache.
    #: Scheme variants pin this via the registry (repro.sim.schemes).
    anubis_recovery: bool = False
    seed: int = 0x5EED

    def __post_init__(self) -> None:
        if self.pmem_base % 4096 or self.pmem_bytes % 4096:
            raise ValueError("PMEM region must be page aligned")
        if self.pmem_base + self.pmem_bytes > self.total_memory_bytes:
            raise ValueError("PMEM region exceeds total memory")
        if not 0.0 <= self.write_contention_factor <= 1.0:
            raise ValueError("write_contention_factor must be in [0, 1]")
        if self.ott_banks < 1 or self.ott_entries_per_bank < 1:
            raise ValueError("OTT geometry must have at least one slot")
        if self.anubis_shadow_lines < 1:
            raise ValueError("anubis_shadow_lines must be >= 1")

    def controller_config(self) -> SecureControllerConfig:
        return SecureControllerConfig(
            aes_latency_ns=self.aes_latency_ns,
            stop_loss=self.stop_loss,
            functional=self.functional,
            metadata_cache=self.metadata_cache,
        )

    # -- recovery-object builders ---------------------------------------
    # Thin delegates: construction lives in repro.sim.build (the
    # builder-owns-wiring contract); imported lazily to keep config a
    # leaf module.

    def build_osiris_recovery(self, stats=None) -> "OsirisRecovery":
        """The Osiris trial-decryption recoverer for this machine's
        stop-loss window (used at reboot and by the recovery ablation)."""
        from .build import make_osiris_recovery

        return make_osiris_recovery(self, stats=stats)

    def build_anubis_shadow(self, write_hook=None, stats=None) -> "ShadowTable":
        """The Anubis shadow table sized by this config's knobs."""
        from .build import make_anubis_shadow

        return make_anubis_shadow(self, write_hook=write_hook, stats=stats)

    def build_anubis_recovery(self, stats=None) -> "AnubisRecovery":
        """The Anubis-side recoverer (reads back the shadow region)."""
        from .build import make_anubis_recovery

        return make_anubis_recovery(self, stats=stats)

    @classmethod
    def paper_scale(cls, **overrides) -> "MachineConfig":
        """The unscaled Table III machine (32 KB/512 KB/4 MB caches,
        512 KB metadata cache) — for users replaying full-size traces."""
        defaults = dict(
            hierarchy=HierarchyConfig(),
            metadata_cache=MetadataCacheConfig(),
            page_cache_pages=1024,
        )
        defaults.update(overrides)
        return cls(**defaults)

    def with_scheme(self, scheme: Scheme) -> "MachineConfig":
        """The same machine under a different scheme — the comparison
        idiom every benchmark uses."""
        return self._replace(scheme=scheme)

    def with_wpq(self, enabled: bool = True) -> "MachineConfig":
        """The same machine with the explicit Write Pending Queue model
        toggled — the crash-sweep matrix's burst-sensitive column."""
        return self._replace(model_wpq=enabled)

    def with_metadata_cache(self, size_bytes: int) -> "MachineConfig":
        """Figure 15's sweep knob."""
        return self._replace(
            metadata_cache=MetadataCacheConfig(
                size_bytes=size_bytes,
                ways=self.metadata_cache.ways,
                line_size=self.metadata_cache.line_size,
                hit_latency=self.metadata_cache.hit_latency,
                partitioned=self.metadata_cache.partitioned,
            )
        )

    def _replace(self, **overrides) -> "MachineConfig":
        from dataclasses import replace

        return replace(self, **overrides)
