"""Figure 12: synthetic DAX micro-benchmark slowdowns under FsEncr.

Paper: ~20.03% average across DAX-1..4 — the adversarial upper bound, an
order of magnitude above the real workloads, because these micros have
no compute to hide behind and minimal metadata-cache reuse.

Shape expectations: DAX-2 > DAX-1 (the 128 B stride touches twice the
lines per counter line the 16 B stride does), and the swap micros sit at
the high end (random placement defeats metadata caching).
"""

from repro.analysis import figure12_to_14_micro


def test_fig12_micro_slowdown(benchmark, results_dir, micro_table):
    table = benchmark.pedantic(lambda: micro_table, rounds=1, iterations=1)
    print()
    print(table.render())
    table.save_json(results_dir / "fig12_13_14.json")

    by_name = {row.workload: row for row in table.rows}
    assert by_name["DAX-2"].slowdown > by_name["DAX-1"].slowdown
    for row in table.rows:
        assert 1.0 <= row.slowdown < 1.6, f"{row.workload}: out of band"
    # Micros must hurt more than the real workloads' few percent.
    assert table.mean("slowdown") > 1.05

    benchmark.extra_info["mean_slowdown"] = table.mean("slowdown")
    benchmark.extra_info["paper_mean"] = 1.2003
