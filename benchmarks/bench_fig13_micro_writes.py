"""Figure 13: synthetic micro NVM writes under FsEncr.

Paper: the swap micros (DAX-3/4) add metadata write-backs; DAX-3's
smaller arrays dirty more FECB/MECB lines per byte moved than DAX-4's
(less sequential reuse within one counter block), so its relative write
amplification is the higher of the two.
"""

from repro.analysis import figure12_to_14_micro


def test_fig13_micro_writes(benchmark, results_dir, micro_table):
    table = benchmark.pedantic(lambda: micro_table, rounds=1, iterations=1)
    print()
    print(table.render())

    by_name = {row.workload: row for row in table.rows}
    for name in ("DAX-3", "DAX-4"):
        assert by_name[name].normalized_writes >= 1.0
    assert (
        by_name["DAX-3"].normalized_writes >= by_name["DAX-4"].normalized_writes - 0.05
    )

    benchmark.extra_info["dax3_writes"] = by_name["DAX-3"].normalized_writes
    benchmark.extra_info["dax4_writes"] = by_name["DAX-4"].normalized_writes
