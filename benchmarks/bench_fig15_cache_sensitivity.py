"""Figure 15: FsEncr slowdown vs metadata-cache size.

Paper: sweeping the metadata cache from 128 KB to 2 MB (here 2 KB to
32 KB — spanning the same "smaller than the hot metadata" to "holds it
all" range for the scaled workloads), the real workloads (Fillrandom-L, Hashmap)
improve markedly with cache size — "natural utilisation in real
workloads" — while the synthetic DAX-2 improves only slightly, having
almost no metadata reuse for any cache to capture.
"""

import json

from repro.analysis import figure15_cache_sensitivity
from repro.analysis.experiments import render_sensitivity


def test_fig15_metadata_cache_sensitivity(benchmark, results_dir):
    curves = benchmark.pedantic(
        figure15_cache_sensitivity,
        kwargs=dict(pmemkv_ops=400, whisper_ops=1500, micro_iters=6000),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_sensitivity(curves))
    (results_dir / "fig15.json").write_text(
        json.dumps({k: {str(s): v for s, v in c.items()} for k, c in curves.items()}, indent=2)
    )

    for name, curve in curves.items():
        sizes = sorted(curve)
        # Largest cache should not be worse than the smallest.
        assert curve[sizes[-1]] <= curve[sizes[0]] + 1.0, f"{name}: no cache benefit"

    # Paper: "real persistent benchmarks perform significantly better
    # with larger cache ... the synthetic benchmark only improves
    # slightly" — compare *relative* overhead reduction across the sweep.
    def relative_improvement(curve):
        sizes = sorted(curve)
        start = max(curve[sizes[0]], 1e-9)
        return (curve[sizes[0]] - curve[sizes[-1]]) / start

    real_best = max(
        relative_improvement(curves["Fillrandom-L"]),
        relative_improvement(curves["Hashmap"]),
    )
    assert real_best > relative_improvement(curves["DAX-2"]), (
        "real workloads should respond to metadata-cache size more than DAX-2"
    )
    assert relative_improvement(curves["DAX-2"]) < 0.3, "DAX-2 should improve only slightly"

    benchmark.extra_info["curves"] = {
        name: {str(size): round(v, 3) for size, v in curve.items()}
        for name, curve in curves.items()
    }
