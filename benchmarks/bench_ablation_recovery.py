"""Ablation: Osiris vs Anubis recovery (§III-H's two citations).

The paper adopts Osiris for counter crash consistency and cites Anubis
as the fast-recovery alternative.  This ablation quantifies the trade
on the same crash state:

* **recovery work** — Osiris must trial-decrypt every potentially-stale
  written line (footprint-proportional); Anubis touches only the lines
  its shadow table names (cache-proportional).
* **runtime cost** — Anubis pays one shadow write per metadata-cache
  insertion; Osiris pays only its stop-loss write-throughs.

Expected: Anubis's recovery work is orders of magnitude below Osiris's
on a large footprint, while its runtime write stream is the larger of
the two — both papers' headline claims, reproduced side by side.
"""

from repro.secmem import check_line, encode_line
from repro.sim import MachineConfig

FOOTPRINT_LINES = 2000  # written metadata lines at crash time
CACHE_LINES = 64  # metadata-cache capacity in lines
STOP_LOSS = 4

CONFIG = MachineConfig(stop_loss=STOP_LOSS, anubis_shadow_lines=CACHE_LINES)


def run_osiris():
    plaintext = bytes(range(64))
    ecc = encode_line(plaintext)
    recovery = CONFIG.build_osiris_recovery()
    # Worst case: every line's persisted counter is maximally stale.
    for _ in range(FOOTPRINT_LINES):
        recovery.recover_counter(
            0,
            lambda candidate: plaintext if candidate == STOP_LOSS else bytes(64),
            lambda line: check_line(line, ecc),
        )
    return recovery.stats.stat("trials")


def run_anubis():
    shadow = CONFIG.build_anubis_shadow()
    resident = []
    for i in range(FOOTPRINT_LINES):
        addr = 0x4000 + i * 64
        if len(resident) == CACHE_LINES:
            shadow.note_evict(resident.pop(0))
        shadow.note_insert(addr)
        resident.append(addr)
    runtime_writes = shadow.stats.stat("shadow_writes")
    result = CONFIG.build_anubis_recovery().recover(shadow, lambda addr: None)
    return result.recovered_lines, runtime_writes


def run_both():
    return {"osiris_trials": run_osiris(), "anubis": run_anubis()}


def test_ablation_recovery_schemes(benchmark, results_dir):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    osiris_trials = results["osiris_trials"]
    anubis_lines, anubis_runtime_writes = results["anubis"]

    print()
    print(f"crash footprint: {FOOTPRINT_LINES} written metadata lines, "
          f"{CACHE_LINES}-line metadata cache")
    print(f"{'scheme':<10}{'recovery work':>16}{'runtime writes':>16}")
    print(f"{'Osiris':<10}{osiris_trials:>13} trials{0:>13}")
    print(f"{'Anubis':<10}{anubis_lines:>14} lines{anubis_runtime_writes:>16}")

    # Anubis: recovery bounded by the cache, far below Osiris's sweep.
    assert anubis_lines <= CACHE_LINES
    assert osiris_trials > anubis_lines * 10
    # Osiris: no runtime shadow stream (its stop-loss writes are charged
    # inside the controller, not here); Anubis pays ~2 writes per churn.
    assert anubis_runtime_writes >= FOOTPRINT_LINES

    benchmark.extra_info["osiris_trials"] = osiris_trials
    benchmark.extra_info["anubis_recovered_lines"] = anubis_lines
    benchmark.extra_info["anubis_runtime_writes"] = anubis_runtime_writes
