"""Ablation: shared vs partitioned metadata cache (§III-D).

The paper notes the metadata cache could be "partitioned ... to
equitably distribute the cache capacity" between MECB, FECB and
Merkle-tree lines.  This ablation runs both organisations at equal total
capacity on a real workload and an adversarial micro.

Expected: the shared organisation wins or ties on these workloads —
their MECB:FECB demand is naturally balanced (every DAX page needs one
of each), so static partitioning mostly strands capacity; partitioning
would only pay off under pathological interference.
"""

from dataclasses import replace

from repro.secmem import MetadataCacheConfig
from repro.sim import MachineConfig, Scheme
from repro.workloads import compare_schemes, make_dax_micro, make_pmemkv_workload


def run_pair(partitioned: bool):
    base = MachineConfig()
    config = base._replace(
        metadata_cache=replace(base.metadata_cache, partitioned=partitioned)
    )
    rows = {}
    for factory in (
        lambda: make_pmemkv_workload("Fillrandom-L", ops=300),
        lambda: make_dax_micro("DAX-2", iterations=5000),
    ):
        comparison = compare_schemes(
            factory, config=config, schemes=(Scheme.BASELINE_SECURE, Scheme.FSENCR)
        )
        row = comparison.against(Scheme.BASELINE_SECURE, Scheme.FSENCR)
        rows[row.workload] = row.overhead_percent
    return rows


def sweep():
    return {"shared": run_pair(False), "partitioned": run_pair(True)}


def test_ablation_metadata_cache_partitioning(benchmark, results_dir):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print(f"{'organisation':<14}" + "".join(f"{w:>16}" for w in results["shared"]))
    for organisation, rows in results.items():
        print(f"{organisation:<14}" + "".join(f"{v:>15.2f}%" for v in rows.values()))

    # Both organisations must stay in the sane FsEncr band.
    for rows in results.values():
        for workload, overhead in rows.items():
            assert -2.0 < overhead < 40.0, f"{workload}: {overhead}% out of band"

    benchmark.extra_info["results"] = {
        org: {w: round(v, 2) for w, v in rows.items()} for org, rows in results.items()
    }
