"""Ablation: FsEncr overhead vs read/write mix (YCSB A/B/C/D).

The paper observes that "write-intensive persistent benchmarks have
higher overheads compared to read-intensive applications" because every
write must be persisted and bumps counters on both layers.  The YCSB
core-workload ladder makes that a single controlled knob: A (50 %
reads) -> B (95 %) -> C (100 %).

Expected: FsEncr's slowdown and write amplification decrease
monotonically (within noise) as the mix gets more read-heavy, vanishing
at YCSB-C.
"""

from repro.sim import Scheme
from repro.workloads import compare_schemes
from repro.workloads.whisper import YcsbWorkload


def run_mixes():
    rows = {}
    for mix in ("A", "B", "C", "D"):
        comparison = compare_schemes(
            lambda m=mix: YcsbWorkload(ops=1500, mix=m),
            schemes=(Scheme.BASELINE_SECURE, Scheme.FSENCR),
        )
        row = comparison.against(Scheme.BASELINE_SECURE, Scheme.FSENCR)
        rows[mix] = row
    return rows


def test_ablation_ycsb_mixes(benchmark, results_dir):
    rows = benchmark.pedantic(run_mixes, rounds=1, iterations=1)

    print()
    print(f"{'mix':<6}{'read ratio':>11}{'slowdown':>10}{'writes':>9}")
    from repro.workloads.whisper import YCSB_MIXES

    for mix, row in rows.items():
        print(f"{mix:<6}{YCSB_MIXES[mix]:>11.2f}{row.slowdown:>10.3f}"
              f"{row.normalized_writes:>9.3f}")

    # Write-heavier mixes must not be cheaper than read-mostly ones.
    assert rows["A"].slowdown >= rows["B"].slowdown - 0.02
    assert rows["B"].slowdown >= rows["C"].slowdown - 0.02
    # Read-only: essentially free (the paper's read benchmarks story).
    assert rows["C"].slowdown < 1.05

    benchmark.extra_info["slowdowns"] = {
        mix: round(row.slowdown, 4) for mix, row in rows.items()
    }
