"""Ablation: the cost of minor-counter overflow (page re-encryption).

A 7-bit minor counter overflows after 128 writes to one line; the major
counter bumps and the whole 4 KB page re-encrypts (64 reads + 64
writes).  §VI argues this is rare in practice; this ablation hammers a
single line until overflow dominates, then toggles the
``model_counter_overflow`` switch to isolate its contribution.

Expected: with ~hundreds of writes to one hot line, overflows appear at
the predicted 1/128 rate and re-encryption traffic is visible but
bounded; disabling the model recovers the difference exactly.
"""

from repro.mem import MemoryRequest
from repro.secmem import (
    BaselineSecureController,
    MetadataLayout,
    SecureControllerConfig,
)


LAYOUT = MetadataLayout(data_bytes=16 * 1024 * 1024, ott_region_bytes=32 * 1024)
HOT_WRITES = 1024  # 8 overflows of one line's minor counter


def hammer(model_overflow: bool):
    # White-box ablation: hammers one counter line against a bare
    # controller (no machine, no results registry) to isolate the
    # overflow path's cost; stats are read off the controller bundle.
    # repro-lint: disable=config-not-component,stats-registered,builder-owns-wiring
    controller = BaselineSecureController(
        layout=LAYOUT,
        config=SecureControllerConfig(model_counter_overflow=model_overflow),
    )
    total_latency = 0.0
    for _ in range(HOT_WRITES):
        total_latency += controller.access(MemoryRequest(addr=0x8000, is_write=True))
    return controller, total_latency


def run_both():
    return {flag: hammer(flag) for flag in (True, False)}


def test_ablation_counter_overflow(benchmark, results_dir):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    with_model, latency_on = results[True]
    without_model, latency_off = results[False]

    overflows = with_model.stats.stat("minor_overflows")
    reencryptions = with_model.stats.stat("page_reencryptions")
    print()
    print(f"writes to one line: {HOT_WRITES}")
    print(f"minor overflows: {overflows} (predicted {HOT_WRITES // 128})")
    print(f"page re-encryptions: {reencryptions}")
    print(f"latency with/without overflow model: "
          f"{latency_on / 1e3:.1f}us / {latency_off / 1e3:.1f}us "
          f"(+{(latency_on / latency_off - 1) * 100:.1f}%)")

    assert overflows == HOT_WRITES // 128
    assert reencryptions == overflows
    assert without_model.stats.stat("page_reencryptions") == 0
    assert latency_on > latency_off
    # Amortised, the re-encryption burden stays bounded (§VI's claim
    # that overflow handling need not frighten anyone).
    assert latency_on / latency_off < 2.0

    benchmark.extra_info["overflow_amortized_overhead"] = latency_on / latency_off - 1
