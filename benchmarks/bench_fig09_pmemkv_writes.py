"""Figure 9: PMEMKV NVM writes — FsEncr normalised to baseline.

Paper: FsEncr adds write traffic from FECB/Merkle metadata write-backs
and Osiris persists of the file counters — noticeable on write-heavy
benchmarks, near-nil on read benchmarks.
"""

from repro.analysis import figure8_to_10_pmemkv


def test_fig09_pmemkv_writes(benchmark, results_dir, pmemkv_table):
    table = benchmark.pedantic(lambda: pmemkv_table, rounds=1, iterations=1)
    print()
    print(table.render())

    by_name = {row.workload: row for row in table.rows}
    write_benches = ["Fillrandom-S", "Fillrandom-L", "Fillseq-S", "Fillseq-L",
                     "Overwrite-S", "Overwrite-L"]
    for name in write_benches:
        row = by_name[name]
        assert 1.0 <= row.normalized_writes < 1.6, (
            f"{name}: write amplification {row.normalized_writes} out of band"
        )

    benchmark.extra_info["mean_normalized_writes"] = table.mean("normalized_writes")
