"""Figure 3: the motivation — software filesystem encryption vs ext4-dax.

Paper: eCryptfs over emulated PMEM incurs ~2.7x average slowdown across
the Whisper benchmarks, with YCSB around 5x, versus plain ext4-dax.

Shape expectations checked here:
* every workload slows down under software encryption (ratio > 1.3);
* YCSB is the worst case by a clear margin;
* the average lands in "multiples", not "percent".
"""

from repro.analysis import figure3_software_encryption


def test_fig03_software_encryption_overhead(benchmark, results_dir):
    table = benchmark.pedantic(
        figure3_software_encryption, rounds=1, iterations=1
    )
    print()
    print(table.render())
    table.save_json(results_dir / "fig03.json")

    by_name = {row.workload: row for row in table.rows}
    for row in table.rows:
        assert row.slowdown > 1.3, f"{row.workload}: software encryption too cheap"
    assert by_name["YCSB"].slowdown == max(r.slowdown for r in table.rows)
    assert table.mean("slowdown") > 2.0  # "multiples" territory

    benchmark.extra_info["mean_slowdown"] = table.mean("slowdown")
    benchmark.extra_info["ycsb_slowdown"] = by_name["YCSB"].slowdown
    benchmark.extra_info["paper_mean"] = 2.7
    benchmark.extra_info["paper_ycsb"] = 5.0
