"""Figure 10: PMEMKV NVM reads — FsEncr normalised to baseline.

Paper: extra reads come from FECB fetches and the deeper Merkle walks on
metadata misses; random-access benchmarks show more than sequential
(less counter-line reuse), and -S fills more than -L fills in relative
terms (more distinct counter lines per byte of payload).
"""

from repro.analysis import figure8_to_10_pmemkv


def test_fig10_pmemkv_reads(benchmark, results_dir, pmemkv_table):
    table = benchmark.pedantic(lambda: pmemkv_table, rounds=1, iterations=1)
    print()
    print(table.render())

    for row in table.rows:
        if row.normalized_reads > 0:  # pure-write phases may read ~nothing
            assert 0.95 <= row.normalized_reads < 1.6, (
                f"{row.workload}: read amplification {row.normalized_reads} out of band"
            )

    by_name = {row.workload: row for row in table.rows}
    assert (
        by_name["Fillrandom-S"].normalized_reads
        >= by_name["Fillseq-S"].normalized_reads - 0.02
    ), "random fills should see at least sequential fills' extra reads"

    benchmark.extra_info["mean_normalized_reads"] = table.mean("normalized_reads")
