"""Ablation: the Osiris stop-loss knob under systematic crash sweeps.

The stop-loss window trades runtime counter write-throughs against
recovery-time trial decryptions (§III-H adopts Osiris precisely for
this trade).  This ablation drives the crash/fault-injection subsystem
across the knob: for each ``stop_loss`` it crash-sweeps a small DAX
micro-workload at sampled persist boundaries with a fully-drained ADR
(no torn or dropped lines — pure counter-staleness recovery), and runs
the same workload uninterrupted to count the stop-loss write stream.

Expected: every crash point recovers with zero silent corruption at
every window size; recovery trials grow with the window while runtime
counter persists shrink — the two ends of the Osiris trade, measured.
"""

from repro.faults.plan import FaultPlan
from repro.faults.sweep import sweep_workload, workload_factory
from repro.sim import Machine, MachineConfig, Scheme

STOP_LOSSES = (1, 2, 4, 8)
ITERATIONS = 12
POINTS = 4
SEED = 0xAB1A


def run_stop_loss(stop_loss: int):
    config = MachineConfig(scheme=Scheme.FSENCR, stop_loss=stop_loss)
    # All-drained plan: the WPQ tail survives, so the only recovery work
    # is trial-decrypting counters stale within the stop-loss window.
    plan = FaultPlan(seed=SEED, drain_fraction=1.0, torn_probability=0.0)
    sweep = sweep_workload(
        workload_factory("DAX-3", iterations=ITERATIONS),
        config,
        plan=plan,
        max_points=POINTS,
        seed=SEED,
        name=f"DAX-3/sl={stop_loss}",
    )

    # The same workload, uninterrupted, for the runtime write stream.
    machine = Machine(config)
    workload = workload_factory("DAX-3", iterations=ITERATIONS)()
    workload.setup(machine)
    workload.run(machine)
    runtime = machine.result(f"DAX-3/sl={stop_loss}")
    persists = runtime.stat("controller.osiris_counter_persists")

    return {
        "silent": sweep.silent_corruptions,
        "outcomes": sweep.outcome_totals(),
        "trials": sum(point.trials for point in sweep.points),
        "recovery_ns": sum(point.recovery_ns for point in sweep.points),
        "runtime_persists": persists,
    }


def run_sweep():
    return {sl: run_stop_loss(sl) for sl in STOP_LOSSES}


def test_ablation_crash_sweep_stop_loss(benchmark, results_dir):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print()
    print(f"{'stop_loss':>10}{'trials':>8}{'recovery (us)':>15}{'runtime persists':>18}")
    for sl, row in sorted(results.items()):
        print(
            f"{sl:>10}{row['trials']:>8}{row['recovery_ns'] / 1000.0:>15.1f}"
            f"{row['runtime_persists']:>18.0f}"
        )

    # The invariant the subsystem exists to check: no crash point, at any
    # window size, may leave a written line silently corrupted.
    for sl, row in results.items():
        assert row["silent"] == 0, f"stop_loss={sl}: silent corruption"
    # Wider window -> more recovery work...
    assert results[8]["trials"] >= results[1]["trials"]
    # ...but fewer runtime counter write-throughs.
    assert results[1]["runtime_persists"] > results[8]["runtime_persists"]

    benchmark.extra_info["trials_by_stop_loss"] = {
        sl: row["trials"] for sl, row in results.items()
    }
    benchmark.extra_info["runtime_persists_by_stop_loss"] = {
        sl: row["runtime_persists"] for sl, row in results.items()
    }


def run_matrix():
    from repro.faults.sweep import sweep_matrix

    return sweep_matrix(
        workload_factory("DAX-3", iterations=ITERATIONS),
        MachineConfig(),
        max_points=2,
        seed=SEED,
        name="DAX-3",
    )


def test_ablation_crash_sweep_scheme_matrix(benchmark, results_dir):
    """The universal claim: every (scheme, fault-profile) cell of the
    matrix — FsEncr, the secure baseline, and FsEncr with the explicit
    WPQ model, each under mixed / torn-burst / counter-flip faults —
    recovers or detects every line, never silently corrupts."""
    matrix = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    print()
    print(matrix.summary())
    matrix.assert_invariant()
    assert len(matrix.cells) == 9  # 3 schemes x 3 profiles

    # Each profile must have really exercised its fault type somewhere.
    torn_bursts = meta_flips = 0
    for (_, profile), cell in matrix.cells.items():
        for point in cell.points:
            if profile == "torn-burst":
                torn_bursts += point.dispositions.get("torn_bursts", 0)
            if profile == "counter-flips":
                meta_flips += point.dispositions.get("metadata_flips", 0)
    assert torn_bursts > 0
    assert meta_flips > 0

    benchmark.extra_info["silent_by_cell"] = {
        f"{scheme}/{profile}": cell.silent_corruptions
        for (scheme, profile), cell in sorted(matrix.cells.items())
    }
