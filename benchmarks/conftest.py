"""Benchmark-suite configuration.

Each ``bench_*`` module regenerates one of the paper's tables/figures.
``pytest benchmarks/ --benchmark-only`` runs them all and prints the
paper-style result tables; JSON copies land in ``benchmarks/results/``
for EXPERIMENTS.md.

Workload sizes are chosen so the whole suite completes in minutes of
wall-clock; the shapes (who wins, by what factor, where crossovers sit)
are stable at these sizes.  Crank the ``*_OPS`` constants in
``repro.analysis.experiments`` for higher-fidelity runs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


# One experiment run feeds multiple figures (Figures 8/9/10 are three
# views of the same runs; likewise 12/13/14).  A single session-scoped
# ExperimentRunner gives every bench the same sharing — the first caller
# simulates a cell, every later figure built from the same cells is
# served from the runner's content-addressed cache — while also sharing
# with past suite invocations through ``.repro-cache/`` on disk.
@pytest.fixture(scope="session")
def experiment_runner():
    from repro.exec import ExperimentRunner

    return ExperimentRunner(jobs=1)


@pytest.fixture(scope="session")
def pmemkv_table(experiment_runner):
    from repro.analysis import figure8_to_10_pmemkv

    return figure8_to_10_pmemkv(runner=experiment_runner)


@pytest.fixture(scope="session")
def micro_table(experiment_runner):
    from repro.analysis import figure12_to_14_micro

    return figure12_to_14_micro(runner=experiment_runner)
