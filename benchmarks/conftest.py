"""Benchmark-suite configuration.

Each ``bench_*`` module regenerates one of the paper's tables/figures.
``pytest benchmarks/ --benchmark-only`` runs them all and prints the
paper-style result tables; JSON copies land in ``benchmarks/results/``
for EXPERIMENTS.md.

Workload sizes are chosen so the whole suite completes in minutes of
wall-clock; the shapes (who wins, by what factor, where crossovers sit)
are stable at these sizes.  Crank the ``*_OPS`` constants in
``repro.analysis.experiments`` for higher-fidelity runs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


# One experiment run feeds multiple figures (Figures 8/9/10 are three
# views of the same runs; likewise 12/13/14).  These session caches let
# the first bench do the work and the siblings reuse it — the suite
# stays a faithful regeneration while avoiding 3x the simulation time.
_shared_tables = {}


@pytest.fixture(scope="session")
def pmemkv_table():
    from repro.analysis import figure8_to_10_pmemkv

    if "pmemkv" not in _shared_tables:
        _shared_tables["pmemkv"] = figure8_to_10_pmemkv()
    return _shared_tables["pmemkv"]


@pytest.fixture(scope="session")
def micro_table():
    from repro.analysis import figure12_to_14_micro

    if "micro" not in _shared_tables:
        _shared_tables["micro"] = figure12_to_14_micro()
    return _shared_tables["micro"]
