"""Figure 11 (a/b/c): Whisper benchmarks under FsEncr.

Paper: ~3.8% average slowdown over all persistent benchmarks; the
Whisper trio lands in single-digit percent, a ~98% reduction of the
software-encryption overhead of Figure 3.
"""

from repro.analysis import figure3_software_encryption, figure11_whisper


def test_fig11_whisper_all_series(benchmark, results_dir):
    table = benchmark.pedantic(figure11_whisper, rounds=1, iterations=1)
    print()
    print(table.render())
    table.save_json(results_dir / "fig11.json")

    for row in table.rows:
        assert 0.97 < row.slowdown < 1.25, f"{row.workload}: out of band"
    assert table.mean("slowdown") < 1.15

    benchmark.extra_info["mean_slowdown"] = table.mean("slowdown")
    benchmark.extra_info["paper_mean"] = 1.038


def test_fig11_vs_fig3_overhead_reduction(benchmark, results_dir):
    """The paper's headline comparison: FsEncr removes ~98.33% of the
    software-encryption overhead on the Whisper workloads."""

    def run_both():
        return figure11_whisper(), figure3_software_encryption()

    fsencr_table, software_table = benchmark.pedantic(run_both, rounds=1, iterations=1)
    sw_overhead = software_table.mean("slowdown") - 1.0
    hw_overhead = fsencr_table.mean("slowdown") - 1.0
    reduction = 1.0 - hw_overhead / sw_overhead
    print(f"\noverhead reduction vs software encryption: {reduction:.2%} "
          f"(paper: 98.33%)")
    assert reduction > 0.9

    benchmark.extra_info["overhead_reduction"] = reduction
    benchmark.extra_info["paper_reduction"] = 0.9833
