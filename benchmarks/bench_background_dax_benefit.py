"""Background claim (Figure 1 / §II-B): what DAX itself buys.

Before any encryption enters the picture, the paper's premise is that
the conventional access path — fault, filesystem + driver layers, 4 KB
copy into the page cache — dominates NVM's sub-100 ns access latency,
and DAX deletes it.  This benchmark quantifies that premise in the
model: the same workloads under the conventional page-cached filesystem
vs plain ext4-dax.

Expected: DAX wins on every workload, most on the cache-thrashing ones
(every re-fault on the conventional path is a fresh 4 KB copy).
"""

from repro.sim import Scheme
from repro.workloads import compare_schemes, make_whisper_workload


def run_all():
    rows = {}
    for name in ("YCSB", "Hashmap", "CTree"):
        comparison = compare_schemes(
            lambda n=name: make_whisper_workload(n, ops=1200),
            schemes=(Scheme.EXT4DAX_PLAIN, Scheme.CONVENTIONAL),
        )
        row = comparison.against(Scheme.EXT4DAX_PLAIN, Scheme.CONVENTIONAL)
        rows[name] = row.slowdown  # conventional / dax = DAX's speedup
    return rows


def test_background_dax_benefit(benchmark, results_dir):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print(f"{'workload':<10}{'conventional / ext4-dax':>26}")
    for name, factor in rows.items():
        print(f"{name:<10}{factor:>23.2f}x")

    for name, factor in rows.items():
        assert factor > 1.05, f"{name}: DAX shows no benefit ({factor:.2f}x)"

    benchmark.extra_info["dax_speedups"] = {k: round(v, 2) for k, v in rows.items()}
