"""Figure 8: PMEMKV slowdown — FsEncr normalised to baseline security.

Paper: small single-digit-percent slowdowns for most PMEMKV benchmarks
(part of the overall 3.8% average across persistent workloads), with
write benchmarks above read benchmarks (persist-path pressure) and
``-L`` value sizes above ``-S`` (poorer metadata-cache utilisation: one
counter line covers 64 x 64 B values but only one 4 KB value).
"""

from repro.analysis import figure8_to_10_pmemkv


def test_fig08_pmemkv_slowdown(benchmark, results_dir, pmemkv_table):
    table = benchmark.pedantic(lambda: pmemkv_table, rounds=1, iterations=1)
    print()
    print(table.render())
    table.save_json(results_dir / "fig08_09_10.json")

    by_name = {row.workload: row for row in table.rows}

    # FsEncr must stay in "percent" territory, not "multiples".
    assert table.mean("slowdown") < 1.25
    for row in table.rows:
        assert row.slowdown < 1.4, f"{row.workload}: FsEncr overhead out of band"
        assert row.slowdown > 0.97, f"{row.workload}: suspicious speedup"

    # Write benchmarks hurt more than read benchmarks.
    fill_mean = (by_name["Fillrandom-S"].slowdown + by_name["Fillseq-S"].slowdown) / 2
    read_mean = (by_name["Readrandom-S"].slowdown + by_name["Readseq-S"].slowdown) / 2
    assert fill_mean > read_mean

    benchmark.extra_info["mean_slowdown"] = table.mean("slowdown")
    benchmark.extra_info["paper_overall_mean"] = 1.038
