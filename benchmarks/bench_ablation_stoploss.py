"""Ablation: Osiris stop-loss distance vs NVM write traffic.

Osiris bounds counter staleness to ``stop_loss`` updates per counter
line; each bound hit is a forced counter write to NVM.  Sweeping the
bound trades write traffic (and NVM wear) against post-crash recovery
work (the number of trial decryptions recovery may need).

Expected: forced counter persists drop superlinearly as the bound
relaxes (stop_loss=1 persists every update; 16 almost never), while the
worst-case recovery trials grow linearly — the knob the Osiris paper
exposes, reproduced here end to end.
"""

from repro.sim import MachineConfig, Scheme
from repro.workloads import make_pmemkv_workload, run_workload


def run_with_stop_loss(stop_loss: int):
    config = MachineConfig(scheme=Scheme.FSENCR, stop_loss=stop_loss)
    return run_workload(config, make_pmemkv_workload("Overwrite-S", ops=400))


def sweep():
    return {sl: run_with_stop_loss(sl) for sl in (1, 4, 16)}


def test_ablation_osiris_stop_loss(benchmark, results_dir):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print(f"{'stop_loss':>10}{'NVM writes':>12}{'forced persists':>17}{'max recovery trials':>21}")
    persists = {}
    for stop_loss, result in sorted(results.items()):
        forced = result.stat("controller.osiris_counter_persists") + result.stat(
            "controller.osiris_fecb_persists"
        )
        persists[stop_loss] = forced
        print(f"{stop_loss:>10}{result.nvm_writes:>12}{forced:>17.0f}{stop_loss + 1:>21}")

    # Tighter bound => strictly more forced persists and more writes.
    assert persists[1] > persists[4] > persists[16]
    assert results[1].nvm_writes > results[16].nvm_writes

    benchmark.extra_info["forced_persists"] = {str(k): v for k, v in persists.items()}
