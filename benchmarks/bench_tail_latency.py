"""Distribution-level analysis: FsEncr fattens the tail, not the median.

Not a paper figure — the distribution view behind the paper's averages.
The Figure-2 design point ("only XOR latency is added") predicts the
*median* access is untouched by FsEncr, because the pads hide under the
data fetch whenever metadata hits on-chip.  The overhead the figures
measure must therefore live in the tail: metadata-miss accesses that
serialise counter fetches and Merkle walks in front of the data.
"""

from repro.analysis.tails import render_tails, tail_latency_comparison
from repro.sim import Scheme
from repro.workloads import make_pmemkv_workload


def run():
    return tail_latency_comparison(
        lambda: make_pmemkv_workload("Fillrandom-S", ops=800),
        schemes=(Scheme.BASELINE_SECURE, Scheme.FSENCR),
    )


def test_tail_latency_signature(benchmark, results_dir):
    summaries = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_tails(summaries))

    baseline = summaries[Scheme.BASELINE_SECURE.value]
    fsencr = summaries[Scheme.FSENCR.value]

    # Flat median: the common case is within a bucket of the baseline.
    assert fsencr["p50_ns"] <= baseline["p50_ns"] * 2.0
    # The overhead exists (mean moved)...
    assert fsencr["mean_ns"] >= baseline["mean_ns"] * 0.98
    # ...and the tail carries at least its share.
    assert fsencr["p99_ns"] >= baseline["p99_ns"] * 0.95

    benchmark.extra_info["baseline"] = baseline
    benchmark.extra_info["fsencr"] = fsencr
