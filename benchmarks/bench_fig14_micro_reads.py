"""Figure 14: synthetic micro NVM reads under FsEncr.

Paper: random-placement micros (DAX-3/4) read extra metadata on each
cold arrival; the streaming micros (DAX-1/2) amortise their counter
fetches over a page's worth of touches, so their read amplification is
mild.
"""

from repro.analysis import figure12_to_14_micro


def test_fig14_micro_reads(benchmark, results_dir, micro_table):
    table = benchmark.pedantic(lambda: micro_table, rounds=1, iterations=1)
    print()
    print(table.render())

    by_name = {row.workload: row for row in table.rows}
    for row in table.rows:
        assert row.normalized_reads >= 0.95, f"{row.workload}: reads dropped?"
    assert by_name["DAX-3"].normalized_reads > by_name["DAX-1"].normalized_reads

    benchmark.extra_info["mean_normalized_reads"] = table.mean("normalized_reads")
