"""Ablation: does the Open Tunnel Table's size matter?

The paper sizes the OTT at 8 x 128 = 1024 entries and asserts its
management "has a very negligible impact on system performance" because
installs happen only at create/open time.  This ablation tests the claim
adversarially: the many-files workload opens more encrypted files than a
*shrunken* OTT holds, forcing spills to and refills from the encrypted
memory region on the access path.

Expected: even an 8-entry OTT costs only a few percent (refills are one
region probe burst per file re-touch), and the paper-size table makes
the cost vanish — the claim holds with room to spare.
"""

from repro.sim import Machine, MachineConfig, Scheme
from repro.workloads import ManyFilesWorkload


def run_with_ott(entries: int, num_files: int = 48, rounds: int = 6):
    # Small metadata cache + wide per-file footprints: FECB lines get
    # evicted between rounds, so re-fetching them re-consults the OTT —
    # and the shrunken tables must refill from the encrypted region.
    config = MachineConfig(
        scheme=Scheme.FSENCR, ott_banks=1, ott_entries_per_bank=entries
    ).with_metadata_cache(4 * 1024)
    machine = Machine(config)
    machine.add_user(uid=1000, gid=100, passphrase="pw")
    workload = ManyFilesWorkload(
        num_files=num_files, rounds=rounds, pages_per_file=8, touches_per_round=4
    )
    workload.run(machine)
    return machine.result(f"ManyFiles/ott={entries}")


def sweep():
    return {entries: run_with_ott(entries) for entries in (8, 32, 1024)}


def test_ablation_ott_size(benchmark, results_dir):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print(f"{'OTT entries':>12}{'elapsed (ms)':>14}{'refills':>9}{'spills':>8}")
    baseline = results[1024]
    for entries, result in sorted(results.items()):
        print(
            f"{entries:>12}{result.elapsed_ns / 1e6:>14.3f}"
            f"{result.stat('controller.ott_refills'):>9.0f}"
            f"{result.stat('controller.ott_spills'):>8.0f}"
        )

    # The tiny table must actually be stressed...
    assert results[8].stat("controller.ott_refills") > 0
    # ...and the paper-size table must not be.
    assert results[1024].stat("controller.ott_refills") == 0
    # The paper's negligibility claim: even stressed, the overhead is
    # small; at paper size it is essentially zero.
    tiny_overhead = results[8].elapsed_ns / baseline.elapsed_ns - 1
    assert tiny_overhead < 0.10, f"tiny-OTT overhead {tiny_overhead:.1%} too large"

    benchmark.extra_info["tiny_ott_overhead"] = tiny_overhead
