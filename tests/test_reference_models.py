"""Equivalence against brute-force reference models (hypothesis).

The cache and OTT implementations use ordered-dict tricks for speed;
these tests pit them against deliberately naive reference
implementations over random operation sequences, plus munmap semantics
on the machine.
"""

from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OpenTunnelTable, OTTEntry
from repro.mem import CacheConfig, SetAssociativeCache
from repro.sim import Machine, MachineConfig, Scheme


class _ReferenceLRUSet:
    """A transparently naive LRU set of fixed capacity."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.order = []  # LRU -> MRU

    def touch(self, key):
        hit = key in self.order
        if hit:
            self.order.remove(key)
        evicted = None
        if not hit and len(self.order) >= self.capacity:
            evicted = self.order.pop(0)
        self.order.append(key)
        return hit, evicted


class TestCacheVsReference:
    @given(
        addrs=st.lists(st.integers(0, 15).map(lambda x: x * 64), min_size=1, max_size=300)
    )
    @settings(max_examples=25, deadline=None)
    def test_fully_associative_equivalence(self, addrs):
        """One-set cache == plain LRU list: identical hits and victims."""
        ways = 4
        cache = SetAssociativeCache(
            CacheConfig(name="t", size_bytes=ways * 64, ways=ways)
        )
        reference = _ReferenceLRUSet(capacity=ways)
        for addr in addrs:
            hit, eviction = cache.access(addr, is_write=False)
            ref_hit, ref_evicted = reference.touch(addr // 64)
            assert hit == ref_hit
            if eviction is None:
                assert ref_evicted is None
            else:
                assert eviction.addr // 64 == ref_evicted

    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 31).map(lambda x: x * 64), st.booleans()),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_set_mapping_equivalence(self, ops):
        """Multi-set cache == independent per-set LRU references."""
        ways, sets = 2, 4
        cache = SetAssociativeCache(
            CacheConfig(name="t", size_bytes=ways * sets * 64, ways=ways)
        )
        references = [_ReferenceLRUSet(capacity=ways) for _ in range(sets)]
        for addr, is_write in ops:
            line = addr // 64
            hit, _ = cache.access(addr, is_write)
            ref_hit, _ = references[line % sets].touch(line)
            assert hit == ref_hit


class TestOttVsReference:
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["insert", "lookup", "remove"]), st.integers(0, 9)),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_ott_equivalence(self, ops):
        ott = OpenTunnelTable(banks=1, entries_per_bank=4)
        reference: "OrderedDict[int, bytes]" = OrderedDict()
        for op, file_id in ops:
            key = bytes([file_id]) * 16
            if op == "insert":
                ott.insert(OTTEntry(group_id=1, file_id=file_id, key=key))
                if file_id in reference:
                    reference.move_to_end(file_id)
                    reference[file_id] = key
                else:
                    if len(reference) >= 4:
                        reference.popitem(last=False)
                    reference[file_id] = key
            elif op == "lookup":
                found = ott.lookup(1, file_id)
                if file_id in reference:
                    reference.move_to_end(file_id)
                    assert found is not None and found.key == reference[file_id]
                else:
                    assert found is None
            else:
                removed = ott.remove(1, file_id)
                assert removed == (reference.pop(file_id, None) is not None)
        assert len(ott) == len(reference)


class TestMunmap:
    def _machine(self):
        machine = Machine(MachineConfig(scheme=Scheme.FSENCR, functional=True))
        machine.add_user(uid=1000, gid=100, passphrase="p")
        return machine

    def test_unmapped_access_faults(self):
        from repro.kernel import PageFault

        machine = self._machine()
        handle = machine.create_file("/pmem/f", uid=1000)
        base = machine.mmap(handle, pages=2)
        machine.load(base, 8)
        machine.munmap(base)
        with pytest.raises(PageFault):
            machine.load(base, 8)

    def test_data_survives_remap(self):
        machine = self._machine()
        handle = machine.create_file("/pmem/f", uid=1000, encrypted=True)
        base = machine.mmap(handle, pages=1)
        machine.store_bytes(base, b"durable across munmap")
        machine.munmap(base)
        fresh = machine.open_file("/pmem/f", uid=1000)
        base2 = machine.mmap(fresh, pages=1)
        assert machine.load_bytes(base2, 21) == b"durable across munmap"

    def test_unknown_base_rejected(self):
        machine = self._machine()
        with pytest.raises(ValueError):
            machine.munmap(0xABCDE000)

    def test_other_mappings_unaffected(self):
        machine = self._machine()
        a = machine.create_file("/pmem/a", uid=1000)
        b = machine.create_file("/pmem/b", uid=1000)
        base_a = machine.mmap(a, pages=1)
        base_b = machine.mmap(b, pages=1)
        machine.load(base_b, 8)
        machine.munmap(base_a)
        machine.load(base_b, 8)  # still mapped
