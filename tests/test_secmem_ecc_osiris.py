"""SEC-DED ECC codec and Osiris stop-loss crash consistency."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.secmem import (
    CounterRecoveryError,
    OsirisRecovery,
    OsirisTracker,
    check_line,
    check_word,
    encode_line,
    encode_word,
)


class TestEccWord:
    def test_zero_word(self):
        assert check_word(0, encode_word(0))

    def test_roundtrip(self):
        for word in (1, 0xDEADBEEF, (1 << 64) - 1, 0x0123456789ABCDEF):
            assert check_word(word, encode_word(word))

    def test_single_bit_flip_detected(self):
        word = 0xDEADBEEF
        ecc = encode_word(word)
        for bit in (0, 13, 63):
            assert not check_word(word ^ (1 << bit), ecc)

    def test_double_bit_flip_detected(self):
        word = 0xCAFEBABE
        ecc = encode_word(word)
        assert not check_word(word ^ 0b11, ecc)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            encode_word(1 << 64)
        with pytest.raises(ValueError):
            encode_word(-1)

    @given(word=st.integers(0, (1 << 64) - 1), bit=st.integers(0, 63))
    @settings(max_examples=50, deadline=None)
    def test_any_single_flip_detected_property(self, word, bit):
        assert not check_word(word ^ (1 << bit), encode_word(word))


class TestEccLine:
    def test_roundtrip(self):
        line = bytes(range(64))
        assert check_line(line, encode_line(line))

    def test_corrupt_byte_detected(self):
        line = bytes(range(64))
        ecc = encode_line(line)
        corrupted = bytes([line[0] ^ 0xFF]) + line[1:]
        assert not check_line(corrupted, ecc)

    def test_garbage_line_fails_with_high_probability(self):
        """A wrongly-decrypted line looks random; at least one of its
        eight words must fail — this is what Osiris recovery leans on."""
        line = bytes(range(64))
        ecc = encode_line(line)
        import hashlib

        failures = 0
        for trial in range(32):
            garbage = hashlib.sha256(bytes([trial])).digest() * 2
            if not check_line(garbage, ecc):
                failures += 1
        assert failures == 32

    def test_size_validation(self):
        with pytest.raises(ValueError):
            encode_line(bytes(32))
        with pytest.raises(ValueError):
            check_line(bytes(64), bytes(4))


class TestOsirisTracker:
    def test_persist_forced_at_stop_loss(self):
        tracker = OsirisTracker(stop_loss=3)
        assert tracker.note_update(0) is False
        assert tracker.note_update(0) is False
        assert tracker.note_update(0) is True  # 3rd update forces persist
        assert tracker.distance(0) == 0

    def test_lines_tracked_independently(self):
        tracker = OsirisTracker(stop_loss=2)
        tracker.note_update(0)
        assert tracker.note_update(64) is False
        assert tracker.note_update(0) is True

    def test_external_persist_resets_distance(self):
        tracker = OsirisTracker(stop_loss=4)
        tracker.note_update(0)
        tracker.note_persisted(0)  # e.g. metadata-cache eviction
        assert tracker.distance(0) == 0
        assert tracker.note_update(0) is False

    def test_pending_lines(self):
        tracker = OsirisTracker(stop_loss=4)
        tracker.note_update(0)
        tracker.note_update(64)
        tracker.note_persisted(64)
        assert tracker.pending_lines() == {0: 1}

    def test_stop_loss_validation(self):
        with pytest.raises(ValueError):
            OsirisTracker(stop_loss=0)

    def test_stop_loss_one_always_persists(self):
        tracker = OsirisTracker(stop_loss=1)
        assert tracker.note_update(0) is True
        assert tracker.note_update(0) is True


class TestOsirisRecovery:
    @staticmethod
    def _scheme(true_counter: int):
        """A toy counter-keyed cipher: XOR with a counter-derived pad."""
        import hashlib

        plaintext = bytes(range(64))
        ecc = encode_line(plaintext)

        def pad(counter: int) -> bytes:
            return hashlib.sha256(counter.to_bytes(8, "big")).digest() * 2

        ciphertext = bytes(a ^ b for a, b in zip(plaintext, pad(true_counter)))

        def decrypt_with(candidate: int) -> bytes:
            return bytes(a ^ b for a, b in zip(ciphertext, pad(candidate)))

        def ecc_ok(line: bytes) -> bool:
            return check_line(line, ecc)

        return decrypt_with, ecc_ok

    def test_recovers_exact_counter(self):
        decrypt_with, ecc_ok = self._scheme(true_counter=7)
        result = OsirisRecovery(stop_loss=4).recover_counter(7, decrypt_with, ecc_ok)
        assert result.recovered_value == 7
        assert result.trials == 1

    def test_recovers_ahead_of_persisted(self):
        decrypt_with, ecc_ok = self._scheme(true_counter=10)
        result = OsirisRecovery(stop_loss=4).recover_counter(7, decrypt_with, ecc_ok)
        assert result.recovered_value == 10
        assert result.trials == 4

    def test_recovery_at_stop_loss_boundary(self):
        decrypt_with, ecc_ok = self._scheme(true_counter=11)
        result = OsirisRecovery(stop_loss=4).recover_counter(7, decrypt_with, ecc_ok)
        assert result.recovered_value == 11

    def test_beyond_stop_loss_fails(self):
        decrypt_with, ecc_ok = self._scheme(true_counter=12)
        with pytest.raises(CounterRecoveryError):
            OsirisRecovery(stop_loss=4).recover_counter(7, decrypt_with, ecc_ok)

    def test_stats(self):
        decrypt_with, ecc_ok = self._scheme(true_counter=9)
        recovery = OsirisRecovery(stop_loss=4)
        recovery.recover_counter(7, decrypt_with, ecc_ok)
        assert recovery.stats.get("recovered") == 1
        assert recovery.stats.get("trials") == 3
