"""IV layout: packing injectivity and field validation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import FILE_DOMAIN, MEMORY_DOMAIN, OTT_DOMAIN, CounterIV, IVLayout


def make_iv(**overrides):
    fields = dict(domain=MEMORY_DOMAIN, page_id=7, page_offset=3, major=1, minor=5)
    fields.update(overrides)
    return CounterIV(**fields)


class TestLayout:
    def test_default_fits_in_block(self):
        assert IVLayout().total_bits <= 128

    def test_oversized_layout_rejected(self):
        with pytest.raises(ValueError):
            IVLayout(page_id_bits=60, major_bits=64)

    def test_domains_distinct(self):
        assert len({MEMORY_DOMAIN, FILE_DOMAIN, OTT_DOMAIN}) == 3


class TestFieldValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("domain", 256),
            ("domain", -1),
            ("page_id", 1 << 40),
            ("page_offset", 64),
            ("major", 1 << 64),
            ("minor", 128),
            ("minor", -1),
        ],
    )
    def test_out_of_range_rejected(self, field, value):
        with pytest.raises(ValueError):
            make_iv(**{field: value})

    def test_max_values_accepted(self):
        make_iv(domain=255, page_id=(1 << 40) - 1, page_offset=63, major=(1 << 64) - 1, minor=127)


class TestPacking:
    def test_pack_is_16_bytes(self):
        assert len(make_iv().pack()) == 16

    def test_pack_deterministic(self):
        assert make_iv().pack() == make_iv().pack()

    @pytest.mark.parametrize("field,a,b", [
        ("domain", MEMORY_DOMAIN, FILE_DOMAIN),
        ("page_id", 1, 2),
        ("page_offset", 0, 1),
        ("major", 0, 1),
        ("minor", 0, 1),
    ])
    def test_each_field_changes_pack(self, field, a, b):
        assert make_iv(**{field: a}).pack() != make_iv(**{field: b}).pack()

    @given(
        page_id=st.integers(0, (1 << 40) - 1),
        page_offset=st.integers(0, 63),
        major=st.integers(0, (1 << 64) - 1),
        minor=st.integers(0, 127),
    )
    @settings(max_examples=50, deadline=None)
    def test_pack_injective_property(self, page_id, page_offset, major, minor):
        """Distinct IVs pack distinctly (spot-checked against a tweak)."""
        iv = make_iv(page_id=page_id, page_offset=page_offset, major=major, minor=minor)
        tweaked = make_iv(
            page_id=page_id,
            page_offset=page_offset,
            major=major,
            minor=(minor + 1) % 128,
        )
        if minor != (minor + 1) % 128:
            assert iv.pack() != tweaked.pack()


class TestBumped:
    def test_bumped_minor_only(self):
        iv = make_iv(minor=5)
        bumped = iv.bumped(minor=6)
        assert bumped.minor == 6
        assert bumped.major == iv.major
        assert bumped.page_id == iv.page_id

    def test_bumped_major(self):
        assert make_iv(major=1).bumped(major=2).major == 2

    def test_bumped_validates(self):
        with pytest.raises(ValueError):
            make_iv().bumped(minor=128)
