"""Property-based invariants over the composed system.

The heavyweight guarantees, checked with hypothesis over randomised
operation sequences:

* **functional consistency** — arbitrary interleavings of writes and
  reads through the full machine always read back the latest data;
* **pad uniqueness** — across any write sequence, no (key, IV) pair is
  ever used twice by the controller's engines (THE counter-mode
  invariant; its violation is a catastrophic two-time pad);
* **allocator soundness** — live allocations never overlap, frees
  recycle without aliasing.
"""

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FsEncrController, set_df
from repro.crypto.otp import OTPEngine
from repro.mem import PAGE_SIZE
from repro.secmem import MetadataLayout, SecureControllerConfig
from repro.sim import Machine, MachineConfig, Scheme


LAYOUT = MetadataLayout(data_bytes=16 * 1024 * 1024, ott_region_bytes=32 * 1024)


class _RecordingEngine(OTPEngine):
    """An OTP engine that logs every (key, packed-IV) it generates."""

    observed = None  # injected per test

    def pad_for(self, iv):
        key = self._cipher.key
        record = (key, iv.pack())
        bucket = _RecordingEngine.observed[key]
        bucket.append(iv.pack())
        return super().pad_for(iv)


class TestFunctionalConsistency:
    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 30), st.binary(min_size=1, max_size=48)),
            min_size=1,
            max_size=25,
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_machine_reads_latest_write(self, writes):
        machine = Machine(MachineConfig(scheme=Scheme.FSENCR, functional=True))
        machine.add_user(uid=1000, gid=100, passphrase="pw")
        handle = machine.create_file("/pmem/prop", uid=1000, encrypted=True)
        base = machine.mmap(handle, pages=2)

        shadow = {}
        for slot, data in writes:
            addr = base + slot * 64
            machine.store_bytes(addr, data)
            shadow[slot] = (data, len(data))
        for slot, (data, length) in shadow.items():
            assert machine.load_bytes(base + slot * 64, length) == data

    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(0, 15), st.integers(1, 255)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_two_files_never_alias(self, ops):
        machine = Machine(MachineConfig(scheme=Scheme.FSENCR, functional=True))
        machine.add_user(uid=1000, gid=100, passphrase="pw")
        handles = [
            machine.create_file(f"/pmem/f{i}", uid=1000, encrypted=True)
            for i in range(2)
        ]
        bases = [machine.mmap(h, pages=1) for h in handles]
        shadows = [dict(), dict()]
        for which_file, slot, fill in ops:
            index = int(which_file)
            data = bytes([fill]) * 32
            machine.store_bytes(bases[index] + slot * 64, data)
            shadows[index][slot] = data
        for index in range(2):
            for slot, data in shadows[index].items():
                assert machine.load_bytes(bases[index] + slot * 64, 32) == data


class TestPadUniqueness:
    def _instrumented_controller(self):
        observed = defaultdict(list)
        _RecordingEngine.observed = observed
        controller = FsEncrController(
            layout=LAYOUT, config=SecureControllerConfig(functional=True)
        )
        # Swap both engines for recording variants with the same keys.
        controller._memory_engine = _RecordingEngine(controller.keys.memory_key)
        controller._file_engine = _RecordingEngine(bytes(16))
        return controller, observed

    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)),
            min_size=5,
            max_size=60,
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_no_write_pad_reuse(self, ops):
        """Across any sequence of DAX/plain writes, the pads used for
        *sealing* never repeat per key.  (Read pads legitimately repeat
        — the same version is regenerated to decrypt.)"""
        controller, observed = self._instrumented_controller()
        controller.install_file_key(1, 5, bytes([9]) * 16)
        for page in range(4):
            controller.update_fecb(page=page, group_id=1, file_id=5)
        observed.clear()  # discard install-time region sealing pads

        for page, line in ops:
            addr = page * PAGE_SIZE + line * 64
            if page < 4:
                addr = set_df(addr)
            controller.write_data(addr, bytes([(page * 8 + line) % 256]) * 64)

        for key, ivs in observed.items():
            assert len(ivs) == len(set(ivs)), "two-time pad: IV reused under one key"


class TestAllocatorSoundness:
    @given(
        actions=st.lists(
            st.tuples(st.booleans(), st.integers(8, 200)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_live_allocations_never_overlap(self, actions):
        from repro.workloads import PersistentAllocator

        machine = Machine(MachineConfig(scheme=Scheme.BASELINE_SECURE))
        machine.add_user(uid=1000, gid=100, passphrase="pw")
        handle = machine.create_file("/pmem/pool", uid=1000)
        base = machine.mmap(handle, pages=256)
        alloc = PersistentAllocator(machine, base, 256 * PAGE_SIZE)

        live = {}  # addr -> size
        for do_alloc, size in actions:
            if do_alloc or not live:
                addr = alloc.alloc(size)
                for other, other_size in live.items():
                    assert addr + size <= other or other + other_size <= addr, (
                        "allocations overlap"
                    )
                live[addr] = size
            else:
                addr, size = next(iter(live.items()))
                alloc.free(addr, size)
                del live[addr]
        assert alloc.live_objects == len(live)
