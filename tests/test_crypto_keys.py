"""Key hierarchy: derivation, wrapping, and the wrong-passphrase path."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    KEY_SIZE,
    KeyHierarchy,
    KeyWrapError,
    derive_fekek,
    generate_fek,
    unwrap_key,
    wrap_key,
)


class TestDeriveFekek:
    def test_length(self):
        assert len(derive_fekek("pass", b"salt")) == KEY_SIZE

    def test_deterministic(self):
        assert derive_fekek("pass", b"salt") == derive_fekek("pass", b"salt")

    def test_passphrase_matters(self):
        assert derive_fekek("a", b"salt") != derive_fekek("b", b"salt")

    def test_salt_matters(self):
        assert derive_fekek("pass", b"s1") != derive_fekek("pass", b"s2")

    def test_empty_passphrase_rejected(self):
        with pytest.raises(ValueError):
            derive_fekek("", b"salt")


class TestGenerateFek:
    def test_length(self):
        assert len(generate_fek(b"entropy")) == KEY_SIZE

    def test_entropy_matters(self):
        assert generate_fek(b"a") != generate_fek(b"b")


class TestWrapUnwrap:
    def test_roundtrip(self):
        fek = generate_fek(b"e")
        fekek = derive_fekek("pw", b"s")
        assert unwrap_key(wrap_key(fek, fekek), fekek) == fek

    def test_wrong_fekek_raises(self):
        fek = generate_fek(b"e")
        wrapped = wrap_key(fek, derive_fekek("right", b"s"))
        with pytest.raises(KeyWrapError):
            unwrap_key(wrapped, derive_fekek("wrong", b"s"))

    def test_tampered_ciphertext_raises(self):
        fekek = derive_fekek("pw", b"s")
        wrapped = wrap_key(generate_fek(b"e"), fekek)
        forged = type(wrapped)(
            ciphertext=bytes([wrapped.ciphertext[0] ^ 1]) + wrapped.ciphertext[1:],
            tag=wrapped.tag,
        )
        with pytest.raises(KeyWrapError):
            unwrap_key(forged, fekek)

    def test_tampered_tag_raises(self):
        fekek = derive_fekek("pw", b"s")
        wrapped = wrap_key(generate_fek(b"e"), fekek)
        forged = type(wrapped)(
            ciphertext=wrapped.ciphertext,
            tag=bytes([wrapped.tag[0] ^ 1]) + wrapped.tag[1:],
        )
        with pytest.raises(KeyWrapError):
            unwrap_key(forged, fekek)

    def test_wrapped_hides_fek(self):
        fek = generate_fek(b"e")
        assert wrap_key(fek, derive_fekek("pw", b"s")).ciphertext != fek

    def test_bad_fek_size_rejected(self):
        with pytest.raises(ValueError):
            wrap_key(b"short", derive_fekek("pw", b"s"))

    @given(entropy=st.binary(min_size=1, max_size=32), pw=st.text(min_size=1, max_size=16))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, entropy, pw):
        fek = generate_fek(entropy)
        fekek = derive_fekek(pw, b"fixed-salt")
        assert unwrap_key(wrap_key(fek, fekek), fekek) == fek


class TestKeyHierarchy:
    def test_from_seed_deterministic(self):
        a, b = KeyHierarchy.from_seed(b"x"), KeyHierarchy.from_seed(b"x")
        assert a.memory_key == b.memory_key
        assert a.ott_key == b.ott_key

    def test_chip_keys_distinct(self):
        h = KeyHierarchy.from_seed(b"x")
        assert h.memory_key != h.ott_key

    def test_bad_key_sizes_rejected(self):
        with pytest.raises(ValueError):
            KeyHierarchy(b"short", bytes(16))
        with pytest.raises(ValueError):
            KeyHierarchy(bytes(16), b"short")

    def test_derive_file_key_unique_per_entropy(self):
        h = KeyHierarchy.from_seed(b"x")
        assert h.derive_file_key(1, 1, b"a") != h.derive_file_key(1, 1, b"b")

    def test_rotated_key_differs(self):
        h = KeyHierarchy.from_seed(b"x")
        old = h.derive_file_key(1, 1, b"a")
        new = h.rotated_file_key(old)
        assert new != old and len(new) == KEY_SIZE

    def test_rotation_chain_no_short_cycles(self):
        h = KeyHierarchy.from_seed(b"x")
        key = h.derive_file_key(1, 1, b"a")
        seen = {key}
        for _ in range(16):
            key = h.rotated_file_key(key)
            assert key not in seen
            seen.add(key)
