"""Unix permissions and inode extent bookkeeping."""

import pytest

from repro.fs import (
    MODE_PRIVATE,
    MODE_WORLD,
    AccessDenied,
    Inode,
    User,
    UserDatabase,
    can_read,
    can_write,
    check_access,
)
from repro.mem import PAGE_SIZE


def user(uid=1000, gid=100, groups=frozenset()):
    return User(uid=uid, gid=gid, groups=frozenset(groups))


class TestPermissionMatrix:
    def test_owner_rw_on_600(self):
        u = user(uid=1)
        assert can_read(MODE_PRIVATE, u, 1, 100)
        assert can_write(MODE_PRIVATE, u, 1, 100)

    def test_other_denied_on_600(self):
        u = user(uid=2)
        assert not can_read(MODE_PRIVATE, u, 1, 100)
        assert not can_write(MODE_PRIVATE, u, 1, 100)

    def test_group_read_on_640(self):
        member = user(uid=2, gid=100)
        assert can_read(0o640, member, 1, 100)
        assert not can_write(0o640, member, 1, 100)

    def test_supplementary_groups_count(self):
        u = user(uid=2, gid=7, groups={100})
        assert can_read(0o640, u, 1, 100)

    def test_world_mode_opens_everything(self):
        stranger = user(uid=99, gid=99)
        assert can_read(MODE_WORLD, stranger, 1, 100)
        assert can_write(MODE_WORLD, stranger, 1, 100)

    def test_root_bypasses_modes(self):
        root = user(uid=0)
        assert can_read(0o000, root, 1, 100)
        assert can_write(0o000, root, 1, 100)

    def test_owner_class_takes_priority_over_group(self):
        """mode 070 with owner in the group: owner class (0) applies."""
        owner = user(uid=1, gid=100)
        assert not can_read(0o070, owner, 1, 100)

    def test_check_access_raises(self):
        with pytest.raises(AccessDenied):
            check_access(MODE_PRIVATE, user(uid=2), 1, 100, write=False)

    def test_check_access_passes(self):
        check_access(MODE_PRIVATE, user(uid=1), 1, 100, write=True)


class TestUserDatabase:
    def test_add_and_get(self):
        db = UserDatabase()
        db.add_user(1000, 100, {7})
        u = db.user(1000)
        assert u.all_groups == {100, 7}

    def test_unknown_user(self):
        with pytest.raises(KeyError):
            UserDatabase().user(1)


class TestInode:
    def make(self, encrypted=False):
        inode = Inode(i_ino=42, i_uid=1000, i_gid=100, mode=0o644)
        return inode

    def test_not_encrypted_by_default(self):
        assert not self.make().encrypted

    def test_page_for_offset(self):
        inode = self.make()
        inode.extents[0] = 500
        inode.extents[2] = 700
        assert inode.page_for_offset(100) == 500
        assert inode.page_for_offset(2 * PAGE_SIZE) == 700
        assert inode.page_for_offset(PAGE_SIZE) is None

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            self.make().page_for_offset(-1)

    def test_ensure_size_grows_only(self):
        inode = self.make()
        inode.ensure_size(100)
        inode.ensure_size(50)
        assert inode.size == 100

    def test_file_pages_for_range(self):
        inode = self.make()
        assert list(inode.file_pages_for_range(0, 1)) == [0]
        assert list(inode.file_pages_for_range(PAGE_SIZE - 1, 2)) == [0, 1]
        assert list(inode.file_pages_for_range(0, 2 * PAGE_SIZE)) == [0, 1]
        assert list(inode.file_pages_for_range(0, 0)) == []

    def test_pages_counts_extents(self):
        inode = self.make()
        inode.extents[0] = 1
        inode.extents[5] = 2  # sparse
        assert inode.pages == 2
