"""Tier-1 guard: the tree itself must be lint-clean.

Runs the full rule set over ``src`` and ``benchmarks`` exactly as CI
does and fails on any finding that is neither suppressed inline nor
grandfathered by the committed baseline.  Keeping this in the ordinary
pytest run means a contract violation fails locally before it ever
reaches CI.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import RULES
from repro.lint.baseline import Baseline, split_findings
from repro.lint.config import load_config
from repro.lint.engine import lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run_linter():
    options = load_config(REPO_ROOT)
    paths = [REPO_ROOT / p for p in options["paths"]]
    findings, suppressed, file_count = lint_paths(
        paths, REPO_ROOT, list(RULES.values()), options
    )
    baseline = Baseline.load(REPO_ROOT / str(options["baseline"]))
    new, baselined, stale = split_findings(findings, baseline)
    return new, baselined, stale, file_count


def test_tree_is_lint_clean():
    new, _, _, file_count = _run_linter()
    assert file_count > 50, "linter saw suspiciously few files — path config broken?"
    assert not new, "non-baselined lint findings:\n" + "\n".join(
        f.render() for f in new
    )


def test_baseline_has_no_stale_entries():
    _, _, stale, _ = _run_linter()
    assert not stale, (
        "baseline entries whose findings no longer occur (debt paid — "
        "shrink .repro-lint-baseline.json):\n"
        + "\n".join(f"{e['rule']} in {e['path']} (x{e['count']})" for e in stale)
    )


def test_baseline_entries_carry_reasons():
    # Every grandfathered finding must explain itself; the baseline is
    # documentation of accepted debt, not a dumping ground.
    baseline = Baseline.load(REPO_ROOT / ".repro-lint-baseline.json")
    missing = [fp for fp in baseline.entries if fp not in baseline.reasons]
    assert not missing, f"baseline entries without a reason: {missing}"
