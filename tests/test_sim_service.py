"""The concurrent-traffic service model: streams, queues, load curves.

Two contracts dominate.  *Bit-identity*: a 1-stream service run must
reproduce the seed per-access path exactly — same RunResult, to the
bit, for every registered scheme — because the shared queues charge a
lone stream zero wait everywhere.  *Determinism*: the same (seed,
stream mix, arrival rate) must reproduce identical interleavings,
samples, and queue stats across runs and across worker-process counts.
"""

from __future__ import annotations

import pytest

from repro.analysis.tails import (
    load_curve,
    p99_monotone,
    percentile_summary,
    render_load_curve,
    strict_percentile,
)
from repro.exec import ExperimentRunner
from repro.exec.spec import CellSpec, canonical_json, execute_cell, payload_to_curves
from repro.mem.controller import MemoryControllerQueue, ServiceQueue
from repro.sim.batch import _supports_fast_path, capture_workload
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.schemes import get_scheme, scheme_names
from repro.sim.service import ClosedLoop, OpenLoop, ServiceQueues, run_service
from repro.sim.trace import MultiStreamTrace, Trace, TraceOp
from repro.workloads import ManyFilesWorkload
from repro.workloads.base import (
    StreamSpec,
    parse_stream_mix,
    run_workload,
    stream_factories,
)
from repro.workloads.pmemkv import Fillseq
from repro.workloads.whisper import HashmapWorkload


def _small_mix():
    return [Fillseq(ops=60), Fillseq(ops=60, seed=1335), HashmapWorkload(ops=80)]


# ----------------------------------------------------------------------
# Bit-identity: 1-stream service run == seed per-access path
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scheme_name", scheme_names())
def test_single_stream_service_bit_identical(scheme_name):
    config = get_scheme(scheme_name).configure(MachineConfig())
    seed_result = run_workload(config, Fillseq(ops=60))
    service = run_service(config, [Fillseq(ops=60)], ClosedLoop())
    assert service.streams[0].run == seed_result
    # A lone stream must never have waited anywhere.
    assert service.mc_queue["contended"] == 0
    assert service.mc_queue["total_wait_ns"] == 0.0
    assert service.ott_queue["contended"] == 0


def test_single_stream_open_loop_never_self_queues():
    # Open-loop arrivals can trail the clock, but a stream still cannot
    # contend with itself: every busy window it created ended at or
    # before its own clock.
    config = get_scheme("fsencr").configure(MachineConfig())
    service = run_service(
        config, [Fillseq(ops=60)], OpenLoop(interarrival_ns=5.0)
    )
    assert service.mc_queue["contended"] == 0
    assert service.ott_queue["contended"] == 0


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------


def test_service_run_reproduces_exactly():
    config = get_scheme("fsencr").configure(MachineConfig())
    first = run_service(config, _small_mix(), ClosedLoop())
    second = run_service(config, _small_mix(), ClosedLoop())
    assert first.interleave_digest == second.interleave_digest
    assert first.mc_queue == second.mc_queue
    assert first.ott_queue == second.ott_queue
    assert first.samples == second.samples
    assert [s.run for s in first.streams] == [s.run for s in second.streams]


def test_open_loop_arrivals_deterministic_per_seed():
    config = get_scheme("baseline_secure").configure(MachineConfig())
    policy = OpenLoop(interarrival_ns=40.0, seed=0xBEEF)
    first = run_service(config, _small_mix(), policy)
    second = run_service(config, _small_mix(), policy)
    assert first.interleave_digest == second.interleave_digest
    assert first.samples == second.samples
    # At a low offered load the arrival draws actually gate the
    # interleaving, so a different seed must change it.
    slow = OpenLoop(interarrival_ns=20000.0, seed=0xBEEF)
    reseeded = OpenLoop(interarrival_ns=20000.0, seed=0xF00D)
    assert (
        run_service(config, _small_mix(), slow).interleave_digest
        != run_service(config, _small_mix(), reseeded).interleave_digest
    )


def test_loadcurve_cell_identical_under_jobs_2():
    spec = CellSpec(
        kind="loadcurve",
        workload="2xFillseq-S",
        config=MachineConfig(),
        ops=40,
        schemes=("fsencr",),
        loads=(0.5, 1.0),
    )
    serial = ExperimentRunner(1, use_cache=False).run([spec])[0].payload
    parallel = ExperimentRunner(2, use_cache=False).run([spec])[0].payload
    assert canonical_json(serial) == canonical_json(parallel)


# ----------------------------------------------------------------------
# Contention is real (and monotone in load)
# ----------------------------------------------------------------------


def test_concurrent_streams_contend():
    config = get_scheme("fsencr").configure(MachineConfig())
    service = run_service(config, _small_mix(), ClosedLoop())
    assert service.mc_queue["requests"] > 0
    assert service.mc_queue["contended"] > 0
    assert service.mc_queue["total_wait_ns"] > 0.0
    # Queue bundles live in the service registry, not any machine's —
    # per-stream RunResults stay scheme-pure.
    assert "mc_queue.requests" in service.service_stats
    for stream in service.streams:
        assert "mc_queue.requests" not in stream.run.stats
    # Pmemkv streams share one file each and never miss their stamped
    # FECB lines, so the OTT port stays idle in this mix.
    assert service.ott_queue["requests"] == 0


def test_ott_port_contends_under_many_files():
    config = get_scheme("fsencr").configure(MachineConfig())
    mix = [ManyFilesWorkload(num_files=96, seed=11 + 101 * index)
           for index in range(3)]
    service = run_service(config, mix, ClosedLoop())
    assert service.ott_queue["requests"] > 0
    assert "ott_queue.requests" in service.service_stats


def test_load_curve_p99_monotone_with_queue_stats():
    config = get_scheme("fsencr").configure(MachineConfig())
    curve = load_curve(
        config, "3xFillseq-S", loads=(0.25, 1.0), ops=60,
        percentiles=(50.0, 99.0),
    )
    assert [point["load"] for point in curve["points"]] == [0.25, 1.0]
    assert p99_monotone(curve["points"])
    for point in curve["points"]:
        assert point["mc_queue"]["requests"] > 0
        assert "ott_queue" in point
    low, high = curve["points"]
    assert high["mc_queue"]["total_wait_ns"] >= low["mc_queue"]["total_wait_ns"]


def test_render_load_curve_mentions_every_point():
    config = get_scheme("baseline_secure").configure(MachineConfig())
    curve = load_curve(
        config, "2xFillseq-S", loads=(0.5,), ops=40, percentiles=(50.0, 99.0, 99.9)
    )
    text = render_load_curve({"baseline_secure": curve})
    assert "baseline_secure" in text
    assert "0.50" in text


# ----------------------------------------------------------------------
# ServiceQueue mechanics
# ----------------------------------------------------------------------


def test_service_queue_fifo_wait_accounting():
    queue = ServiceQueue(name="q")
    assert queue.serve(0.0, 10.0) == 0.0
    assert queue.serve(4.0, 10.0) == 6.0  # busy until 10, arrived at 4
    assert queue.serve(30.0, 5.0) == 0.0  # idle gap
    assert queue.stats.get("requests") == 3
    assert queue.stats.get("contended") == 1
    assert queue.total_wait_ns == 6.0
    assert queue.max_wait_ns == 6.0
    summary = queue.summary()
    assert summary["requests"] == 3
    assert summary["busy_ns"] == 25.0


def test_service_queue_rejects_negative_inputs():
    queue = MemoryControllerQueue()
    with pytest.raises(ValueError):
        queue.serve(-1.0, 5.0)
    with pytest.raises(ValueError):
        queue.serve(0.0, float("nan"))


def test_service_queue_classes_covered_by_stats_registered_lint():
    # The lint engine auto-discovers any class with an injectable
    # ``stats`` parameter; the queue components must be in that set so
    # bare construction (an orphan bundle) is a lint error.
    from pathlib import Path

    from repro.lint.engine import Project, SourceFile, collect_files

    root = Path(__file__).resolve().parent.parent
    files = collect_files([root / "src"], root)
    project = Project(root=root, files=[SourceFile.parse(p, root) for p in files])
    project.index()
    for name in ("ServiceQueue", "MemoryControllerQueue", "OTTPortQueue"):
        assert name in project.stats_classes


# ----------------------------------------------------------------------
# Fast-path gate and machine plumbing
# ----------------------------------------------------------------------


def test_service_machine_outside_batch_fast_path():
    config = get_scheme("fsencr").configure(MachineConfig())
    machine = Machine(config)
    assert _supports_fast_path(machine)
    machine.attach_service_queues(ServiceQueues(), stream_id=3)
    assert machine.stream_id == 3
    assert not _supports_fast_path(machine)


def test_uncapturable_stream_raises():
    class Surgeon(Fillseq):
        def run(self, machine):
            machine.create_process(7)  # not part of the traceable API

    config = get_scheme("fsencr").configure(MachineConfig())
    with pytest.raises(ValueError, match="not capturable"):
        run_service(config, [Surgeon(ops=10)], ClosedLoop())


# ----------------------------------------------------------------------
# Strict percentiles
# ----------------------------------------------------------------------


def test_strict_percentile_exact_nearest_rank():
    samples = list(range(1, 101))  # 1..100
    assert strict_percentile(samples, 50.0) == 50
    assert strict_percentile(samples, 99.0) == 99
    assert strict_percentile(samples, 100.0) == 100


def test_strict_percentile_raises_on_empty():
    with pytest.raises(ValueError, match="empty"):
        strict_percentile([], 50.0)


def test_strict_percentile_raises_under_resolution():
    with pytest.raises(ValueError, match="at least 100 samples"):
        strict_percentile(list(range(99)), 99.0)
    with pytest.raises(ValueError, match="at least 1000 samples"):
        strict_percentile(list(range(999)), 99.9)
    # Exactly at the resolution bound is allowed — including p99.9 at
    # 1000 samples, where naive float division would demand 1001.
    assert strict_percentile(list(range(100)), 99.0) == 98
    assert strict_percentile(list(range(1000)), 99.9) == 999


def test_strict_percentile_rejects_bad_p():
    with pytest.raises(ValueError):
        strict_percentile([1.0], 0.0)
    with pytest.raises(ValueError):
        strict_percentile([1.0], 101.0)


def test_percentile_summary_keys():
    summary = percentile_summary([float(v) for v in range(1000)], ps=(50.0, 99.0))
    assert set(summary) == {"p50_ns", "p99_ns", "mean_ns", "max_ns"}


# ----------------------------------------------------------------------
# Stream mixes
# ----------------------------------------------------------------------


def test_parse_stream_mix():
    specs = parse_stream_mix("3xFillseq-S+2xHashmap+DAX-1")
    assert specs == (
        StreamSpec(workload="Fillseq-S", count=3),
        StreamSpec(workload="Hashmap", count=2),
        StreamSpec(workload="DAX-1", count=1),
    )
    with pytest.raises(ValueError):
        parse_stream_mix("Fillseq-S++Hashmap")
    with pytest.raises(ValueError):
        StreamSpec(workload="Fillseq-S", count=0)


def test_stream_factories_decorrelate_seeds():
    factories = stream_factories("3xFillseq-S")
    workloads = [factory() for factory in factories]
    assert len(workloads) == 3
    # Stream 0 keeps the factory default seed exactly; later streams
    # are deterministically offset.
    assert workloads[0].seed == Fillseq().seed
    assert len({w.seed for w in workloads}) == 3
    again = [factory() for factory in stream_factories("3xFillseq-S")]
    assert [w.seed for w in again] == [w.seed for w in workloads]


def test_stream_factories_resolve_many_files():
    workload = stream_factories("2xManyFiles@25")[0]()
    assert isinstance(workload, ManyFilesWorkload)
    assert workload.churn == 0.25


# ----------------------------------------------------------------------
# ManyFiles churn knob
# ----------------------------------------------------------------------


def test_many_files_default_trace_has_no_churn():
    config = get_scheme("fsencr").configure(MachineConfig())
    machine = Machine(config)
    workload = ManyFilesWorkload(num_files=8, rounds=3)
    workload.setup(machine)
    trace = capture_workload(machine, workload)
    assert trace is not None
    assert all(op.op != "open" for op in trace.ops)


def test_many_files_churn_reopens_deterministically():
    schedule = ManyFilesWorkload(num_files=8, rounds=3, churn=0.5).churn_schedule()
    assert schedule == ManyFilesWorkload(num_files=8, rounds=3, churn=0.5).churn_schedule()
    assert len(schedule) == 3
    assert all(len(round_picks) == 4 for round_picks in schedule)

    config = get_scheme("fsencr").configure(MachineConfig())
    machine = Machine(config)
    workload = ManyFilesWorkload(num_files=8, rounds=3, churn=0.5)
    workload.setup(machine)
    trace = capture_workload(machine, workload)
    opens = [op for op in trace.ops if op.op == "open"]
    assert len(opens) == 12  # 4 files x 3 rounds
    # Churn must cost something: the reopened mappings fault again.
    plain = run_workload(config, ManyFilesWorkload(num_files=8, rounds=3))
    churned = run_workload(config, ManyFilesWorkload(num_files=8, rounds=3, churn=0.5))
    assert churned.elapsed_ns > plain.elapsed_ns


def test_many_files_churn_validation():
    with pytest.raises(ValueError):
        ManyFilesWorkload(churn=1.5)
    with pytest.raises(ValueError):
        ManyFilesWorkload(churn=-0.1)


# ----------------------------------------------------------------------
# MultiStreamTrace round-trip
# ----------------------------------------------------------------------


def test_multi_stream_trace_roundtrip(tmp_path):
    streams = [
        Trace(name="a", ops=[TraceOp(op="load", addr=64), TraceOp(op="mark")]),
        Trace(name="b", ops=[TraceOp(op="store", addr=128, size=8)]),
    ]
    multi = MultiStreamTrace.from_traces("a+b", streams)
    assert multi.total_ops == 3
    path = tmp_path / "multi.trace"
    multi.save(path)
    loaded = MultiStreamTrace.load(path)
    assert len(loaded) == 2
    assert [op.op for op in loaded.streams[0].ops] == ["load", "mark"]
    assert loaded.streams[1].ops[0].sid == 1
    with pytest.raises(ValueError):
        MultiStreamTrace.from_traces("empty", [])


def test_trace_op_sid_json_roundtrip():
    tagged = TraceOp(op="load", addr=64, sid=2)
    assert TraceOp.from_json(tagged.to_json()) == tagged
    # sid 0 stays off the wire so classic v2 consumers see five keys.
    plain = TraceOp(op="load", addr=64)
    assert '"sid"' not in plain.to_json()
    assert TraceOp.from_json(plain.to_json()) == plain


# ----------------------------------------------------------------------
# Cell-spec compatibility
# ----------------------------------------------------------------------


def test_loadcurve_fields_stay_out_of_old_cache_keys():
    spec = CellSpec(
        kind="compare",
        workload="Fillseq-S",
        config=MachineConfig(),
        schemes=("fsencr",),
    )
    blob = canonical_json(spec)
    for key in ("loads", "mlp_window", "arrival_seed"):
        assert key not in blob


def test_loadcurve_cell_validation():
    with pytest.raises(ValueError, match="at least one scheme"):
        CellSpec(kind="loadcurve", workload="Fillseq-S", config=MachineConfig(),
                 loads=(0.5,))
    with pytest.raises(ValueError, match="at least one load"):
        CellSpec(kind="loadcurve", workload="Fillseq-S", config=MachineConfig(),
                 schemes=("fsencr",))
    with pytest.raises(ValueError, match="positive"):
        CellSpec(kind="loadcurve", workload="Fillseq-S", config=MachineConfig(),
                 schemes=("fsencr",), loads=(0.0,))


def test_execute_loadcurve_cell_payload_shape():
    spec = CellSpec(
        kind="loadcurve",
        workload="2xFillseq-S",
        config=MachineConfig(),
        ops=40,
        schemes=("fsencr",),
        loads=(0.5,),
    )
    payload = execute_cell(spec)
    curves = payload_to_curves(payload)
    assert set(curves) == {"fsencr"}
    point = curves["fsencr"]["points"][0]
    assert point["load"] == 0.5
    assert point["mc_queue"]["requests"] > 0
    assert "p99_ns" in point and "p99.9_ns" in point
    assert curves["fsencr"]["streams"] == 2


# ----------------------------------------------------------------------
# Arrival-policy validation
# ----------------------------------------------------------------------


def test_policy_validation():
    with pytest.raises(ValueError):
        ClosedLoop(window=0)
    with pytest.raises(ValueError):
        OpenLoop(interarrival_ns=0.0)
    with pytest.raises(ValueError):
        OpenLoop(interarrival_ns=10.0, distribution="uniform")
    assert "open" in OpenLoop(interarrival_ns=10.0).describe()
    assert "closed" in ClosedLoop().describe()
